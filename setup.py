"""Setuptools shim for offline editable installs (``pip install -e .``).

Package metadata lives in ``pyproject.toml``; this file only exists because the
reproduction environment has no ``wheel`` package, which the PEP 517 editable
path would require.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Computing Shortest Paths and Diameter in the Hybrid "
        "Network Model' (Kuhn & Schneider, PODC 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "networkx>=3.0"],
    extras_require={
        # Optional compiled kernel plane (DESIGN.md §9): njit graph/message
        # kernels plus the scipy.sparse.csgraph fallback.  Everything works
        # without the extra -- kernels degrade to the pure numpy oracle.
        "fast": ["numba>=0.59", "scipy>=1.10"],
    },
)
