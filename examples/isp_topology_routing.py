"""Scenario: learning the distances of an enterprise/ISP topology for IP routing.

The paper's introduction motivates hybrid networks with organisations that
combine their own local network with global communication over the Internet,
and notes that solving shortest-path problems in the local infrastructure "has
direct applications, e.g., for learning the topology of the local network which
can be used for efficient IP-routing".

This example builds a clustered ISP-style topology (dense sites joined by a
sparse backbone), picks the site gateways as the ``k`` sources, and runs the
k-SSP framework of Theorem 4.1 so every device learns its distance to every
gateway.  It reports the round cost, the approximation quality against a
sequential oracle, and the comparison with the pure-LOCAL approach (which needs
the full backbone diameter).

Run with:  python examples/isp_topology_routing.py
"""

from __future__ import annotations

from repro import GatherShortestPaths, HybridNetwork, ModelConfig, shortest_paths_via_clique
from repro.baselines import local_only_shortest_paths
from repro.graphs import generators, reference
from repro.util.rand import RandomSource


def main() -> None:
    rng = RandomSource(7)
    cluster_count, cluster_size = 12, 20
    graph = generators.clustered_isp_graph(cluster_count, cluster_size, rng)
    print(f"ISP topology: {cluster_count} sites x {cluster_size} devices "
          f"= {graph.node_count} nodes, {graph.edge_count} links, "
          f"hop diameter {graph.hop_diameter():.0f}")

    # One gateway per site: the first device of each cluster.
    gateways = [site * cluster_size for site in range(cluster_count)]
    print(f"gateways (k = {len(gateways)} sources): {gateways}")

    network = HybridNetwork(graph, ModelConfig(rng_seed=3))
    result = shortest_paths_via_clique(network, gateways, GatherShortestPaths())

    truth = reference.multi_source_distances(graph, gateways)
    worst_stretch = 1.0
    undershoots = 0
    for gateway in gateways:
        for device in range(graph.node_count):
            true_distance = truth[gateway][device]
            estimate = result.estimate(device, gateway)
            if estimate < true_distance - 1e-9:
                undershoots += 1
            if true_distance > 0:
                worst_stretch = max(worst_stretch, estimate / true_distance)

    print("\n[Theorem 4.1 framework] distances to all gateways")
    print(f"  rounds:                    {result.rounds}")
    print(f"  skeleton size:             {result.skeleton_size}")
    print(f"  CLIQUE rounds simulated:   {result.clique_rounds}")
    print(f"  worst stretch vs oracle:   {worst_stretch:.3f} "
          f"(guarantee {result.guaranteed_alpha(weighted=False):.2f})")
    print(f"  underestimates:            {undershoots} (must be 0)")

    local_net = HybridNetwork(graph, ModelConfig(rng_seed=4))
    local = local_only_shortest_paths(local_net, gateways)
    print("\npure-LOCAL baseline")
    print(f"  rounds: {local.rounds} (= hop diameter of the backbone)")

    # Routing-table sketch for one device.
    device = cluster_size * 5 + 3
    table = sorted((result.estimate(device, g), g) for g in gateways)[:3]
    print(f"\nexample routing view of device {device}: nearest gateways "
          + ", ".join(f"{g} (dist {d:.0f})" for d, g in table))


if __name__ == "__main__":
    main()
