"""Multi-tenant serving: coalescing concurrent queries into shared passes.

Starts an in-process ``QueryServer`` (DESIGN.md §11) over one
``HybridSession``, submits a mixed concurrent workload from two tenants —
"acme" and "globex" interleave SSSP queries and both ask for APSP — and
prints what the batcher did with it: the six SSSP queries coalesce into a
single exact multi-source pass (``HybridSession.sssp_batch``, Lemma 4.5),
the two APSP queries share one matrix computation, and every tenant gets
an honest amortized rounds/messages/bits ledger from its labelled
``RoundMetrics.scoped()`` observer.

Run with:  python examples/serving_demo.py [n]
"""

from __future__ import annotations

import asyncio
import json
import sys

from repro import HybridSession, ModelConfig
from repro.graphs import generators
from repro.serving import QueryServer, ServerConfig
from repro.util.rand import RandomSource


def build_requests(n: int) -> list[dict]:
    """Interleave SSSP queries from two tenants, then one APSP each."""
    requests: list[dict] = []
    tenants = ("acme", "globex")
    for i, source in enumerate((0, n // 5, n // 3, n // 2, 2 * n // 3, n - 1)):
        tenant = tenants[i % 2]
        requests.append({
            "id": f"{tenant}-sssp-{i}",
            "tenant": tenant,
            "op": "sssp",
            "source": source,
        })
    for tenant in tenants:
        requests.append({"id": f"{tenant}-apsp", "tenant": tenant, "op": "apsp"})
    return requests


async def run(n: int) -> None:
    """Serve the two-tenant workload and print the amortization ledger."""
    rng = RandomSource(2026)
    graph = generators.connected_workload(n, rng, weighted=True, max_weight=10)
    session = HybridSession(graph, ModelConfig(rng_seed=1))
    config = ServerConfig(batch_window=0.01, max_pending=32)

    requests = build_requests(n)
    async with QueryServer(session, config) as server:
        # Submit everything before yielding to the loop: all eight queries
        # land in the same batch window, maximising coalescing.
        tasks = [asyncio.ensure_future(server.submit(req)) for req in requests]
        responses = await asyncio.gather(*tasks)
        stats = server.stats
        tenants = server.tenant_summary()

    print(f"graph: {graph.node_count} nodes, {graph.edge_count} edges; "
          f"{len(requests)} concurrent queries from 2 tenants\n")
    for response in responses:
        cost = response["result"].get("cost", {})
        print(f"  {response['id']:<16} ok={response['ok']} "
              f"batch_size={response['batch_size']} "
              f"rounds={cost.get('rounds', '-')}")

    print(f"\nserver: {stats.admitted} admitted, {stats.answered} answered in "
          f"{stats.passes} simulation passes "
          f"({stats.coalesced_queries} queries shared a pass)")

    print("\nper-tenant amortized accounting (each tenant is charged the full")
    print("cost of every pass it participated in — DESIGN.md §11):")
    for tenant, account in tenants.items():
        print(f"  {tenant:<8} {json.dumps(account, sort_keys=True)}")


if __name__ == "__main__":
    asyncio.run(run(int(sys.argv[1]) if len(sys.argv) > 1 else 96))
