"""Scenario: monitoring the diameter of a data-center fabric.

The introduction cites proposals to augment wired data-center networks with
high-speed optical or wireless links (Helios, flyways): exactly the HYBRID
setting of a high-bandwidth local fabric plus a flexible global channel.  A
natural monitoring task is estimating the network diameter (worst-case hop
count) of the wired fabric without flooding it.

This example builds a pod/rack/server topology and runs the diameter
algorithm of Theorem 5.1 with both CLIQUE plug-ins -- served from one
``HybridSession``, so the second plug-in reuses the skeleton and CLIQUE
transport the first one prepared and pays only its own simulation rounds.

Run with:  python examples/datacenter_diameter.py
"""

from __future__ import annotations

from repro import EccentricityDiameter, GatherDiameter, HybridSession, ModelConfig
from repro.graphs import generators


def main() -> None:
    graph = generators.datacenter_pod_graph(pod_count=8, racks_per_pod=4, servers_per_rack=8)
    true_diameter = graph.hop_diameter()
    print(f"data-center fabric: {graph.node_count} nodes, {graph.edge_count} links, "
          f"true hop diameter {true_diameter:.0f}")

    session = HybridSession(graph, ModelConfig(rng_seed=11))
    for name, plugin in (("exact skeleton diameter", GatherDiameter()),
                         ("eccentricity 2-approximation", EccentricityDiameter())):
        result = session.diameter(plugin)
        record = session.last_query
        print(f"\n[Theorem 5.1] plug-in: {name}")
        print(f"  estimate D̃:            {result.estimate:.0f} (true D = {true_diameter:.0f})")
        print(f"  ratio D̃ / D:           {result.estimate / true_diameter:.3f} "
              f"(guarantee {result.guaranteed_alpha():.2f})")
        print(f"  amortized rounds:       {record.amortized_rounds} "
              f"(+ {record.preparation_rounds} new preprocessing rounds)")
        print(f"  answered from local phase: {result.used_local_estimate}")

    print("\npure-LOCAL baseline: flooding needs Θ(D) = "
          f"{true_diameter:.0f} rounds and congests every fabric link; the HYBRID "
          "algorithm touches the fabric only for bounded-depth exploration.")


if __name__ == "__main__":
    main()
