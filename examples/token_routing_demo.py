"""Scenario: point-to-point data delivery in a wireless mesh (token routing).

Mobile devices with short-range radios plus a cellular uplink form the paper's
first motivating hybrid network.  Devices continuously exchange small
point-to-point payloads (telemetry, acknowledgements); the question is how to
use the low-bandwidth cellular channel without hot-spotting any device.

This example creates a ring-of-neighbourhoods mesh, generates a random
point-to-point workload, and delivers it twice:

* with the token-routing protocol of Theorem 2.2 (helper sets + pseudo-random
  intermediates), and
* by naive global broadcast of every payload (the strategy the paper's
  Section 2 improves on).

It prints rounds, the busiest device's global traffic, and the theoretical
shapes of both approaches.

Run with:  python examples/token_routing_demo.py
"""

from __future__ import annotations

from repro import HybridNetwork, ModelConfig, make_tokens, route_tokens
from repro.baselines import predicted_broadcast_rounds, route_tokens_by_broadcast
from repro.core.token_routing import predicted_routing_rounds
from repro.graphs import generators
from repro.util.rand import RandomSource


def main() -> None:
    n, senders, payloads_each = 200, 40, 12
    rng = RandomSource(99)
    graph = generators.random_geometric_like_graph(n, neighbourhood=3, rng=rng)
    print(f"wireless mesh: {n} devices, hop diameter {graph.hop_diameter():.0f}")

    sender_ids = rng.sample(list(range(n)), senders)
    tokens = make_tokens(
        {
            s: [(rng.randrange(n), ("telemetry", s, i)) for i in range(payloads_each)]
            for s in sender_ids
        }
    )
    print(f"workload: {len(tokens)} point-to-point payloads from {senders} devices")

    routing_net = HybridNetwork(graph, ModelConfig(rng_seed=1))
    routing = route_tokens(routing_net, tokens)
    print("\n[Theorem 2.2] token routing via helper sets")
    print(f"  rounds:                  {routing.rounds}")
    print(f"  busiest device received: {routing_net.max_total_received()} global messages")
    print(f"  theoretical shape:       K/n + sqrt(kS) + sqrt(kR) ≈ "
          f"{predicted_routing_rounds(n, senders, n, payloads_each, 2):.1f}")

    broadcast_net = HybridNetwork(graph, ModelConfig(rng_seed=1))
    broadcast = route_tokens_by_broadcast(broadcast_net, tokens)
    print("\n[baseline] broadcast every payload to everyone")
    print(f"  rounds:                  {broadcast.rounds}")
    print(f"  busiest device received: {broadcast_net.max_total_received()} global messages")
    print(f"  theoretical shape:       sqrt(K) + l ≈ "
          f"{predicted_broadcast_rounds(len(tokens), payloads_each):.1f}")

    message_saving = broadcast_net.metrics.global_messages / max(
        1, routing_net.metrics.global_messages
    )
    print("\nsummary")
    print(f"  global messages moved:  routing {routing_net.metrics.global_messages}, "
          f"broadcast {broadcast_net.metrics.global_messages} "
          f"({message_saving:.1f}x more for broadcast)")
    print("  routing delivers each payload only to its destination; broadcast makes "
          "every device learn the whole workload, which is what the asymptotic "
          "Ω̃(√(k·|S|)) vs Õ(K/n + √k) separation of Section 2 is about.")


if __name__ == "__main__":
    main()
