"""Evolving network: mutate a live graph without losing the warm session.

Opens a ``HybridSession``, pays the ``Õ(√n)`` preprocessing once, then runs
several mutate-then-query rounds.  Each weight update is journalled as a
``GraphDelta`` on the graph, and the next query routes the cached
``SkeletonContext`` through ``repair`` -- re-exploring only the damaged
exploration rows -- instead of rebuilding from scratch (DESIGN.md §12).  A
second session with ``enable_repair=False`` replays the identical schedule
the old way so the round savings (and the bit-identical answers) are visible
side by side.

Run with:  python examples/evolving_network.py [n]
"""

from __future__ import annotations

import sys

from repro import HybridSession, ModelConfig
from repro.graphs import generators, reference
from repro.util.rand import RandomSource

EVENTS = 4


def heavy_off_skeleton_edge(session: HybridSession, rng: RandomSource):
    """Pick a heavy edge with both endpoints outside the cached skeleton.

    Weight *increases* only disturb shortest paths the edge was tight on, so
    bumping a heavy edge keeps the damage estimate low and lets the session
    repair instead of rebuild -- the repair-friendly regime E17 measures.
    """
    skeleton = set(session.context().skeleton.nodes)
    graph = session.graph
    candidates = [
        (u, v, w)
        for u, v, w in graph.edges()
        if u not in skeleton and v not in skeleton and w >= graph.max_weight() // 2
    ]
    u, v, weight = candidates[rng.randrange(len(candidates))]
    return u, v, weight


def main(n: int = 96) -> None:
    rng = RandomSource(11)
    graph = generators.connected_workload(n, rng, weighted=True, max_weight=8)
    print(f"graph: {graph.node_count} nodes, {graph.edge_count} edges, "
          f"version {graph.version}")

    warm = HybridSession(graph, ModelConfig(rng_seed=1))
    cold = HybridSession(graph.copy(), ModelConfig(rng_seed=1), enable_repair=False)

    warm.apsp()
    cold.apsp()
    print(f"preprocessing (paid once by both): {warm.preprocessing_rounds} rounds\n")

    mutation_rng = RandomSource(11).fork("example:mutations")
    warm_preprocessing_base = warm.preprocessing_rounds
    cold_preprocessing_before = cold.preprocessing_rounds
    cold_preprocessing_base = cold.preprocessing_rounds
    for event in range(EVENTS):
        u, v, weight = heavy_off_skeleton_edge(warm, mutation_rng)
        new_weight = weight + 1 + mutation_rng.randrange(4)
        warm.update_weight(u, v, new_weight)
        cold.update_weight(u, v, new_weight)

        warm_apsp = warm.apsp()
        cold_apsp = cold.apsp()
        record = warm.repairs[-1]
        truth = reference.single_source_distances(warm.graph, 0)
        mismatches = sum(
            1 for node, d in truth.items() if abs(warm_apsp.distance(0, node) - d) > 1e-9
        )
        identical = all(
            abs(warm_apsp.distance(s, t) - cold_apsp.distance(s, t)) < 1e-9
            for s in range(n)
            for t in range(n)
        )
        print(f"event {event + 1}: edge {{{u}, {v}}} weight {weight} -> {new_weight} "
              f"(graph version {warm.graph.version})")
        print(f"  decision: {record.action} ({record.deltas} delta, "
              f"{record.rounds} repair rounds)")
        cold_extra = cold.preprocessing_rounds - cold_preprocessing_before
        cold_preprocessing_before = cold.preprocessing_rounds
        print(f"  warm query: {warm.last_query.amortized_rounds} amortized rounds | "
              f"cold rebuild: {cold.last_query.amortized_rounds} "
              f"(+{cold_extra} re-preprocessing)")
        print(f"  answers bit-identical to cold rebuild: {identical}, "
              f"mismatches vs Dijkstra: {mismatches}")

    warm_tail = (
        sum(r.amortized_rounds for r in warm.queries[1:])
        + sum(r.rounds for r in warm.repairs)
        + (warm.preprocessing_rounds - warm_preprocessing_base)
    )
    cold_tail = sum(r.amortized_rounds for r in cold.queries[1:]) + (
        cold.preprocessing_rounds - cold_preprocessing_base
    )
    print(f"\ntail totals after the shared warm-up: repair {warm_tail} rounds vs "
          f"rebuild {cold_tail} rounds "
          f"({cold_tail / warm_tail:.2f}x amortized win).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 96)
