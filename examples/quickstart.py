"""Quickstart: serving APSP and SSSP queries from one HybridSession.

Builds a random connected weighted graph, opens a query session over it (a
``HybridSession`` owns the simulated HYBRID network plus a cache of the
``Õ(√n)`` preprocessing every query shares), answers the paper's exact APSP
(Theorem 1.1) and exact SSSP (Theorem 1.3) from the same session, and checks
the answers against a sequential Dijkstra oracle.  The per-query accounting
shows what the session amortizes: the first query pays the skeleton
preprocessing, the rest only their own phases.

Run with:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

from repro import HybridSession, ModelConfig
from repro.graphs import generators, reference
from repro.util.rand import RandomSource


def main(n: int = 120) -> None:
    rng = RandomSource(2024)
    graph = generators.connected_workload(n, rng, weighted=True, max_weight=10)
    print(f"local graph: {graph.node_count} nodes, {graph.edge_count} edges, "
          f"hop diameter {graph.hop_diameter():.0f}")

    session = HybridSession(graph, ModelConfig(rng_seed=1))

    # --- exact all-pairs shortest paths (Theorem 1.1) -----------------------
    apsp = session.apsp()
    truth = reference.all_pairs_distances(graph)
    mismatches = sum(
        1
        for u in range(n)
        for v, d in truth[u].items()
        if abs(apsp.distance(u, v) - d) > 1e-9
    )
    record = session.last_query
    print("\n[Theorem 1.1] exact APSP (first query: pays the preprocessing)")
    print(f"  amortized rounds:        {record.amortized_rounds} "
          f"(+ {session.preprocessing_rounds} preprocessing, paid once)")
    print(f"  skeleton size |V_S|:     {apsp.skeleton_size} (hop length h = {apsp.hop_length})")
    print(f"  mismatches vs Dijkstra:  {mismatches}")
    print(f"  busiest node received:   {session.network.max_total_received()} global messages")

    # --- exact single-source shortest paths (Theorem 1.3), warm ------------
    sssp = session.sssp(0)
    sssp_truth = reference.single_source_distances(graph, 0)
    sssp_mismatches = sum(
        1 for v, d in sssp_truth.items() if abs(sssp.distance(v) - d) > 1e-9
    )
    record = session.last_query
    print("\n[Theorem 1.3] exact SSSP from node 0 (warm: reuses the skeleton)")
    print(f"  amortized rounds:        {record.amortized_rounds} "
          f"(cold-equivalent {record.cold_rounds})")
    print(f"  mismatches vs Dijkstra:  {sssp_mismatches}")

    # --- the amortization summary ------------------------------------------
    total_amortized = sum(r.amortized_rounds for r in session.queries)
    total_cold = sum(r.cold_rounds for r in session.queries)
    print(f"\nsession totals: {len(session.queries)} queries, {total_amortized} amortized "
          f"+ {session.preprocessing_rounds} shared preprocessing rounds "
          f"(cold-equivalent {total_cold}).")
    print("pure-LOCAL comparison: any distance computation needs "
          f"Θ(D) = {graph.hop_diameter():.0f} rounds; the HYBRID algorithms above "
          "stay useful when D is large (try a ring-like topology).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 120)
