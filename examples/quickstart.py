"""Quickstart: exact APSP and SSSP on a hybrid network.

Builds a random connected weighted graph, wraps it in a HYBRID network
(unbounded local edges + capacity-limited global network), runs the paper's
exact APSP algorithm (Theorem 1.1) and exact SSSP (Theorem 1.3), and checks
the answers against a sequential Dijkstra oracle.

Run with:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

from repro import HybridNetwork, ModelConfig, apsp_exact, sssp_exact
from repro.graphs import generators, reference
from repro.util.rand import RandomSource


def main(n: int = 120) -> None:
    rng = RandomSource(2024)
    graph = generators.connected_workload(n, rng, weighted=True, max_weight=10)
    print(f"local graph: {graph.node_count} nodes, {graph.edge_count} edges, "
          f"hop diameter {graph.hop_diameter():.0f}")

    # --- exact all-pairs shortest paths (Theorem 1.1) -----------------------
    network = HybridNetwork(graph, ModelConfig(rng_seed=1))
    apsp = apsp_exact(network)
    truth = reference.all_pairs_distances(graph)
    mismatches = sum(
        1
        for u in range(n)
        for v, d in truth[u].items()
        if abs(apsp.distance(u, v) - d) > 1e-9
    )
    print("\n[Theorem 1.1] exact APSP")
    print(f"  rounds (local + global): {apsp.rounds}")
    print(f"  skeleton size |V_S|:     {apsp.skeleton_size} (hop length h = {apsp.hop_length})")
    print(f"  mismatches vs Dijkstra:  {mismatches}")
    print(f"  busiest node received:   {network.max_total_received()} global messages")

    # --- exact single-source shortest paths (Theorem 1.3) -------------------
    network2 = HybridNetwork(graph, ModelConfig(rng_seed=2))
    sssp = sssp_exact(network2, source=0)
    sssp_truth = reference.single_source_distances(graph, 0)
    sssp_mismatches = sum(
        1 for v, d in sssp_truth.items() if abs(sssp.distance(v) - d) > 1e-9
    )
    print("\n[Theorem 1.3] exact SSSP from node 0")
    print(f"  rounds:                  {sssp.rounds}")
    print(f"  mismatches vs Dijkstra:  {sssp_mismatches}")

    # --- what the local network alone would cost ----------------------------
    print("\npure-LOCAL comparison: any distance computation needs "
          f"Θ(D) = {graph.hop_diameter():.0f} rounds; the HYBRID algorithms above "
          "stay useful when D is large (try a ring-like topology).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 120)
