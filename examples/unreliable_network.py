"""Scenario: serving shortest paths over an unreliable hybrid network.

The paper's guarantees are "with high probability" statements about a model
in which every admitted global message arrives.  Real global channels --
internet tunnels between data centers, wireless flyways -- drop packets,
burst-fail and lose whole nodes.  This example attaches a seeded
:class:`~repro.hybrid.faults.FaultModel` to a ``HybridSession`` and shows

* the fault-free path (drop rate 0) is bit-identical to the ideal model,
* under i.i.d. and bursty message loss the loss-tolerant protocols
  (acknowledged retransmission, DESIGN.md §8) still return *exact* answers,
  paying for reliability only in extra rounds, and
* when the loss is hopeless (a crashed relay partner) the engine raises
  ``FaultToleranceExceededError`` instead of serving a wrong result.

Run with:  python examples/unreliable_network.py
"""

from __future__ import annotations

from repro import (
    FaultModel,
    FaultToleranceExceededError,
    HybridSession,
    ModelConfig,
    generators,
    reference,
)
from repro.util.rand import RandomSource


def main() -> None:
    graph = generators.random_geometric_like_graph(
        96, neighbourhood=2, rng=RandomSource(5), extra_edge_probability=0.02
    )
    truth = reference.single_source_distances(graph, 0)
    print(
        f"unreliable HYBRID network demo: {graph.node_count} nodes, "
        f"{graph.edge_count} local edges\n"
    )

    print("[fault injection] SSSP from node 0 under increasing global message loss")
    header = (
        f"{'drop rate':>10s} {'rounds':>7s} {'overhead':>9s} "
        f"{'dropped':>8s} {'retried':>8s} {'exact':>6s}"
    )
    print(header)
    print("-" * len(header))
    ideal_rounds = None
    for drop_rate in (0.0, 0.05, 0.15, 0.3):
        model = FaultModel(drop_rate=drop_rate, seed=7, max_attempts=16)
        session = HybridSession(graph, ModelConfig(rng_seed=5), fault_model=model)
        result = session.sssp(0)
        exact = all(abs(result.distance(v) - d) <= 1e-9 for v, d in truth.items())
        metrics = session.network.metrics
        if ideal_rounds is None:
            ideal_rounds = metrics.total_rounds
        print(
            f"{drop_rate:>10.2f} {metrics.total_rounds:>7d} "
            f"{metrics.total_rounds / ideal_rounds:>8.2f}x "
            f"{metrics.global_dropped:>8d} {metrics.global_retried:>8d} {str(exact):>6s}"
        )

    print(
        "\nevery completed run is exact: retransmission recovers each lost message,"
        "\nso unreliability costs rounds, never correctness."
    )

    bursty = FaultModel(
        drop_rate=0.02, burst_rate=0.05, burst_length=4, burst_drop_rate=0.95, seed=11
    )
    session = HybridSession(graph, ModelConfig(rng_seed=5), fault_model=bursty)
    result = session.sssp(0)
    exact = all(abs(result.distance(v) - d) <= 1e-9 for v, d in truth.items())
    metrics = session.network.metrics
    print(
        f"\n[burst loss] 95% loss bursts of 4 rounds: {metrics.total_rounds} rounds, "
        f"{metrics.global_dropped} dropped, exact={exact}"
    )

    # Loss so heavy that a 2-attempt budget cannot amplify delivery to
    # certainty -- the engine refuses to fake an answer.  (crash_schedule /
    # omission_schedule model permanently or transiently dead nodes the same
    # way; see DESIGN.md §8.)
    doomed = FaultModel(drop_rate=0.9, seed=3, max_attempts=2)
    session = HybridSession(graph, ModelConfig(rng_seed=5), fault_model=doomed)
    try:
        session.sssp(0)
        print("\n[hopeless loss] unexpectedly completed")
    except FaultToleranceExceededError as error:
        print(
            "\n[hopeless loss] 90% drop with a 2-attempt budget: "
            f"FaultToleranceExceededError ({error})"
        )
        print("a partial result never masquerades as a correct one.")


if __name__ == "__main__":
    main()
