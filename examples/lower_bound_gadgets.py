"""Scenario: reproducing the paper's lower-bound constructions (Sections 6 and 7).

Builds the two worst-case families and verifies their structural claims:

* Figure 1 (Theorem 1.5): the k-SSP gadget whose hidden source split forces
  ``Ω̃(√k)`` rounds -- we report the distance-gap factor ``Θ(n/√k)`` and the
  information-bottleneck round bound.
* Figure 2 (Theorem 1.6, Lemmas 7.1/7.2): the set-disjointness gadget
  ``Γ^{a,b}_{k,ℓ,W}`` whose diameter reveals whether the inputs intersect -- we
  verify the dichotomy for weighted and unweighted instances and check the
  Alice/Bob column-partition property of Lemma 7.3.

Run with:  python examples/lower_bound_gadgets.py
"""

from __future__ import annotations

from repro.graphs import reference
from repro.hybrid import ModelConfig
from repro.lower_bounds import (
    assignment_entropy_bits,
    build_gamma_gadget,
    build_kssp_gadget,
    classify_disjointness_from_diameter,
    distance_gap_factor,
    implied_round_lower_bound,
    random_disjointness_instance,
    verify_simulation_partition,
)
from repro.lower_bounds.set_disjointness import (
    implied_round_lower_bound as diameter_lower_bound,
)
from repro.util.rand import RandomSource


def kssp_gadget_demo() -> None:
    print("=" * 72)
    print("Figure 1 / Theorem 1.5: k-SSP lower bound gadget")
    for k in (16, 64, 256):
        gadget = build_kssp_gadget(path_hops=400, source_count=k, rng=RandomSource(k))
        print(f"\n  k = {k:4d}  (n = {gadget.graph.node_count}, L = {gadget.bottleneck_distance})")
        print(f"    distance gap factor Θ(n/√k): {distance_gap_factor(gadget):8.1f}")
        print(f"    hidden entropy:              {assignment_entropy_bits(gadget):8.1f} bits")
        print(f"    implied round lower bound:   "
              f"{implied_round_lower_bound(gadget, message_bits=64, send_cap=8):8.2f}"
              f"   (√k = {k ** 0.5:.1f})")


def gamma_gadget_demo() -> None:
    print("\n" + "=" * 72)
    print("Figure 2 / Theorem 1.6: set-disjointness diameter gadget")
    config = ModelConfig()
    for weighted in (False, True):
        weight = 40 if weighted else 1
        label = "weighted (W=40)" if weighted else "unweighted (W=1)"
        print(f"\n  {label}, k = 6, l = 10")
        for disjoint in (True, False):
            a, b = random_disjointness_instance(6, RandomSource(5 if disjoint else 6), disjoint)
            gadget = build_gamma_gadget(6, 10, weight, a, b)
            diameter = (
                reference.weighted_diameter(gadget.graph)
                if weighted
                else reference.hop_diameter(gadget.graph)
            )
            verdict = classify_disjointness_from_diameter(gadget, diameter)
            print(f"    inputs {'disjoint   ' if disjoint else 'intersecting'}:"
                  f" diameter = {diameter:5.0f}  ->  classified "
                  f"{'disjoint' if verdict else 'intersecting'}"
                  f"  ({'ok' if verdict == disjoint else 'WRONG'})")
        a, b = random_disjointness_instance(6, RandomSource(9), True)
        gadget = build_gamma_gadget(6, 10, weight, a, b)
        print(f"    Lemma 7.3 partition property: "
              f"{verify_simulation_partition(gadget, gadget.path_hops // 2)}")
        print(f"    implied round lower bound:    "
              f"{diameter_lower_bound(gadget, config):.2f} (n = {gadget.node_count})")


if __name__ == "__main__":
    kssp_gadget_demo()
    gamma_gadget_demo()
