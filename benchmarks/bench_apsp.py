"""E2 -- Exact APSP (Theorem 1.1, ``Õ(√n)``) vs the SODA'20 baseline (``Õ(n^{2/3})``).

For each graph size the new algorithm and the label-broadcast baseline run on
the same instance; the report records measured rounds, the theoretical shape
for each (``√n`` vs ``n^{2/3}``), and the busiest node's cumulative global
receive load (the quantity whose asymptotics force the baseline's higher
runtime).  A small sweep also fits the empirical scaling exponent.
"""

import pytest

from benchmarks.conftest import attach, bench_network, locality_workload, run_once
from repro.analysis import fit_power_law_with_log
from repro.baselines import apsp_broadcast_baseline
from repro.core.apsp import apsp_exact


@pytest.mark.parametrize("n", [100, 200])
def test_apsp_new_algorithm(benchmark, n):
    """Theorem 1.1 algorithm on a locality-heavy graph."""
    graph = locality_workload(n)

    def run():
        network = bench_network(graph)
        return network, apsp_exact(network)

    network, result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E2",
            "algorithm": "theorem-1.1",
            "n": n,
            "measured_rounds": result.rounds,
            "paper_shape_sqrt_n": n ** 0.5,
            "skeleton_size": result.skeleton_size,
            "hop_length": result.hop_length,
            "busiest_node_received": network.max_total_received(),
        },
    )


@pytest.mark.parametrize("n", [100, 200])
def test_apsp_soda20_baseline(benchmark, n):
    """The label-broadcast baseline the paper improves on."""
    graph = locality_workload(n)

    def run():
        network = bench_network(graph)
        return network, apsp_broadcast_baseline(network)

    network, result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E2",
            "algorithm": "soda20-baseline",
            "n": n,
            "measured_rounds": result.rounds,
            "paper_shape_n_2_3": n ** (2.0 / 3.0),
            "broadcast_tokens": result.broadcast_tokens,
            "busiest_node_received": network.max_total_received(),
        },
    )


def test_apsp_scaling_exponent(benchmark):
    """Fit the measured-rounds exponent of the new algorithm over a small sweep."""
    sizes = [64, 100, 160, 240]

    def run():
        rounds = []
        for n in sizes:
            graph = locality_workload(n)
            network = bench_network(graph)
            rounds.append(apsp_exact(network).rounds)
        return rounds

    rounds = run_once(benchmark, run)
    fit = fit_power_law_with_log(sizes, rounds)
    attach(
        benchmark,
        {
            "experiment": "E2",
            "sizes": sizes,
            "rounds": rounds,
            "fitted_exponent": round(fit.exponent, 3),
            "paper_exponent": 0.5,
            "note": "simulation-scale exponents include the D-capped local phases",
        },
    )


@pytest.mark.parametrize("backend", ["dict", "csr", "csr-njit"])
def test_apsp_backend_speedup(benchmark, backend):
    """Dict vs CSR traversal backend at n = 512 on the weighted general case.

    Same algorithm, graph and seeds in both runs (identical round/message/bit
    counts); the wall-time ratio recorded in BENCH_core.json is the batched
    kernel speedup on Theorem 1.1's weighted APSP.
    """
    from benchmarks.conftest import with_backend

    n = 512
    graph = with_backend(locality_workload(n, seed=1, max_weight=8), backend)

    def run():
        network = bench_network(graph)
        return network, apsp_exact(network)

    network, result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "core-backend",
            "algorithm": "apsp",
            "n": n,
            "backend": backend,
            "weighted": True,
            "measured_rounds": result.rounds,
            "global_messages": network.metrics.global_messages,
            "global_bits": network.metrics.global_bits,
        },
    )
