"""E7 -- The diameter lower bound (Theorem 1.6, Figure 2, Lemmas 7.1-7.3).

For disjoint and intersecting set-disjointness inputs the benchmark constructs
``Γ^{a,b}_{k,ℓ,W}``, verifies the diameter dichotomy of Lemmas 7.1/7.2 (the
reduction's correctness), checks the Lemma 7.3 column-partition property, and
reports the implied ``Ω̃(n^{1/3})``-style round lower bound next to the rounds
and cut-crossing bits of an actual HYBRID diameter computation on the gadget.
"""

import pytest

from benchmarks.conftest import attach, run_once
from repro.clique import GatherDiameter
from repro.core.diameter import approximate_diameter
from repro.graphs import reference
from repro.hybrid import ModelConfig
from repro.lower_bounds import (
    build_gamma_gadget,
    classify_disjointness_from_diameter,
    measure_cut_traffic,
    predicted_diameter,
    random_disjointness_instance,
    verify_simulation_partition,
)
from repro.lower_bounds.set_disjointness import implied_round_lower_bound
from repro.util.rand import RandomSource


@pytest.mark.parametrize("disjoint", [True, False])
def test_gamma_gadget_unweighted_dichotomy(benchmark, disjoint):
    """Lemma 7.2 (W = 1): diameter ℓ+1 iff the inputs are disjoint."""
    k, path_hops = 6, 8

    def run():
        a, b = random_disjointness_instance(k, RandomSource(3 if disjoint else 4), disjoint)
        gadget = build_gamma_gadget(k, path_hops, 1, a, b)
        diameter = reference.hop_diameter(gadget.graph)
        return gadget, diameter

    gadget, diameter = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E7",
            "case": "unweighted",
            "disjoint": disjoint,
            "n": gadget.node_count,
            "measured_diameter": diameter,
            "lemma_7_2_prediction": predicted_diameter(gadget),
            "classification_correct": classify_disjointness_from_diameter(gadget, diameter)
            == disjoint,
            "partition_property_holds": verify_simulation_partition(gadget, path_hops // 2),
            "implied_lower_bound_rounds": round(
                implied_round_lower_bound(gadget, ModelConfig()), 3
            ),
        },
    )


@pytest.mark.parametrize("disjoint", [True, False])
def test_gamma_gadget_weighted_dichotomy_and_cut_traffic(benchmark, disjoint):
    """Lemma 7.1 (W > ℓ) plus bit accounting of a real diameter run across the cut."""
    k, path_hops, weight = 5, 6, 20

    def run():
        a, b = random_disjointness_instance(k, RandomSource(7 if disjoint else 8), disjoint)
        gadget = build_gamma_gadget(k, path_hops, weight, a, b)
        diameter = reference.weighted_diameter(gadget.graph)
        # Run an actual HYBRID computation on the unweighted variant of the
        # gadget to measure global bits crossing the Alice/Bob cut.
        unweighted = build_gamma_gadget(k, path_hops, 1, a, b)
        measurement = measure_cut_traffic(
            unweighted,
            ModelConfig(rng_seed=1),
            lambda network: approximate_diameter(network, GatherDiameter()),
        )
        return gadget, diameter, measurement

    gadget, diameter, measurement = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E7",
            "case": "weighted",
            "disjoint": disjoint,
            "W": weight,
            "measured_diameter": diameter,
            "disjoint_upper_bound_W_plus_2l": gadget.weight + 2 * gadget.path_hops,
            "intersecting_lower_bound_2W_plus_l": 2 * gadget.weight + gadget.path_hops,
            "classification_correct": classify_disjointness_from_diameter(gadget, diameter)
            == disjoint,
            "algorithm_rounds_on_gadget": measurement.total_rounds,
            "cut_bits_moved": measurement.cut_bits,
            "disjointness_bits_required": measurement.required_bits,
            "implied_lower_bound_rounds": round(measurement.implied_lower_bound, 3),
        },
    )
