"""E12 -- Token dissemination (Lemma B.1) and NCC aggregation (Lemma B.2).

Sweeps the number of broadcast tokens and reports measured rounds against the
``√k + ℓ + k/n`` shape; the aggregation benchmark checks the ``O(log n)`` cost.

The ``*_plane_speedup`` pair runs the identical dissemination -- same graph,
seeds and therefore identical round/message counts -- under the scalar
(per-message) and vectorized (whole-array MessageBatch) global planes; the
wall-time ratio recorded in BENCH_core.json isolates the batched message
plane's speedup at n >= 256.
"""

import math

import pytest

from benchmarks.conftest import (
    attach,
    bench_network,
    locality_workload,
    run_once,
    run_repeated,
    smoke_scaled,
)
from repro.localnet import aggregate_max, disseminate_tokens


@pytest.mark.parametrize("tokens_per_node", [1, 4, 16])
def test_token_dissemination_rounds(benchmark, tokens_per_node):
    n = smoke_scaled(150, 24)
    graph = locality_workload(n, seed=51)
    tokens = {node: [("t", node, i) for i in range(tokens_per_node)] for node in range(n)}
    total = n * tokens_per_node

    def run():
        network = bench_network(graph, seed=tokens_per_node)
        return disseminate_tokens(network, tokens)

    result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E12",
            "n": n,
            "total_tokens_k": total,
            "measured_rounds": result.rounds,
            "lemma_b1_shape": round(math.sqrt(total) + tokens_per_node + total / n, 1),
        },
    )


def test_aggregation_rounds(benchmark):
    n = smoke_scaled(200, 24)
    graph = locality_workload(n, seed=52)
    values = {node: float((node * 37) % 101) for node in range(n)}

    def run():
        network = bench_network(graph, seed=3)
        aggregate_max(network, values)
        return network

    network = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E12",
            "n": n,
            "measured_rounds": network.metrics.total_rounds,
            "lemma_b2_shape_log_n": round(math.log2(n), 1),
        },
    )


@pytest.mark.parametrize("plane", ["scalar", "vectorized", "compiled"])
def test_dissemination_plane_speedup(benchmark, plane):
    """Scalar vs vectorized message plane on a token-heavy dissemination.

    Integer tokens take the value-keyed canonical-hash fast path; the hop
    diameter is warmed on the shared graph first so both planes time the
    protocol, not the workload constant.
    """
    n = smoke_scaled(512, 32)
    tokens_per_node = smoke_scaled(16, 2)
    graph = locality_workload(n, seed=n)
    graph.hop_diameter()
    tokens = {
        node: [node * tokens_per_node + i for i in range(tokens_per_node)] for node in range(n)
    }

    def run():
        network = bench_network(graph, seed=9, plane=plane)
        return network, disseminate_tokens(network, tokens)

    network, result = run_repeated(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "core-plane",
            "algorithm": "dissemination",
            "n": n,
            "plane": plane,
            "total_tokens_k": n * tokens_per_node,
            "measured_rounds": result.rounds,
            "global_messages": network.metrics.global_messages,
            "global_bits": network.metrics.global_bits,
        },
    )
