"""E12 -- Token dissemination (Lemma B.1) and NCC aggregation (Lemma B.2).

Sweeps the number of broadcast tokens and reports measured rounds against the
``√k + ℓ + k/n`` shape; the aggregation benchmark checks the ``O(log n)`` cost.
"""

import math

import pytest

from benchmarks.conftest import attach, bench_network, locality_workload, run_once
from repro.localnet import aggregate_max, disseminate_tokens


@pytest.mark.parametrize("tokens_per_node", [1, 4, 16])
def test_token_dissemination_rounds(benchmark, tokens_per_node):
    n = 150
    graph = locality_workload(n, seed=51)
    tokens = {node: [("t", node, i) for i in range(tokens_per_node)] for node in range(n)}
    total = n * tokens_per_node

    def run():
        network = bench_network(graph, seed=tokens_per_node)
        return disseminate_tokens(network, tokens)

    result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E12",
            "n": n,
            "total_tokens_k": total,
            "measured_rounds": result.rounds,
            "lemma_b1_shape": round(math.sqrt(total) + tokens_per_node + total / n, 1),
        },
    )


def test_aggregation_rounds(benchmark):
    n = 200
    graph = locality_workload(n, seed=52)
    values = {node: float((node * 37) % 101) for node in range(n)}

    def run():
        network = bench_network(graph, seed=3)
        aggregate_max(network, values)
        return network

    network = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E12",
            "n": n,
            "measured_rounds": network.metrics.total_rounds,
            "lemma_b2_shape_log_n": round(math.log2(n), 1),
        },
    )
