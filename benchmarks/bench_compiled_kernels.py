"""Compiled kernel plane vs the numpy oracle at n = 4096 (DESIGN.md §9).

Each benchmark runs one hot graph kernel -- multi-source SSSP distances, the
APSP slice, BFS-level dissemination, hop-limited ``d_h`` -- through the numpy
CSR plane (:mod:`repro.graphs.csr`) and through the compiled plane
(:mod:`repro.graphs.compiled`, njit when numba is importable, else the
scipy.sparse.csgraph formulation) on the identical frozen CSR arrays.  The
outputs are bit-identical (pinned property-style in
tests/test_compiled_plane.py); the wall-time ratio between the paired records
in BENCH_core.json is the measured speedup of the compiled plane -- the
record behind the "scaling past n = 4096" section of the README.

The ``implementation`` field records which kernel actually ran (njit / scipy /
numpy), so records from machines with different accelerators installed are
comparable.  Under ``REPRO_BENCH_SCALE=smoke`` the workload shrinks to a CI
smoke test and never rewrites the committed record.
"""

import pytest

from benchmarks.conftest import attach, random_workload, run_repeated, smoke_scaled
from repro.graphs import compiled as compiled_plane
from repro.graphs import csr as numpy_plane

#: The scale the acceptance record is measured at; smoke keeps CI fast.
KERNEL_N = smoke_scaled(4096, 96)

PLANES = {"numpy": numpy_plane, "compiled": compiled_plane}


def _implementation(plane: str, kernel: str) -> str:
    if plane == "numpy":
        return "numpy"
    return str(compiled_plane.kernel_report()[kernel])


def _frozen_workload(weighted: bool):
    graph = random_workload(KERNEL_N, seed=KERNEL_N, weighted=weighted)
    return graph.csr()


def _bench_kernel(benchmark, plane, run, kernel, sources, extra):
    # Warm-up outside timing: njit compilation and the cached sparse view are
    # one-time costs, not per-call kernel work.
    run()
    run_repeated(benchmark, run, rounds=3)
    attach(
        benchmark,
        {
            "experiment": "compiled-kernel",
            "kernel": kernel,
            "n": KERNEL_N,
            "sources": sources,
            "plane": plane,
            "implementation": _implementation(plane, kernel),
            **extra,
        },
    )


@pytest.mark.parametrize("plane", list(PLANES))
def test_compiled_sssp_kernel(benchmark, plane):
    """Multi-source weighted SSSP: the inner kernel of every skeleton query."""
    csr = _frozen_workload(weighted=True)
    sources = list(range(smoke_scaled(64, 8)))
    kernels = PLANES[plane]
    _bench_kernel(
        benchmark,
        plane,
        lambda: kernels.distance_matrix(csr, sources),
        "distance_matrix",
        len(sources),
        {"workload": "sssp", "weighted": True},
    )


@pytest.mark.parametrize("plane", list(PLANES))
def test_compiled_apsp_slice_kernel(benchmark, plane):
    """A 256-source APSP slice: the per-chunk unit of the full n x n solve."""
    csr = _frozen_workload(weighted=True)
    sources = list(range(smoke_scaled(256, 16)))
    kernels = PLANES[plane]
    _bench_kernel(
        benchmark,
        plane,
        lambda: kernels.distance_matrix(csr, sources),
        "distance_matrix",
        len(sources),
        {"workload": "apsp-slice", "weighted": True},
    )


@pytest.mark.parametrize("plane", list(PLANES))
def test_compiled_dissemination_kernel(benchmark, plane):
    """BFS levels from many sources: the hop-dissemination / eccentricity kernel.

    Measured on a barbell (two cliques joined by a long path): its Θ(n) hop
    diameter makes level-synchronous numpy BFS pay interpreter dispatch for
    thousands of levels while the clique ends keep the frontiers wide -- the
    regime the compiled plane exists for (a low-diameter random graph
    finishes in a handful of levels either way).
    """
    from repro.graphs import generators

    clique = smoke_scaled(256, 16)
    csr = generators.barbell_graph(clique, KERNEL_N - 2 * clique).csr()
    sources = list(range(smoke_scaled(256, 16)))
    kernels = PLANES[plane]
    _bench_kernel(
        benchmark,
        plane,
        lambda: kernels.bfs_level_matrix(csr, sources),
        "bfs_level_matrix",
        len(sources),
        {"workload": "dissemination", "weighted": False},
    )


@pytest.mark.parametrize("plane", list(PLANES))
def test_compiled_hop_limited_kernel(benchmark, plane):
    """Weighted ``d_h``: njit-only acceleration (numpy fallback without numba)."""
    csr = _frozen_workload(weighted=True)
    sources = list(range(smoke_scaled(128, 8)))
    hop_limit = max(1, KERNEL_N.bit_length())
    kernels = PLANES[plane]
    _bench_kernel(
        benchmark,
        plane,
        lambda: kernels.hop_limited_matrix(csr, sources, hop_limit),
        "hop_limited_matrix",
        len(sources),
        {"workload": "hop-limited", "weighted": True, "hop_limit": hop_limit},
    )
