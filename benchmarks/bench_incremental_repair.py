"""E17 -- incremental sessions: delta repair vs cold rebuild under mutations.

Drives one warm ``HybridSession`` through the E17 mutate-then-query schedule
(single-edge weight increases on heavy off-skeleton edges, one APSP after
each) twice: once repairing its cached context through the graph's delta log
(DESIGN.md §12) and once with ``enable_repair=False``, which rebuilds the
preprocessing from scratch after every mutation.  The schedule is identical
in both modes, so the wall-clock pair isolates the repair path and the
attached post-warmup round totals record the machine-independent amortized
win the regression gate pins.
"""

import pytest

from benchmarks.conftest import (
    BENCH_CONFIG,
    attach,
    random_workload,
    run_repeated,
    smoke_scaled,
)
from repro.hybrid import ModelConfig
from repro.session import HybridSession
from repro.util.rand import RandomSource

N = smoke_scaled(256, 48)
EVENTS = smoke_scaled(6, 3)
MAX_WEIGHT = 8


def _run_schedule(graph, enable_repair: bool):
    """Warm a session, then apply the E17 mutation schedule with a query each.

    Returns the session together with the post-warmup ("tail") round total.
    """
    session = HybridSession(
        graph.copy(),
        ModelConfig(rng_seed=N, **BENCH_CONFIG),
        enable_repair=enable_repair,
    )
    session.apsp()
    warm_rounds = session.network.metrics.total_rounds
    skeleton_nodes = set(session.context().skeleton.nodes)
    rng = RandomSource(N).fork("bench:e17:events")
    for _ in range(EVENTS):
        heavy = sorted(
            (u, v)
            for u, v, weight in session.graph.edges()
            if u not in skeleton_nodes
            and v not in skeleton_nodes
            and weight >= MAX_WEIGHT // 2
        )
        u, v = heavy[rng.randrange(len(heavy))]
        session.update_weight(u, v, session.graph.weight(u, v) + 1 + rng.randrange(4))
        session.apsp()
    return session, session.network.metrics.total_rounds - warm_rounds


@pytest.mark.benchmark(group="core-session")
@pytest.mark.parametrize("mode", ["repair", "rebuild"])
def test_session_mutation_schedule(benchmark, mode):
    """Warm-up + mutate/query tail, repairing vs rebuilding after each event."""
    graph = random_workload(N, seed=N)
    enable_repair = mode == "repair"

    result, _ = run_repeated(
        benchmark, lambda: _run_schedule(graph, enable_repair), rounds=3
    )
    assert result.queries[-1].kind == "apsp"

    # One untimed replay for the deterministic round record: the schedule is
    # a pure function of (graph, seed, mode), so these counts are exact.
    session, tail_rounds = _run_schedule(graph, enable_repair)
    attach(
        benchmark,
        {
            "experiment": "E17",
            "n": N,
            "mode": mode,
            "events": EVENTS,
            "tail_rounds": tail_rounds,
            "repaired": sum(1 for r in session.repairs if r.action == "repaired"),
            "rebuilt": sum(1 for r in session.repairs if r.action == "rebuilt"),
        },
    )
