"""E5 -- Diameter approximation (Theorem 1.4 / 5.1).

Measures rounds and the achieved approximation ratio ``D̃ / D`` for the exact
and the 2-approximate CLIQUE plug-ins, next to the transformed guarantee
``α + 2/η + β/T_B``.
"""

import pytest

from benchmarks.conftest import attach, bench_network, locality_workload, run_once
from repro.clique import EccentricityDiameter, GatherDiameter
from repro.core.diameter import approximate_diameter


@pytest.mark.parametrize(
    "plugin_name, plugin_factory",
    [("gather-exact", GatherDiameter), ("eccentricity-2approx", EccentricityDiameter)],
)
@pytest.mark.parametrize("n", [120, 240])
def test_diameter_approximation(benchmark, plugin_name, plugin_factory, n):
    graph = locality_workload(n, seed=n)
    true_diameter = graph.hop_diameter()

    def run():
        network = bench_network(graph, seed=n)
        return approximate_diameter(network, plugin_factory())

    result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E5",
            "plugin": plugin_name,
            "n": n,
            "true_diameter": true_diameter,
            "estimate": result.estimate,
            "measured_ratio": round(result.estimate / true_diameter, 4),
            "guaranteed_alpha": result.guaranteed_alpha(),
            "measured_rounds": result.rounds,
            "used_local_estimate": result.used_local_estimate,
            "skeleton_size": result.skeleton_size,
        },
    )
