"""E3 -- The k-SSP framework (Theorem 4.1 / Corollaries 4.6-4.8).

Measures the framework's HYBRID rounds and the achieved approximation ratio for
different source counts and CLIQUE plug-ins, next to the transformed guarantee
``2α+1`` (weighted) / ``α+2/η`` (unweighted) and the runtime shape
``η · n^{1-x}``.
"""

import pytest

from benchmarks.conftest import attach, bench_network, locality_workload, random_workload, run_once
from repro.clique import BroadcastKSourceBellmanFord, GatherShortestPaths
from repro.core.kssp import predicted_framework_rounds, shortest_paths_via_clique
from repro.graphs import reference
from repro.util.rand import RandomSource


def measured_stretch(graph, result, sources):
    truth = reference.multi_source_distances(graph, sources)
    worst = 1.0
    for s in sources:
        for v in range(graph.node_count):
            true_value = truth[s][v]
            if true_value > 0:
                worst = max(worst, result.estimate(v, s) / true_value)
    return worst


@pytest.mark.parametrize("k", [4, 16])
def test_kssp_gather_plugin(benchmark, k):
    """Gather-based exact CLIQUE plug-in with k sources on a weighted graph."""
    n = 120
    graph = random_workload(n, seed=k)
    sources = RandomSource(k).sample(list(range(n)), k)

    def run():
        network = bench_network(graph, seed=k)
        return shortest_paths_via_clique(network, sources, GatherShortestPaths())

    result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E3",
            "n": n,
            "k": k,
            "measured_rounds": result.rounds,
            "runtime_shape": predicted_framework_rounds(n, result.spec),
            "measured_stretch": round(measured_stretch(graph, result, sources), 4),
            "guaranteed_alpha_weighted": result.guaranteed_alpha(weighted=True),
            "skeleton_size": result.skeleton_size,
            "clique_rounds": result.clique_rounds,
        },
    )


def test_kssp_bellman_ford_plugin(benchmark):
    """Bellman-Ford CLIQUE plug-in on an unweighted locality-heavy graph."""
    n = 120
    k = 8
    graph = locality_workload(n, seed=9)
    sources = RandomSource(9).sample(list(range(n)), k)

    def run():
        network = bench_network(graph, seed=9)
        return shortest_paths_via_clique(network, sources, BroadcastKSourceBellmanFord())

    result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E3",
            "n": n,
            "k": k,
            "measured_rounds": result.rounds,
            "measured_stretch": round(measured_stretch(graph, result, sources), 4),
            "guaranteed_alpha_unweighted": result.guaranteed_alpha(weighted=False),
        },
    )
