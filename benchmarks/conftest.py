"""Shared helpers for the benchmark harness.

Every benchmark measures wall-clock time of the *simulation* (pytest-benchmark's
native metric) but the quantity the paper is about -- simulated HYBRID rounds --
is attached to ``benchmark.extra_info`` together with the relevant theoretical
bound, so ``pytest benchmarks/ --benchmark-only`` regenerates the comparison
tables of EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict

import pytest

from repro.graphs import generators
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.rand import RandomSource

# Benchmark workloads are intentionally modest so the whole harness finishes in
# a few minutes; EXPERIMENTS.md records a larger offline sweep produced with
# the same code.
BENCH_CONFIG = dict(skeleton_xi=0.75)


def bench_network(graph, seed: int = 1) -> HybridNetwork:
    """A HYBRID network with the benchmark configuration."""
    return HybridNetwork(graph, ModelConfig(rng_seed=seed, **BENCH_CONFIG))


def random_workload(n: int, seed: int = 1, weighted: bool = True):
    """The default random-graph workload."""
    return generators.connected_workload(n, RandomSource(seed), weighted=weighted, max_weight=8)


def locality_workload(n: int, seed: int = 1):
    """A high-diameter, locality-heavy workload (ring of local neighbourhoods)."""
    return generators.random_geometric_like_graph(
        n, neighbourhood=2, rng=RandomSource(seed), extra_edge_probability=0.01
    )


def run_once(benchmark, function: Callable[[], object]):
    """Run a simulation exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1)


def attach(benchmark, info: Dict[str, object]) -> None:
    """Attach experiment metadata to the benchmark report."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
