"""Shared helpers for the benchmark harness.

Every benchmark measures wall-clock time of the *simulation* (pytest-benchmark's
native metric) but the quantity the paper is about -- simulated HYBRID rounds --
is attached to ``benchmark.extra_info`` together with the relevant theoretical
bound, so ``pytest benchmarks/ --benchmark-only`` regenerates the comparison
tables of EXPERIMENTS.md.

At session end the harness additionally writes ``benchmarks/BENCH_core.json``:
one machine-readable record per benchmark (name, wall time, and whatever the
benchmark attached -- ``n``, ``backend``, measured rounds, ...), so future PRs
can diff the perf trajectory without parsing pytest output.  The dict-vs-CSR
backend benchmarks in bench_sssp.py / bench_apsp.py are the speedup record for
the array-backed graph core.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Callable, Dict, Optional

from repro.graphs import generators
from repro.graphs.graph import WeightedGraph
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.rand import RandomSource

# Benchmark workloads are intentionally modest so the whole harness finishes in
# a few minutes; EXPERIMENTS.md records a larger offline sweep produced with
# the same code.
BENCH_CONFIG = dict(skeleton_xi=0.75)

#: Output of the machine-readable benchmark record.  The trajectory tooling
#: looks for ``BENCH_*.json`` at the repository root, so the merged record is
#: written both here and there (kept in sync).
BENCH_JSON_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_core.json"
ROOT_BENCH_JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: ``REPRO_BENCH_SCALE=smoke`` shrinks every workload to a tiny n so CI can
#: run the NCC-bound benches per PR as an engine regression smoke test; smoke
#: runs never touch the committed BENCH record.
SMOKE = os.environ.get("REPRO_BENCH_SCALE") == "smoke"


def smoke_scaled(default: int, smoke: int) -> int:
    """The workload size to use under the current benchmark scale."""
    return smoke if SMOKE else default


def bench_network(graph, seed: int = 1, plane: Optional[str] = None) -> HybridNetwork:
    """A HYBRID network with the benchmark configuration.

    ``plane`` pins the global message plane (``"scalar"`` / ``"vectorized"``)
    for the plane-speedup records; by default the config's ``"auto"`` applies.
    """
    config = dict(BENCH_CONFIG)
    if plane is not None:
        config["global_plane"] = plane
    return HybridNetwork(graph, ModelConfig(rng_seed=seed, **config))


def random_workload(n: int, seed: int = 1, weighted: bool = True):
    """The default random-graph workload."""
    return generators.connected_workload(n, RandomSource(seed), weighted=weighted, max_weight=8)


def locality_workload(n: int, seed: int = 1, max_weight: int = 1):
    """A high-diameter, locality-heavy workload (ring of local neighbourhoods)."""
    return generators.random_geometric_like_graph(
        n,
        neighbourhood=2,
        rng=RandomSource(seed),
        extra_edge_probability=0.01,
        max_weight=max_weight,
    )


def with_backend(graph: WeightedGraph, backend: str) -> WeightedGraph:
    """Rebuild a generated graph pinned to the given traversal backend."""
    return WeightedGraph.from_edges(graph.node_count, graph.edges(), backend=backend)


def run_once(benchmark, function: Callable[[], object]):
    """Run a simulation exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1)


def run_repeated(benchmark, function: Callable[[], object], rounds: int = 3):
    """Run a simulation several times (mean wall time); for speedup records."""
    return benchmark.pedantic(function, rounds=rounds, iterations=1)


def attach(benchmark, info: Dict[str, object]) -> None:
    """Attach experiment metadata to the benchmark report."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def _load_records(path: pathlib.Path) -> Dict[str, dict]:
    if not path.exists():
        return {}
    try:
        return {record["name"]: record for record in json.loads(path.read_text())}
    except (ValueError, KeyError, TypeError):
        return {}


def pytest_sessionfinish(session, exitstatus):
    """Emit the machine-readable benchmark record, one entry per benchmark.

    Records are merged by benchmark name into whatever the files already
    hold, so running a subset (``pytest benchmarks/bench_sssp.py``) refreshes
    those entries without truncating the rest of the committed record.  The
    merged record is written to ``benchmarks/BENCH_core.json`` and mirrored
    to the repo root (where the trajectory tooling looks for it); smoke-scale
    runs are for CI regression checks only and never rewrite the record.
    """
    if SMOKE:
        return
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None or not benchmark_session.benchmarks:
        return
    # The committed benchmarks/ record wins over the generated root mirror,
    # so a stale leftover mirror can never silently revert committed entries.
    existing = _load_records(ROOT_BENCH_JSON_PATH)
    existing.update(_load_records(BENCH_JSON_PATH))
    for bench in benchmark_session.benchmarks:
        record = {
            "name": bench.name,
            "group": bench.group,
            "wall_time_seconds": float(bench.stats.mean) if bench.stats.rounds else None,
        }
        record.update(bench.extra_info)
        existing[bench.name] = record
    records = sorted(existing.values(), key=lambda record: record["name"])
    payload = json.dumps(records, indent=2, default=str) + "\n"
    BENCH_JSON_PATH.write_text(payload)
    ROOT_BENCH_JSON_PATH.write_text(payload)
