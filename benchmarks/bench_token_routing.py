"""E1 -- Token routing (Theorem 2.2): measured rounds vs the ``K/n + √k_S + √k_R`` bound.

Sweeps the per-sender token count on a fixed locality-heavy graph and reports,
per configuration, the measured HYBRID rounds next to the Theorem 2.2 shape.
"""

import pytest

from benchmarks.conftest import attach, bench_network, locality_workload, run_once
from repro.core.token_routing import make_tokens, predicted_routing_rounds, route_tokens
from repro.util.rand import RandomSource


def build_tokens(n, sender_count, tokens_per_sender, seed=3):
    rng = RandomSource(seed)
    senders = rng.sample(list(range(n)), sender_count)
    return make_tokens(
        {
            s: [(rng.randrange(n), ("payload", s, i)) for i in range(tokens_per_sender)]
            for s in senders
        }
    )


@pytest.mark.parametrize("tokens_per_sender", [2, 8, 32])
def test_token_routing_rounds_vs_workload(benchmark, tokens_per_sender):
    """Rounds as the per-sender workload k grows (fixed sender density)."""
    n = 150
    graph = locality_workload(n, seed=1)
    tokens = build_tokens(n, sender_count=30, tokens_per_sender=tokens_per_sender)

    def run():
        network = bench_network(graph, seed=tokens_per_sender)
        result = route_tokens(network, tokens)
        return network, result

    network, result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E1",
            "n": n,
            "tokens": len(tokens),
            "tokens_per_sender": tokens_per_sender,
            "measured_rounds": result.rounds,
            "theorem_2_2_shape": predicted_routing_rounds(
                n, 30, len(result.delivered), tokens_per_sender, 30 * tokens_per_sender // n + 1
            ),
            "max_received_per_round": network.metrics.max_received_per_round,
            "receive_cap": network.receive_cap,
        },
    )


@pytest.mark.parametrize("sender_count", [10, 40])
def test_token_routing_rounds_vs_sender_density(benchmark, sender_count):
    """Rounds as the sender set grows (fixed per-sender workload)."""
    n = 150
    graph = locality_workload(n, seed=2)
    tokens = build_tokens(n, sender_count=sender_count, tokens_per_sender=8, seed=5)

    def run():
        network = bench_network(graph, seed=sender_count)
        return route_tokens(network, tokens)

    result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E1",
            "n": n,
            "sender_count": sender_count,
            "measured_rounds": result.rounds,
            "mu_senders": result.mu_senders,
            "mu_receivers": result.mu_receivers,
        },
    )
