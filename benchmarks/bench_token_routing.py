"""E1 -- Token routing (Theorem 2.2): measured rounds vs the ``K/n + √k_S + √k_R`` bound.

Sweeps the per-sender token count on a fixed locality-heavy graph and reports,
per configuration, the measured HYBRID rounds next to the Theorem 2.2 shape.

The ``*_plane_speedup`` pair executes the identical Routing-Scheme -- one
router, one precomputed routing plan, so round/message counts match exactly --
under the scalar and vectorized global planes at n >= 256.  This is the
repeated-instance regime of the CLIQUE simulation (TokenRouter's reuse case):
helper sets and the label-deterministic plan are built once outside the timed
region, so the recorded ratio isolates the message plane.
"""

import pytest

from benchmarks.conftest import (
    attach,
    bench_network,
    locality_workload,
    run_once,
    run_repeated,
    smoke_scaled,
)
from repro.core.token_routing import (
    TokenRouter,
    make_tokens,
    predicted_routing_rounds,
    route_tokens,
)
from repro.util.rand import RandomSource


def build_tokens(n, sender_count, tokens_per_sender, seed=3):
    rng = RandomSource(seed)
    senders = rng.sample(list(range(n)), sender_count)
    return make_tokens(
        {
            s: [(rng.randrange(n), ("payload", s, i)) for i in range(tokens_per_sender)]
            for s in senders
        }
    )


@pytest.mark.parametrize("tokens_per_sender", [2, 8, 32])
def test_token_routing_rounds_vs_workload(benchmark, tokens_per_sender):
    """Rounds as the per-sender workload k grows (fixed sender density)."""
    n = smoke_scaled(150, 24)
    sender_count = smoke_scaled(30, 6)
    graph = locality_workload(n, seed=1)
    tokens = build_tokens(n, sender_count=sender_count, tokens_per_sender=tokens_per_sender)

    def run():
        network = bench_network(graph, seed=tokens_per_sender)
        result = route_tokens(network, tokens)
        return network, result

    network, result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E1",
            "n": n,
            "tokens": len(tokens),
            "tokens_per_sender": tokens_per_sender,
            "measured_rounds": result.rounds,
            "theorem_2_2_shape": predicted_routing_rounds(
                n,
                sender_count,
                len(result.delivered),
                tokens_per_sender,
                sender_count * tokens_per_sender // n + 1,
            ),
            "max_received_per_round": network.metrics.max_received_per_round,
            "receive_cap": network.receive_cap,
        },
    )


@pytest.mark.parametrize("sender_count", [10, 40])
def test_token_routing_rounds_vs_sender_density(benchmark, sender_count):
    """Rounds as the sender set grows (fixed per-sender workload)."""
    n = smoke_scaled(150, 24)
    sender_count = min(sender_count, n // 3)
    graph = locality_workload(n, seed=2)
    tokens = build_tokens(n, sender_count=sender_count, tokens_per_sender=8, seed=5)

    def run():
        network = bench_network(graph, seed=sender_count)
        return route_tokens(network, tokens)

    result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E1",
            "n": n,
            "sender_count": sender_count,
            "measured_rounds": result.rounds,
            "mu_senders": result.mu_senders,
            "mu_receivers": result.mu_receivers,
        },
    )


@pytest.mark.parametrize("plane", ["scalar", "vectorized"])
def test_token_routing_plane_speedup(benchmark, plane):
    """Scalar vs vectorized message plane on one Routing-Scheme execution."""
    n = smoke_scaled(256, 32)
    sender_count = smoke_scaled(64, 8)
    tokens_per_sender = smoke_scaled(64, 4)
    graph = locality_workload(n, seed=n)
    graph.hop_diameter()
    tokens = build_tokens(
        n, sender_count=sender_count, tokens_per_sender=tokens_per_sender, seed=3
    )
    per_sender = {}
    per_receiver = {}
    for token in tokens:
        per_sender[token.sender] = per_sender.get(token.sender, 0) + 1
        per_receiver[token.receiver] = per_receiver.get(token.receiver, 0) + 1
    network = bench_network(graph, seed=7, plane=plane)
    router = TokenRouter(
        network,
        senders=list(per_sender),
        receivers=list(per_receiver),
        max_tokens_per_sender=max(per_sender.values()),
        max_tokens_per_receiver=max(per_receiver.values()),
    )
    plan = router.plan(tokens)

    result = run_repeated(benchmark, lambda: router.route(tokens, plan=plan))
    attach(
        benchmark,
        {
            "experiment": "core-plane",
            "algorithm": "token-routing",
            "n": n,
            "plane": plane,
            "tokens": len(tokens),
            "measured_rounds": result.rounds,
            "global_messages": network.metrics.global_messages,
            "max_received_per_round": network.metrics.max_received_per_round,
        },
    )
