"""E11 -- Ablation: token routing (Theorem 2.2) vs broadcasting everything (Lemma B.1).

The same point-to-point workload is delivered once with the helper-set routing
protocol and once by naive global broadcast; the report compares rounds and the
busiest node's cumulative global receive load (the broadcast strategy forces
every node to take in the entire workload).
"""

import pytest

from benchmarks.conftest import attach, bench_network, locality_workload, run_once
from repro.baselines import predicted_broadcast_rounds, route_tokens_by_broadcast
from repro.core.token_routing import make_tokens, predicted_routing_rounds, route_tokens
from repro.util.rand import RandomSource


def build_workload(n, sender_count, tokens_per_sender, seed):
    rng = RandomSource(seed)
    senders = rng.sample(list(range(n)), sender_count)
    return make_tokens(
        {
            s: [(rng.randrange(n), ("w", s, i)) for i in range(tokens_per_sender)]
            for s in senders
        }
    )


@pytest.mark.parametrize("strategy", ["token-routing", "broadcast"])
def test_routing_vs_broadcast(benchmark, strategy):
    n = 150
    graph = locality_workload(n, seed=41)
    tokens = build_workload(n, sender_count=30, tokens_per_sender=16, seed=7)

    def run():
        network = bench_network(graph, seed=1)
        if strategy == "token-routing":
            result = route_tokens(network, tokens)
        else:
            result = route_tokens_by_broadcast(network, tokens)
        return network, result

    network, result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E11",
            "strategy": strategy,
            "n": n,
            "tokens": len(tokens),
            "measured_rounds": result.rounds,
            "busiest_node_received": network.max_total_received(),
            "theorem_2_2_shape": round(predicted_routing_rounds(n, 30, n, 16, 4), 1),
            "broadcast_shape": round(predicted_broadcast_rounds(len(tokens), 16), 1),
        },
    )
