"""E14 -- HybridSession reuse: cold vs warm queries on one network.

Measures the serving-layer speedup: the first query of a session pays the
shared preprocessing (skeleton exploration, edge publication, helper sets),
every later query pays only its own phases.  The cold/warm benchmark pairs
run the *identical* query via the identical code path -- the only difference
is whether the session cache is empty -- so the wall-clock ratio recorded in
BENCH_core.json isolates the preprocessing reuse, and the attached round
counts record the amortized vs cold-equivalent accounting per query.
"""

import pytest

from benchmarks.conftest import (
    BENCH_CONFIG,
    attach,
    locality_workload,
    run_repeated,
    smoke_scaled,
)
from repro.hybrid import ModelConfig
from repro.session import HybridSession

N = smoke_scaled(256, 48)


def _session(graph) -> HybridSession:
    return HybridSession(graph, ModelConfig(rng_seed=N, **BENCH_CONFIG))


@pytest.mark.benchmark(group="core-session")
@pytest.mark.parametrize("mode", ["cold", "warm"])
def test_session_apsp_reuse(benchmark, mode):
    """One APSP query: empty cache vs a session warmed by a previous APSP."""
    graph = locality_workload(N, seed=N)
    if mode == "cold":

        def run():
            return _session(graph)

        def query(session):
            return session.apsp()

        # Timed function builds the session *and* answers, so every timed run
        # pays preprocessing from scratch.
        def timed():
            return query(run())

        result = run_repeated(benchmark, timed, rounds=3)
        session = _session(graph)
        session.apsp()
        record = session.queries[-1]
    else:
        session = _session(graph)
        session.apsp()  # warm the cache outside the timing

        def timed():
            return session.apsp()

        result = run_repeated(benchmark, timed, rounds=3)
        record = session.queries[-1]
    assert result.matrix is not None
    attach(
        benchmark,
        {
            "experiment": "E14",
            "n": N,
            "mode": mode,
            "amortized_rounds": record.amortized_rounds,
            "cold_equivalent_rounds": record.cold_rounds,
            "preprocessing_rounds": session.preprocessing_rounds,
        },
    )


@pytest.mark.benchmark(group="core-session")
@pytest.mark.parametrize("mode", ["cold", "warm"])
def test_session_mixed_workload(benchmark, mode):
    """An SSSP + diameter pair, cold per run vs on an APSP-warmed session."""
    graph = locality_workload(N, seed=N + 1)

    if mode == "cold":

        def timed():
            session = _session(graph)
            session.sssp(0)
            return session.diameter()

        result = run_repeated(benchmark, timed, rounds=3)
        session = _session(graph)
        session.sssp(0)
        session.diameter()
    else:
        session = _session(graph)
        session.apsp()
        session.sssp(0)  # the extension transport is part of the warmup
        session.diameter()

        def timed():
            session.sssp(0)
            return session.diameter()

        result = run_repeated(benchmark, timed, rounds=3)
    assert result.estimate >= 0
    sssp_records = [r for r in session.queries if r.kind == "sssp"]
    diameter_records = [r for r in session.queries if r.kind == "diameter"]
    attach(
        benchmark,
        {
            "experiment": "E14",
            "n": N,
            "mode": mode,
            "sssp_amortized_rounds": sssp_records[-1].amortized_rounds,
            "sssp_cold_equivalent_rounds": sssp_records[-1].cold_rounds,
            "diameter_amortized_rounds": diameter_records[-1].amortized_rounds,
            "diameter_cold_equivalent_rounds": diameter_records[-1].cold_rounds,
            "preprocessing_rounds": session.preprocessing_rounds,
        },
    )
