"""E10 -- Helper-set properties (Definition 2.1 / Lemma 2.2).

Builds helper families for sampled member sets and reports the three
Definition 2.1 properties (minimum size vs µ, helper radius, membership load)
together with the construction's round cost ``O(µ log n)``.
"""

import pytest

from benchmarks.conftest import attach, bench_network, locality_workload, run_once
from repro.core.helper_sets import compute_helper_sets
from repro.util.rand import RandomSource, sample_nodes


@pytest.mark.parametrize("member_probability, tokens", [(0.1, 4), (0.1, 64), (0.3, 16)])
def test_helper_set_properties(benchmark, member_probability, tokens):
    n = 160
    graph = locality_workload(n, seed=31)
    members = sample_nodes(
        range(n), member_probability, RandomSource(int(member_probability * 100))
    )
    members = members or [0]

    def run():
        network = bench_network(graph, seed=tokens)
        helpers = compute_helper_sets(network, members, tokens_per_member=tokens)
        return network, helpers

    network, helpers = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E10",
            "n": n,
            "members": len(members),
            "tokens_per_member": tokens,
            "mu": helpers.mu,
            "min_helper_count": helpers.min_helper_count(),
            "max_membership_load": helpers.max_membership_load(),
            "max_helper_radius": helpers.max_helper_radius(network),
            "cluster_radius": helpers.clustering.radius,
            "construction_rounds": helpers.rounds_charged,
        },
    )
