"""E6 -- The k-SSP lower bound gadget (Theorem 1.5, Figure 1).

Builds the worst-case graph for a sweep of source counts and reports the
distance-gap factor ``Θ(n/√k)``, the entropy of the hidden source split, and
the implied ``Ω̃(√k)`` round lower bound, next to the rounds an actual upper
bound algorithm (the k-SSP framework) takes on the same gadget.
"""

import pytest

from benchmarks.conftest import attach, bench_network, run_once
from repro.clique import GatherShortestPaths
from repro.core.kssp import shortest_paths_via_clique
from repro.lower_bounds import (
    assignment_entropy_bits,
    build_kssp_gadget,
    distance_gap_factor,
    implied_round_lower_bound,
)
from repro.util.rand import RandomSource


@pytest.mark.parametrize("k", [16, 64])
def test_kssp_gadget_bottleneck(benchmark, k):
    path_hops = 120

    def run():
        gadget = build_kssp_gadget(path_hops, k, RandomSource(k))
        network = bench_network(gadget.graph, seed=k)
        upper = shortest_paths_via_clique(network, gadget.sources, GatherShortestPaths())
        return gadget, network, upper

    gadget, network, upper = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E6",
            "k": k,
            "n": gadget.graph.node_count,
            "bottleneck_distance_L": gadget.bottleneck_distance,
            "distance_gap_factor": round(distance_gap_factor(gadget), 2),
            "entropy_bits": round(assignment_entropy_bits(gadget), 1),
            "implied_lower_bound_rounds": round(
                implied_round_lower_bound(
                    gadget, network.config.message_bits, network.send_cap
                ),
                2,
            ),
            "upper_bound_algorithm_rounds": upper.rounds,
            "sqrt_k": k ** 0.5,
        },
    )
