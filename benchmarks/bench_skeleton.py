"""E9 -- Skeleton graph properties (Lemmas C.1 / C.2).

Builds skeletons for a sweep of sampling probabilities and audits connectivity,
distance preservation and the largest skeleton-free gap on shortest paths,
reporting them next to the hop-length parameter ``h`` that Lemma C.1 promises
is (w.h.p.) an upper bound on the gap.
"""

import pytest

from benchmarks.conftest import attach, bench_network, random_workload, run_once
from repro.core.skeleton import compute_skeleton
from repro.graphs.skeleton_analysis import audit_skeleton
from repro.util.rand import RandomSource


@pytest.mark.parametrize("sampling_probability", [0.1, 0.25, 0.5])
def test_skeleton_properties(benchmark, sampling_probability):
    n = 150
    graph = random_workload(n, seed=21)

    def run():
        network = bench_network(graph, seed=int(sampling_probability * 100))
        skeleton = compute_skeleton(network, sampling_probability, keep_local_knowledge=False)
        report = audit_skeleton(
            graph, skeleton.nodes, skeleton.hop_length, RandomSource(5), pair_samples=40
        )
        return skeleton, report

    skeleton, report = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E9",
            "n": n,
            "sampling_probability": sampling_probability,
            "skeleton_size": report.node_count,
            "skeleton_edges": report.edge_count,
            "hop_length_h": skeleton.hop_length,
            "connected": report.connected,
            "distance_preserving": report.distance_preserving,
            "max_gap_hops": report.max_gap_hops,
            "construction_rounds": skeleton.rounds_charged,
        },
    )
