"""E8 -- CLIQUE simulation on a skeleton (Corollary 4.1).

Measures the HYBRID rounds needed to simulate one CLIQUE round among skeleton
nodes for different skeleton sizes, next to the ``|S|²/n + √|S|`` bound, and
ablates the skeleton-size exponent ``x`` around the framework optimum.

The ``*_plane_speedup`` pair simulates the identical CLIQUE rounds -- same
skeleton, transport and padding-token routing plan, so round/message counts
match exactly -- under the scalar and vectorized global planes at n >= 256.
"""

import pytest

from benchmarks.conftest import (
    attach,
    bench_network,
    locality_workload,
    run_once,
    run_repeated,
    smoke_scaled,
)
from repro.core.clique_simulation import HybridCliqueTransport, predicted_simulation_rounds
from repro.core.skeleton import compute_skeleton


@pytest.mark.parametrize("sampling_exponent", [0.3, 0.5, 0.7])
def test_clique_round_simulation_cost(benchmark, sampling_exponent):
    """HYBRID rounds per simulated CLIQUE round as the skeleton grows."""
    n = smoke_scaled(180, 24)
    graph = locality_workload(n, seed=11)
    probability = n ** (sampling_exponent - 1.0)

    def run():
        network = bench_network(graph, seed=int(sampling_exponent * 100))
        skeleton = compute_skeleton(
            network, probability, ensure_connected=True, keep_local_knowledge=False
        )
        transport = HybridCliqueTransport(network, skeleton)
        before = network.metrics.total_rounds
        for _ in range(3):
            transport.exchange({})
        per_round = (network.metrics.total_rounds - before) / 3.0
        return skeleton, per_round

    skeleton, per_round = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E8",
            "n": n,
            "sampling_exponent_x": sampling_exponent,
            "skeleton_size": skeleton.size,
            "hybrid_rounds_per_clique_round": round(per_round, 2),
            "corollary_4_1_shape": round(predicted_simulation_rounds(n, skeleton.size), 2),
        },
    )


@pytest.mark.parametrize("plane", ["scalar", "vectorized"])
def test_clique_plane_speedup(benchmark, plane):
    """Scalar vs vectorized message plane for three simulated CLIQUE rounds.

    Skeleton and transport (helper sets, hash agreement, padding routing
    plan) are built outside the timed region, so the ratio isolates the
    per-round token routing on the global message plane.
    """
    n = smoke_scaled(256, 32)
    graph = locality_workload(n, seed=n)
    graph.hop_diameter()
    network = bench_network(graph, seed=7, plane=plane)
    skeleton = compute_skeleton(
        network, n ** -0.25, ensure_connected=True, keep_local_knowledge=False
    )
    transport = HybridCliqueTransport(network, skeleton)
    rounds_before = network.metrics.total_rounds

    def run():
        for _ in range(3):
            transport.exchange({})

    run_repeated(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "core-plane",
            "algorithm": "clique-simulation",
            "n": n,
            "plane": plane,
            "skeleton_size": skeleton.size,
            "clique_rounds_simulated": transport.rounds_used,
            "hybrid_rounds": network.metrics.total_rounds - rounds_before,
            "global_messages": network.metrics.global_messages,
        },
    )
