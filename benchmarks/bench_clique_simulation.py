"""E8 -- CLIQUE simulation on a skeleton (Corollary 4.1).

Measures the HYBRID rounds needed to simulate one CLIQUE round among skeleton
nodes for different skeleton sizes, next to the ``|S|²/n + √|S|`` bound, and
ablates the skeleton-size exponent ``x`` around the framework optimum.
"""

import pytest

from benchmarks.conftest import attach, bench_network, locality_workload, run_once
from repro.core.clique_simulation import HybridCliqueTransport, predicted_simulation_rounds
from repro.core.skeleton import compute_skeleton


@pytest.mark.parametrize("sampling_exponent", [0.3, 0.5, 0.7])
def test_clique_round_simulation_cost(benchmark, sampling_exponent):
    """HYBRID rounds per simulated CLIQUE round as the skeleton grows."""
    n = 180
    graph = locality_workload(n, seed=11)
    probability = n ** (sampling_exponent - 1.0)

    def run():
        network = bench_network(graph, seed=int(sampling_exponent * 100))
        skeleton = compute_skeleton(
            network, probability, ensure_connected=True, keep_local_knowledge=False
        )
        transport = HybridCliqueTransport(network, skeleton)
        before = network.metrics.total_rounds
        for _ in range(3):
            transport.exchange({})
        per_round = (network.metrics.total_rounds - before) / 3.0
        return skeleton, per_round

    skeleton, per_round = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "E8",
            "n": n,
            "sampling_exponent_x": sampling_exponent,
            "skeleton_size": skeleton.size,
            "hybrid_rounds_per_clique_round": round(per_round, 2),
            "corollary_4_1_shape": round(predicted_simulation_rounds(n, skeleton.size), 2),
        },
    )
