"""E4 -- Exact SSSP (Theorem 1.3) via the framework with a single source.

Verifies exactness on every run and reports measured rounds against the
framework shape ``n^{1-x}`` (with the substitute CLIQUE algorithm's ``δ``),
plus the comparison against the pure-LOCAL ``Θ(D)`` baseline.
"""

import pytest

from benchmarks.conftest import attach, bench_network, locality_workload, run_once
from repro.clique import BroadcastBellmanFordSSSP
from repro.core.kssp import predicted_framework_rounds
from repro.core.sssp import sssp_exact
from repro.graphs import reference


@pytest.mark.parametrize("n", [100, 200])
def test_sssp_exact(benchmark, n):
    """Theorem 1.3 on a high-diameter graph (where LOCAL alone is slow)."""
    graph = locality_workload(n, seed=n)

    def run():
        network = bench_network(graph, seed=n)
        return sssp_exact(network, source=0)

    result = run_once(benchmark, run)
    truth = reference.single_source_distances(graph, 0)
    exact = all(abs(result.distance(v) - d) < 1e-9 for v, d in truth.items())
    attach(
        benchmark,
        {
            "experiment": "E4",
            "n": n,
            "measured_rounds": result.rounds,
            "exact": exact,
            "local_only_rounds": graph.hop_diameter(),
            "framework_shape": predicted_framework_rounds(n, BroadcastBellmanFordSSSP().spec),
            "skeleton_size": result.skeleton_size,
        },
    )


def test_sssp_on_barbell(benchmark):
    """Structured high-SPD instance (the regime where Theorem 1.3 beats Õ(√SPD))."""
    from repro.graphs import generators

    graph = generators.barbell_graph(30, 60)

    def run():
        network = bench_network(graph, seed=77)
        return sssp_exact(network, source=0)

    result = run_once(benchmark, run)
    truth = reference.single_source_distances(graph, 0)
    exact = all(abs(result.distance(v) - d) < 1e-9 for v, d in truth.items())
    attach(
        benchmark,
        {
            "experiment": "E4",
            "graph": "barbell(30, 60)",
            "measured_rounds": result.rounds,
            "exact": exact,
            "shortest_path_diameter": reference.shortest_path_diameter(graph),
        },
    )


@pytest.mark.parametrize("backend", ["dict", "csr", "csr-njit"])
def test_sssp_backend_speedup(benchmark, backend):
    """Dict vs CSR traversal backend at n = 512 on the weighted general case.

    The two runs execute the identical algorithm on the identical graph and
    seeds -- round, message and bit counts must match exactly -- so the wall
    time ratio recorded in BENCH_core.json isolates the batched-kernel
    speedup of the array-backed graph core.
    """
    from benchmarks.conftest import with_backend

    n = 512
    graph = with_backend(locality_workload(n, seed=n, max_weight=8), backend)

    def run():
        network = bench_network(graph, seed=n)
        return network, sssp_exact(network, source=0)

    network, result = run_once(benchmark, run)
    attach(
        benchmark,
        {
            "experiment": "core-backend",
            "algorithm": "sssp",
            "n": n,
            "backend": backend,
            "weighted": True,
            "measured_rounds": result.rounds,
            "global_messages": network.metrics.global_messages,
            "global_bits": network.metrics.global_bits,
        },
    )
