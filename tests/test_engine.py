"""Tests for the parallel resumable experiment engine, the artifact store and
the benchmark regression gate."""

import json
import multiprocessing

import pytest

from repro.analysis.regression import (
    compare_benchmarks,
    compare_manifests,
    run_regression,
)
from repro.experiments import (
    ArtifactStore,
    ExperimentEngine,
    Shard,
    assemble_tables,
    execute_shard,
    plan_shards,
    run_experiment,
)
from repro.experiments.engine import replica_seeds
from repro.experiments.runner import ShardPlan, register_sweep, unregister

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Cheap experiments used by the end-to-end engine tests (sub-second total).
CHEAP = ["E6", "E12"]


@pytest.fixture
def synthetic_sweep():
    """A temporary registered sweep with fast, deterministic, seed-using shards."""

    def plan(scale):
        return [
            ShardPlan(family=f"unit-{index}", seed=100 + index, params={"index": index})
            for index in range(4)
        ]

    def finalize(scale, payloads):
        from repro.experiments.runner import ExperimentTable, flatten_rows

        return ExperimentTable("T99", "synthetic", ["index", "seed"], flatten_rows(payloads))

    @register_sweep("T99", plan=plan, finalize=finalize, reseedable=True)
    def run_shard(scale, seed, params):
        return [[params["index"], seed]]

    yield "T99"
    unregister("T99")


@pytest.fixture
def failing_sweep():
    def plan(scale):
        return [
            ShardPlan(family=f"f{index}", seed=index, params={"index": index})
            for index in range(3)
        ]

    def finalize(scale, payloads):
        from repro.experiments.runner import ExperimentTable, flatten_rows

        return ExperimentTable("T98", "failing", ["index"], flatten_rows(payloads))

    @register_sweep("T98", plan=plan, finalize=finalize)
    def run_shard(scale, seed, params):
        if params["index"] == 1:
            raise RuntimeError("shard blew up")
        return [[params["index"]]]

    yield "T98"
    unregister("T98")


class TestPlanning:
    def test_plan_covers_every_registered_experiment(self):
        shards = plan_shards(scale="small")
        experiments = {shard.experiment for shard in shards}
        assert {"E1", "E2", "E5", "E12", "E13", "E14"} <= experiments
        # Every sweep decomposes into at least one shard, E1 into one per workload.
        assert sum(1 for s in shards if s.experiment == "E1") == 3

    def test_plan_is_deterministic(self):
        first = plan_shards(CHEAP, scale="small")
        second = plan_shards(CHEAP, scale="small")
        assert [s.key for s in first] == [s.key for s in second]
        assert all(a == b for a, b in zip(first, second, strict=True))

    def test_shard_keys_embed_spec_hash(self):
        shard = plan_shards(["E6"], scale="small")[0]
        assert shard.key.startswith("E6-small-gadget-k16-t0-")
        assert shard.spec_hash[:12] in shard.key
        # A different spec gets a different address.
        other = Shard.make("E6", "small", "gadget-k16", shard.seed + 1, 0, dict(shard.params))
        assert other.key != shard.key

    def test_replica_seed_stream_is_stable_and_scoped(self):
        seeds = replica_seeds(2020, "E9", "small", "random-p10", trials=4)
        assert seeds == replica_seeds(2020, "E9", "small", "random-p10", trials=4)
        assert len(seeds) == 3 and len(set(seeds)) == 3
        # Seeds depend on the shard identity, not on which other shards run.
        assert seeds != replica_seeds(2020, "E9", "small", "random-p25", trials=4)
        assert seeds != replica_seeds(2021, "E9", "small", "random-p10", trials=4)

    def test_trials_replicate_only_reseedable_sweeps(self):
        shards = plan_shards(["E9", "E12"], scale="small", trials=3)
        e9_trials = sorted({s.trial for s in shards if s.experiment == "E9"})
        e12_trials = sorted({s.trial for s in shards if s.experiment == "E12"})
        assert e9_trials == [0, 1, 2]
        assert e12_trials == [0]
        # Trial 0 keeps the canonical seed.
        canonical = {(s.family): s.seed for s in plan_shards(["E9"], scale="small")}
        for shard in shards:
            if shard.experiment == "E9" and shard.trial == 0:
                assert shard.seed == canonical[shard.family]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            plan_shards(["E99"], scale="small")
        with pytest.raises(ValueError):
            plan_shards(["E6"], scale="huge")


class TestArtifactStore:
    def test_write_then_load_round_trips(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        shard = plan_shards(["E6"], scale="small")[0]
        record = execute_shard(shard)
        store.write_record(shard, record)
        loaded = store.load_record(shard)
        assert loaded is not None
        assert loaded["payload"] == record["payload"]
        assert loaded["metrics"] == record["metrics"]

    def test_spec_mismatch_and_corruption_treated_as_absent(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        shards = plan_shards(["E6"], scale="small")
        record = execute_shard(shards[0])
        store.write_record(shards[0], record)
        # A different shard never sees another shard's artifact.
        assert store.load_record(shards[1]) is None
        # A stale artifact whose embedded spec does not match is rejected.
        path = store.shard_path(shards[0])
        tampered = json.loads(path.read_text())
        tampered["spec"]["seed"] += 1
        path.write_text(json.dumps(tampered))
        assert store.load_record(shards[0]) is None
        # A truncated file (e.g. killed mid-write without the atomic rename)
        # is rejected too.
        path.write_text(path.read_text()[:40])
        assert store.load_record(shards[0]) is None

    def test_manifest_is_deterministic_and_excludes_wall_times(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        shard = plan_shards(["E6"], scale="small")[0]
        store.write_record(shard, execute_shard(shard))
        manifest = store.build_manifest()
        entry = manifest["shards"][shard.key]
        assert entry["spec_hash"] == shard.spec_hash
        assert "wall_time_seconds" not in entry
        # Re-executing the same shard yields the same manifest (bit-identical
        # payload, different wall time).
        store.write_record(shard, execute_shard(shard))
        assert store.build_manifest() == manifest


class TestEngine:
    def test_serial_and_parallel_runs_are_bit_identical(self, tmp_path):
        shards = plan_shards(CHEAP, scale="small")
        serial_store = ArtifactStore(tmp_path / "serial")
        parallel_store = ArtifactStore(tmp_path / "parallel")
        serial_report = ExperimentEngine(serial_store, jobs=1).run(shards)
        parallel_report = ExperimentEngine(parallel_store, jobs=4).run(shards)
        assert serial_report.ok and parallel_report.ok
        assert sorted(serial_report.executed) == sorted(parallel_report.executed)
        assert serial_store.build_manifest() == parallel_store.build_manifest()
        # The assembled tables match the plain serial runner exactly.
        tables = assemble_tables(parallel_store, shards)
        by_id = {table.experiment_id: table for table in tables}
        for experiment_id in CHEAP:
            expected = run_experiment(experiment_id, scale="small")
            assert by_id[experiment_id].headers == expected.headers
            assert by_id[experiment_id].notes == expected.notes
            got_rows = [list(row) for row in by_id[experiment_id].rows]
            # E13-style float wall-clock columns are absent from these cheap
            # sweeps, so rows must match exactly.
            assert got_rows == [list(row) for row in expected.rows]

    def test_full_small_sweep_manifest_is_run_invariant(self, tmp_path):
        # Every experiment, E1-E14, at small scale: a parallel and a serial
        # run must produce identical artifact-store manifests -- including
        # E13, whose wall-clock measurement rides outside the hashed payload,
        # and E14's single-shard session sweep.
        shards = plan_shards(scale="small")
        parallel_store = ArtifactStore(tmp_path / "parallel")
        serial_store = ArtifactStore(tmp_path / "serial")
        assert ExperimentEngine(parallel_store, jobs=2).run(shards).ok
        assert ExperimentEngine(serial_store, jobs=1).run(shards).ok
        assert parallel_store.build_manifest() == serial_store.build_manifest()

    def test_resume_skips_finished_shards_and_merges(self, tmp_path):
        shards = plan_shards(CHEAP, scale="small")
        assert len(shards) >= 4
        clean_store = ArtifactStore(tmp_path / "clean")
        ExperimentEngine(clean_store, jobs=1).run(shards)

        # Interrupted run: only the first two shards finished before the kill.
        resumed_store = ArtifactStore(tmp_path / "resumed")
        partial = ExperimentEngine(resumed_store, jobs=1).run(shards[:2])
        assert sorted(partial.executed) == sorted(s.key for s in shards[:2])

        resumed = ExperimentEngine(resumed_store, jobs=1, resume=True).run(shards)
        assert sorted(resumed.skipped) == sorted(s.key for s in shards[:2])
        assert sorted(resumed.executed) == sorted(s.key for s in shards[2:])
        # The merged manifest is exactly what one uninterrupted run produces.
        assert resumed_store.build_manifest() == clean_store.build_manifest()

    def test_resume_re_runs_corrupted_artifacts(self, tmp_path):
        shards = plan_shards(["E6"], scale="small")
        store = ArtifactStore(tmp_path / "store")
        ExperimentEngine(store, jobs=1).run(shards)
        store.shard_path(shards[0]).write_text("{not json")
        report = ExperimentEngine(store, jobs=1, resume=True).run(shards)
        assert report.executed == [shards[0].key]
        assert sorted(report.skipped) == sorted(s.key for s in shards[1:])

    def test_e15_records_are_jobs_independent(self, tmp_path):
        # The robustness sweep's shards rebuild graph, fault schedule and
        # both networks from their own seeds, so records are --jobs
        # independent (the ISSUE 5 acceptance pin).
        shards = plan_shards(["E15"], scale="small")
        assert len(shards) >= 4
        serial_store = ArtifactStore(tmp_path / "serial")
        parallel_store = ArtifactStore(tmp_path / "parallel")
        assert ExperimentEngine(serial_store, jobs=1).run(shards).ok
        assert ExperimentEngine(parallel_store, jobs=2).run(shards).ok
        assert serial_store.build_manifest() == parallel_store.build_manifest()

    def test_e15_interrupted_sweep_resumes_to_clean_manifest(self, tmp_path):
        # Kill-after-k, mirroring the E1-E14 resume test: only the first two
        # E15 shards finish before the interrupt; the resumed run skips them,
        # executes the rest and merges to exactly the clean-run manifest.
        shards = plan_shards(["E15"], scale="small")
        clean_store = ArtifactStore(tmp_path / "clean")
        ExperimentEngine(clean_store, jobs=1).run(shards)

        resumed_store = ArtifactStore(tmp_path / "resumed")
        partial = ExperimentEngine(resumed_store, jobs=1).run(shards[:2])
        assert sorted(partial.executed) == sorted(s.key for s in shards[:2])
        resumed = ExperimentEngine(resumed_store, jobs=1, resume=True).run(shards)
        assert sorted(resumed.skipped) == sorted(s.key for s in shards[:2])
        assert sorted(resumed.executed) == sorted(s.key for s in shards[2:])
        assert resumed_store.build_manifest() == clean_store.build_manifest()
        # The tables assembled from the resumed store match a direct run.
        table = assemble_tables(resumed_store, shards)[0]
        expected = run_experiment("E15", scale="small")
        assert [list(row) for row in table.rows] == [list(row) for row in expected.rows]

    def test_e15_corrupted_artifact_re_runs(self, tmp_path):
        shards = plan_shards(["E15"], scale="small")
        store = ArtifactStore(tmp_path / "store")
        ExperimentEngine(store, jobs=1).run(shards)
        # A truncated shard file (killed mid-write without the atomic rename)
        # and a spec-tampered one must both re-execute on resume.
        store.shard_path(shards[0]).write_text("{truncated")
        tampered = json.loads(store.shard_path(shards[1]).read_text())
        tampered["spec"]["seed"] += 1
        store.shard_path(shards[1]).write_text(json.dumps(tampered))
        report = ExperimentEngine(store, jobs=1, resume=True).run(shards)
        assert sorted(report.executed) == sorted(s.key for s in shards[:2])
        assert sorted(report.skipped) == sorted(s.key for s in shards[2:])

    def test_without_resume_everything_re_executes(self, tmp_path):
        shards = plan_shards(["E6"], scale="small")
        store = ArtifactStore(tmp_path / "store")
        ExperimentEngine(store, jobs=1).run(shards)
        report = ExperimentEngine(store, jobs=1).run(shards)
        assert sorted(report.executed) == sorted(s.key for s in shards)
        assert report.skipped == []

    def test_shard_records_carry_ambient_round_metrics(self, tmp_path):
        shard = next(
            s for s in plan_shards(["E12"], scale="small") if s.family == "dissemination-k1"
        )
        record = execute_shard(shard)
        metrics = record["metrics"]
        # The shard's network charges are observed through the ambient scope:
        # dissemination does real local + global work.
        assert metrics["total_rounds"] > 0
        assert metrics["global_messages"] > 0
        # And they are deterministic (the engine's bit-identity contract).
        assert execute_shard(shard)["metrics"] == metrics

    def test_failed_shards_do_not_kill_the_run(self, tmp_path, failing_sweep):
        shards = plan_shards([failing_sweep], scale="small")
        store = ArtifactStore(tmp_path / "store")
        report = ExperimentEngine(store, jobs=1).run(shards)
        assert not report.ok
        assert len(report.failed) == 1 and "shard blew up" in next(iter(report.failed.values()))
        assert len(report.executed) == 2
        with pytest.raises(KeyError):
            assemble_tables(store, shards)

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_parallel_pool_with_synthetic_sweep(self, tmp_path, synthetic_sweep):
        shards = plan_shards([synthetic_sweep], scale="small", trials=2)
        assert len(shards) == 8  # 4 families x 2 trials (reseedable)
        store = ArtifactStore(tmp_path / "store")
        report = ExperimentEngine(store, jobs=2, mp_context="fork").run(shards)
        assert report.ok and len(report.executed) == 8
        table = assemble_tables(store, [s for s in shards if s.trial == 0])[0]
        assert [row[1] for row in table.rows] == [100, 101, 102, 103]


def _records(**overrides):
    base = [
        {"name": "bench_a", "wall_time_seconds": 1.0, "measured_rounds": 100, "n": 64},
        {"name": "bench_b", "wall_time_seconds": 2.0, "measured_rounds": 200, "n": 128},
        {"name": "bench_c", "wall_time_seconds": 4.0, "global_rounds": 17, "n": 256},
    ]
    records = json.loads(json.dumps(base))
    for name, fields in overrides.items():
        for record in records:
            if record["name"] == name:
                record.update(fields)
    return records


class TestRegressionGate:
    def test_identical_records_pass(self):
        report = compare_benchmarks(_records(), _records())
        assert report.status == "pass" and not report.violations
        assert report.checked_records == 3

    def test_uniform_slowdown_is_normalized_away(self):
        current = _records()
        for record in current:
            record["wall_time_seconds"] *= 3.0  # a slower CI runner, not a regression
        report = compare_benchmarks(_records(), current)
        assert report.status == "pass"
        assert report.speed_factor == pytest.approx(3.0)

    def test_single_record_wall_clock_regression_fails(self):
        report = compare_benchmarks(
            _records(), _records(bench_b={"wall_time_seconds": 2.0 * 1.35})
        )
        assert report.status == "fail"
        assert [v.kind for v in report.violations] == ["wall-clock"]

    def test_round_count_deviation_fails_exactly(self):
        report = compare_benchmarks(_records(), _records(bench_c={"global_rounds": 18}))
        assert report.status == "fail"
        assert [v.kind for v in report.violations] == ["round-count"]
        # Non-round drift is informational only.
        drifted = compare_benchmarks(_records(), _records(bench_a={"n": 65}))
        assert drifted.status == "pass"
        assert any("drift" in note for note in drifted.notes)

    def test_missing_record_fails_and_new_record_is_noted(self):
        report = compare_benchmarks(_records(), _records()[:2])
        assert report.status == "fail"
        assert [v.kind for v in report.violations] == ["missing-record"]
        report = compare_benchmarks(_records()[:2], _records())
        assert report.status == "pass"
        assert any("new record" in note for note in report.notes)

    def test_micro_benchmarks_are_exempt_from_wall_clock_only(self):
        base = _records(bench_a={"wall_time_seconds": 0.004})
        current = _records(bench_a={"wall_time_seconds": 0.009})  # 2.2x, but 4ms
        assert compare_benchmarks(base, current).status == "pass"
        # Round counts still gate micro-benchmarks exactly.
        current = _records(bench_a={"wall_time_seconds": 0.009, "measured_rounds": 101})
        report = compare_benchmarks(base, current)
        assert report.status == "fail"
        assert [v.kind for v in report.violations] == ["round-count"]
        # And the floor is configurable.
        assert (
            compare_benchmarks(
                base, _records(bench_a={"wall_time_seconds": 0.009}), min_wall_seconds=0.001
            ).status
            == "fail"
        )
        # Micro-benchmarks are also excluded from the machine-speed median:
        # bench_a's 2.2x jitter ratio must not skew the factor the real
        # benchmarks get normalized by.
        report = compare_benchmarks(base, _records(bench_a={"wall_time_seconds": 0.009}))
        assert report.speed_factor == pytest.approx(1.0)

    def test_normalization_can_be_disabled(self):
        current = _records()
        for record in current:
            record["wall_time_seconds"] *= 3.0
        report = compare_benchmarks(_records(), current, normalize=False)
        assert report.status == "fail"
        assert all(v.kind == "wall-clock" for v in report.violations)

    def test_manifest_comparison_is_exact(self, tmp_path):
        shards = plan_shards(["E6"], scale="small")
        store = ArtifactStore(tmp_path / "store")
        ExperimentEngine(store, jobs=1).run(shards)
        manifest = store.build_manifest()
        assert compare_manifests(manifest, manifest).status == "pass"
        tampered = json.loads(json.dumps(manifest))
        key = next(iter(tampered["shards"]))
        tampered["shards"][key]["payload_hash"] = "0" * 64
        report = compare_manifests(manifest, tampered)
        assert report.status == "fail" and report.violations[0].metric == "payload_hash"

    def test_run_regression_detects_file_kinds(self, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(_records()))
        assert run_regression(bench, bench).kind == "benchmarks"
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({"version": 1, "shards": {}}))
        assert run_regression(manifest, manifest).kind == "manifest"
        with pytest.raises(ValueError):
            run_regression(bench, manifest)
