"""Tests for the static invariant linter (repro.analysis.lint).

Each RL rule is exercised against good/bad fixture files under
``tests/lint_fixtures/`` -- the bad fixture proves the rule fires, the good
fixture proves it does not over-fire.  The waiver layer (parsing, stale
detection, malformed comments), the JSON artifact schema, ``--select``
semantics, the CLI exit codes (plus ``--format github`` and
``--waiver-report``), RL000 parse-failure hardening, the whole-program
rules RL006-RL008, the scoped docstring rule RL009, and the clean-tree
self-check (with its wall-clock
budget) are covered alongside.  The resolution layer itself is covered in
``tests/test_lint_resolver.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.lint import lint_paths
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.waivers import collect_waivers
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent


def lint_fixture(*names: str, select=None):
    """Lint the named fixture files/dirs with the given rule selection."""
    return lint_paths([str(FIXTURES / name) for name in names], select=select)


def codes(report) -> list[str]:
    return [diagnostic.code for diagnostic in report.active]


class TestRL001Determinism:
    def test_fires_on_nondeterminism_sources(self):
        report = lint_fixture("rl001_bad.py", select=["RL001"])
        messages = "\n".join(d.message for d in report.active)
        assert set(codes(report)) == {"RL001"}
        assert "os.urandom" in messages
        assert "random.SystemRandom" in messages
        assert "time.time" in messages
        assert "time.perf_counter" in messages
        assert "id(" in messages or "id()" in messages
        assert len(report.active) >= 10

    def test_quiet_on_seeded_rng(self):
        report = lint_fixture("rl001_good.py", select=["RL001"])
        assert report.active == []

    def test_clocks_exempt_in_benchmarks(self):
        report = lint_fixture("benchmarks/clock_ok.py", select=["RL001"])
        assert report.active == []


class TestRL002Ordering:
    def test_fires_on_set_iteration(self):
        report = lint_fixture("rl002_bad.py", select=["RL002"])
        assert set(codes(report)) == {"RL002"}
        assert len(report.active) >= 5

    def test_quiet_on_sorted_and_order_free_consumers(self):
        report = lint_fixture("rl002_good.py", select=["RL002"])
        assert report.active == []


class TestRL003PlaneParity:
    def test_matching_planes_are_clean(self):
        report = lint_fixture("parity_good", select=["RL003"])
        assert report.active == []

    def test_rename_and_param_drift_fire(self):
        report = lint_fixture("parity_bad", select=["RL003"])
        messages = "\n".join(d.message for d in report.active)
        assert set(codes(report)) == {"RL003"}
        # Renamed compiled kernel (distance_matrix -> distance_matrix_v2).
        assert "distance_matrix" in messages
        # Parameter-name drift (sources -> source_rows).
        assert "hop_limited_matrix" in messages
        # Oracle def whose params drifted from its own registry entry.
        assert "stale_entry" in messages

    def test_missing_registry_fires(self):
        report = lint_fixture("parity_missing_registry", select=["RL003"])
        assert codes(report) == ["RL003"]
        assert "PLANE_KERNELS" in report.active[0].message


class TestRL004MetricsAccounting:
    def test_direct_field_writes_fire(self):
        report = lint_fixture("rl004_bad.py", select=["RL004"])
        messages = "\n".join(d.message for d in report.active)
        assert set(codes(report)) == {"RL004"}
        assert len(report.active) == 5
        assert "global_rounds" in messages
        assert "phases" in messages

    def test_accessor_calls_and_reads_are_clean(self):
        report = lint_fixture("rl004_good.py", select=["RL004"])
        assert report.active == []

    def test_accounting_layer_itself_is_exempt(self):
        report = lint_fixture("allowed/repro/hybrid/metrics.py", select=["RL004"])
        assert report.active == []


class TestRL005ForkLabels:
    def test_unauditable_and_duplicate_labels_fire(self):
        report = lint_fixture("rl005_bad.py", select=["RL005"])
        messages = "\n".join(d.message for d in report.active)
        assert set(codes(report)) == {"RL005"}
        # One finding per bad construct in unauditable_labels, plus the dup.
        assert len(report.active) == 6
        assert "skeleton:sampling" in messages  # duplicate label cited

    def test_canonical_literals_and_suffix_idiom_are_clean(self):
        report = lint_fixture("rl005_good.py", select=["RL005"])
        assert report.active == []

    def test_uniqueness_is_cross_file(self):
        # Each file is clean alone, but they share the label "skeleton:sampling":
        # rl005_bad.py sorts first, so the good file's use becomes the duplicate.
        alone = lint_fixture("rl005_good.py", select=["RL005"])
        together = lint_fixture("rl005_good.py", "rl005_bad.py", select=["RL005"])
        assert alone.active == []
        dup_findings = [d for d in together.active if "rl005_good" in d.path]
        assert len(dup_findings) == 1
        assert "skeleton:sampling" in dup_findings[0].message
        assert len(together.active) == 7


class TestRL000ParseFailures:
    def test_syntax_error_is_a_diagnostic_not_a_crash(self):
        report = lint_fixture("rl000_syntax_error.py")
        assert codes(report) == ["RL000"]
        assert "syntax error" in report.active[0].message
        assert report.active[0].line == 2
        assert not report.ok
        assert report.files_checked == 1

    def test_run_continues_past_the_broken_file(self):
        report = lint_fixture("rl000_syntax_error.py", "rl001_bad.py", select=["RL001"])
        found = set(codes(report))
        assert "RL000" in found  # The broken file is reported...
        assert "RL001" in found  # ...and the healthy file still got checked.
        assert report.files_checked == 2

    def test_cli_exits_one_on_unparsable_file(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "rl000_syntax_error.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL000" in out


class TestRL006ForkSafety:
    def test_fires_through_cross_module_calls(self):
        report = lint_fixture("rl006_bad", select=["RL006"])
        messages = "\n".join(d.message for d in report.active)
        assert set(codes(report)) == {"RL006"}
        # One mutation plus two reads of _HITS, all inside record_hit --
        # one call away from the entry point, in a different module.
        assert len(report.active) == 3
        assert "execute_shard" in messages
        assert "record_hit" in messages
        assert "_HITS" in messages
        assert all("rl006_bad/cache.py" in d.path for d in report.active)

    def test_quiet_on_constants_and_never_mutated_tables(self):
        report = lint_fixture("rl006_good", select=["RL006"])
        assert report.active == []

    def test_quiet_without_an_entry_point_module(self):
        # The same mutable state, but no experiments/engine.py in scope.
        report = lint_fixture("rl006_bad/cache.py", select=["RL006"])
        assert report.active == []


class TestRL007NjitSubset:
    def test_fires_on_each_subset_violation(self):
        report = lint_fixture("rl007_bad.py", select=["RL007"])
        messages = "\n".join(d.message for d in report.active)
        assert set(codes(report)) == {"RL007"}
        assert len(report.active) == 6
        assert "**kwargs" in messages
        assert "JoinedStr" in messages
        assert "np.nansum" in messages
        assert "_CACHE" in messages
        assert "ListComp" in messages
        assert "non-njit project function '_python_helper'" in messages

    def test_quiet_on_conforming_kernels(self):
        # Includes a closure over a cross-module immutable constant and an
        # njit-to-njit call -- both must resolve as safe.
        report = lint_fixture("rl007_good.py", "rl007_good_constants.py", select=["RL007"])
        assert report.active == []

    def test_validation_is_static_no_numba_needed(self):
        # The checker must never import numba (the pure-numpy CI leg runs
        # exactly this selection with numba uninstalled).
        import sys

        preloaded = "numba" in sys.modules
        report = lint_fixture("rl007_bad.py", select=["RL007"])
        assert len(report.active) == 6
        assert ("numba" in sys.modules) == preloaded


class TestRL008CacheInvalidation:
    def test_fires_on_unbumped_writes_including_external(self):
        report = lint_fixture("rl008_bad.py", select=["RL008"])
        messages = "\n".join(d.message for d in report.active)
        assert set(codes(report)) == {"RL008"}
        assert len(report.active) == 3
        assert "'add_node' writes 'self.node_count'" in messages
        assert "'set_mode' writes 'self.mode'" in messages
        # The external write through an annotated parameter.
        assert "'resize' writes 'graph.node_count'" in messages

    def test_quiet_on_every_sanctioned_discipline(self):
        # Version bumps, hook calls, cache-slot fills, lazy-fill counters,
        # and a disciplined external writer.
        report = lint_fixture("rl008_good.py", select=["RL008"])
        assert report.active == []


class TestRL009DocstringDiscipline:
    def test_fires_on_undocumented_serving_surface(self):
        report = lint_fixture("rl009_bad", select=["RL009"])
        messages = "\n".join(d.message for d in report.active)
        assert set(codes(report)) == {"RL009"}
        # Serving module: no module docstring, undocumented class +
        # function, and a class docstring without its DESIGN.md anchor.
        assert "module on the serving surface has no docstring" in messages
        assert "'UndocumentedHandler' has no docstring" in messages
        assert "'UnanchoredHandler' must cross-reference" in messages
        assert "'describe' has no docstring" in messages
        assert "'public_entry' has no docstring" in messages
        # Session query surface: documented-but-unanchored and undocumented.
        assert "query-surface method 'sssp' must cross-reference" in messages
        assert "'diameter' has no docstring" in messages

    def test_quiet_on_documented_surface_and_private_names(self):
        report = lint_fixture("rl009_good", select=["RL009"])
        assert report.active == []

    def test_out_of_scope_files_are_ignored(self):
        # A module far from the serving surface never triggers RL009,
        # documented or not.
        report = lint_fixture("rl001_bad.py", select=["RL009"])
        assert report.active == []


class TestWaivers:
    def test_waiver_suppresses_and_records(self):
        report = lint_fixture("waiver_ok.py", select=["RL001"])
        assert report.active == []
        assert len(report.waived) == 1
        waived = report.waived[0]
        assert waived.code == "RL001"
        assert waived.waiver_reason == "report footer timestamp; display only"
        assert report.ok

    def test_stale_waiver_fails_the_run(self):
        report = lint_fixture("waiver_stale.py", select=["RL001"])
        assert codes(report) == ["RL091"]
        assert "stale waiver" in report.active[0].message
        assert not report.ok

    def test_stale_check_skipped_for_unselected_codes(self):
        # The RL001 checker never ran, so its waiver cannot be judged stale.
        report = lint_fixture("waiver_stale.py", select=["RL002"])
        assert report.active == []

    def test_malformed_waivers_fire_and_do_not_suppress(self):
        report = lint_fixture("waiver_malformed.py", select=["RL001"])
        assert sorted(set(codes(report))) == ["RL001", "RL090"]
        assert codes(report).count("RL090") == 3
        assert codes(report).count("RL001") == 3  # nothing got suppressed
        assert report.waived == []

    def test_trailing_comment_targets_its_own_line(self):
        waivers, malformed = collect_waivers(
            "x.py", "value = risky()  # repro-lint: waive[RL001] -- reviewed\n"
        )
        assert malformed == []
        assert len(waivers) == 1
        assert waivers[0].comment_line == 1
        assert waivers[0].target_line == 1

    def test_standalone_comment_targets_next_line(self):
        waivers, _ = collect_waivers(
            "x.py",
            "# repro-lint: waive[RL001,RL002] -- reviewed pair\nvalue = risky()\n",
        )
        assert len(waivers) == 1
        assert waivers[0].target_line == 2
        assert waivers[0].codes == ("RL001", "RL002")
        assert waivers[0].reason == "reviewed pair"


class TestReportAndSelect:
    def test_diagnostic_format_is_canonical(self):
        diagnostic = Diagnostic("a/b.py", 3, 7, "RL001", "uses os.urandom")
        assert diagnostic.format() == "a/b.py:3:7 RL001 uses os.urandom"

    def test_json_schema(self):
        report = lint_fixture("waiver_ok.py", "waiver_stale.py", select=["RL001"])
        document = json.loads(json.dumps(report.as_dict()))
        assert document["version"] == 1
        assert document["selected"] == ["RL001"]
        assert document["files_checked"] == 2
        assert document["summary"] == {"active": 1, "waived": 1, "ok": False}
        for record in document["diagnostics"]:
            assert set(record) >= {"path", "line", "col", "code", "message", "waived"}
            assert ("waiver_reason" in record) == record["waived"]

    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="RL999"):
            lint_fixture("rl001_good.py", select=["RL999"])

    def test_select_filters_other_rules_out(self):
        report = lint_fixture("rl001_bad.py", select=["RL002"])
        assert report.active == []


class TestCLI:
    def test_exit_zero_on_clean_path(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "rl001_good.py")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out

    def test_exit_one_on_findings(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "rl001_bad.py"), "--select", "RL001"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL001" in out

    def test_exit_two_on_unknown_select(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "rl001_good.py"), "--select", "RL999"])
        err = capsys.readouterr().err
        assert code == 2
        assert "RL999" in err

    def test_json_output_parses(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "waiver_ok.py"), "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert document["summary"]["ok"] is True
        assert document["summary"]["waived"] == 1

    def test_show_waived_prints_suppressed_findings(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "waiver_ok.py"), "--show-waived"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[waived: report footer timestamp; display only]" in out

    def test_github_format_emits_error_annotations(self, capsys):
        code = cli_main(
            ["lint", str(FIXTURES / "rl001_bad.py"), "--select", "RL001", "--format", "github"]
        )
        out = capsys.readouterr().out
        assert code == 1
        first = out.splitlines()[0]
        assert first.startswith("::error file=")
        assert ",line=" in first and ",col=" in first
        assert "::RL001 " in first

    def test_github_format_omits_waived_findings(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "waiver_ok.py"), "--format", "github"])
        out = capsys.readouterr().out
        assert code == 0
        assert "::error" not in out
        assert "0 finding(s)" in out

    def test_waiver_report_lists_reason_and_location(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "waiver_ok.py"), "--waiver-report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "report footer timestamp; display only" in out
        assert "[RL001]" in out
        assert "waivers: 1 reviewed" in out

    def test_waiver_report_json_schema(self, capsys):
        code = cli_main(
            ["lint", str(FIXTURES / "waiver_ok.py"), "--waiver-report", "--format", "json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert document["version"] == 1
        assert document["count"] == 1
        record = document["waivers"][0]
        assert set(record) == {"path", "comment_line", "target_line", "codes", "reason"}
        assert record["codes"] == ["RL001"]

    def test_waiver_report_covers_the_real_tree(self, capsys):
        code = cli_main(
            [
                "lint",
                str(REPO_ROOT / "src" / "repro"),
                "--waiver-report",
                "--format",
                "json",
            ]
        )
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        # The tree carries the reviewed RL001/RL005/RL006 exceptions; every
        # one must surface here with a non-empty reason.
        assert document["count"] >= 12
        assert all(record["reason"] for record in document["waivers"])
        flagged = {code for record in document["waivers"] for code in record["codes"]}
        assert {"RL001", "RL006"} <= flagged


class TestCleanTree:
    def test_source_tree_lints_clean_within_budget(self):
        start = time.monotonic()
        report = lint_paths([str(REPO_ROOT / "src" / "repro")])
        elapsed = time.monotonic() - start
        assert report.active == [], "\n" + report.format_text()
        assert report.files_checked > 50
        # Whole-program analysis (symbols + call graph + data flow) must not
        # quietly blow up CI time; the budget is generous (~10x headroom).
        assert elapsed < 10.0, f"full-tree lint took {elapsed:.1f}s (budget 10s)"
