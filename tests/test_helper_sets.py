"""Tests for helper sets (Definition 2.1 / Algorithm 1 / Lemma 2.2)."""

import pytest

from repro.core.helper_sets import compute_helper_sets, helper_parameter
from repro.graphs import generators
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.rand import RandomSource, sample_nodes


@pytest.fixture
def network():
    graph = generators.random_geometric_like_graph(
        60, neighbourhood=2, rng=RandomSource(5), extra_edge_probability=0.02
    )
    return HybridNetwork(graph, ModelConfig(rng_seed=4))


def sampled_members(network, probability, seed):
    members = sample_nodes(network.graph.nodes(), probability, RandomSource(seed))
    return members or [0]


class TestHelperParameter:
    def test_bounded_by_sqrt_k(self):
        assert helper_parameter(n=1000, member_count=10, tokens_per_member=49) == 7

    def test_bounded_by_density(self):
        assert helper_parameter(n=100, member_count=50, tokens_per_member=10_000) == 2

    def test_at_least_one(self):
        assert helper_parameter(n=10, member_count=10, tokens_per_member=0) == 1

    def test_empty_member_set(self):
        assert helper_parameter(n=10, member_count=0, tokens_per_member=5) == 1


class TestComputeHelperSets:
    def test_every_member_has_helpers(self, network):
        members = sampled_members(network, 0.2, seed=1)
        helpers = compute_helper_sets(network, members, tokens_per_member=9)
        assert set(helpers.helpers) == set(members)
        assert helpers.min_helper_count() >= 1

    def test_membership_load_is_small(self, network):
        members = sampled_members(network, 0.15, seed=2)
        helpers = compute_helper_sets(network, members, tokens_per_member=16)
        # Property (3) of Definition 2.1: Õ(1) sets per node; at this scale a
        # generous constant * log n bound.
        bound = 4 * network.config.log_rounds(network.n) + 4
        assert helpers.max_membership_load() <= bound

    def test_helpers_are_nearby(self, network):
        members = sampled_members(network, 0.15, seed=3)
        helpers = compute_helper_sets(network, members, tokens_per_member=16)
        # Property (2): hop distance Õ(µ); the clustering radius is the bound
        # our construction guarantees.
        radius_bound = 2 * helpers.clustering.radius + 1
        assert helpers.max_helper_radius(network) <= radius_bound

    def test_mu_matches_parameter_formula(self, network):
        members = sampled_members(network, 0.2, seed=4)
        helpers = compute_helper_sets(network, members, tokens_per_member=25)
        assert helpers.mu == helper_parameter(network.n, len(set(members)), 25)

    def test_rounds_charged_positive(self, network):
        members = sampled_members(network, 0.2, seed=5)
        before = network.metrics.total_rounds
        helpers = compute_helper_sets(network, members, tokens_per_member=4)
        assert helpers.rounds_charged == network.metrics.total_rounds - before
        assert helpers.rounds_charged > 0

    def test_empty_member_set_rejected(self, network):
        with pytest.raises(ValueError):
            compute_helper_sets(network, [], tokens_per_member=3)

    def test_member_is_its_own_helper_fallback(self, network):
        helpers = compute_helper_sets(network, [7], tokens_per_member=1)
        assert 7 in helpers.helpers[7]

    def test_helper_sets_grow_with_k(self, network):
        members = sampled_members(network, 0.1, seed=6)
        small_net = HybridNetwork(network.graph, ModelConfig(rng_seed=8))
        large_net = HybridNetwork(network.graph, ModelConfig(rng_seed=8))
        small = compute_helper_sets(small_net, members, tokens_per_member=1)
        large = compute_helper_sets(large_net, members, tokens_per_member=36)
        assert large.mu >= small.mu

    def test_deterministic_given_seed(self, network):
        members = sampled_members(network, 0.2, seed=7)
        net_a = HybridNetwork(network.graph, ModelConfig(rng_seed=42))
        net_b = HybridNetwork(network.graph, ModelConfig(rng_seed=42))
        a = compute_helper_sets(net_a, members, tokens_per_member=9)
        b = compute_helper_sets(net_b, members, tokens_per_member=9)
        assert a.helpers == b.helpers
