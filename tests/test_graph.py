"""Unit tests for the weighted graph kernel (repro.graphs.graph)."""


import pytest

from repro.graphs import generators
from repro.graphs.graph import DELTA_LOG_LIMIT, INFINITY, WeightedGraph
from repro.util.rand import RandomSource


def build_triangle() -> WeightedGraph:
    graph = WeightedGraph(3)
    graph.add_edge(0, 1, 2)
    graph.add_edge(1, 2, 3)
    graph.add_edge(0, 2, 10)
    return graph


class TestBasicStructure:
    def test_node_count(self):
        assert WeightedGraph(5).node_count == 5

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            WeightedGraph(0)

    def test_add_edge_and_weight(self):
        graph = build_triangle()
        assert graph.has_edge(0, 1)
        assert graph.weight(0, 1) == 2
        assert graph.weight(1, 0) == 2

    def test_edge_count(self):
        assert build_triangle().edge_count == 3

    def test_self_loop_rejected(self):
        graph = WeightedGraph(3)
        with pytest.raises(ValueError):
            graph.add_edge(1, 1, 1)

    def test_nonpositive_weight_rejected(self):
        graph = WeightedGraph(3)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 0)

    def test_out_of_range_node_rejected(self):
        graph = WeightedGraph(3)
        with pytest.raises(ValueError):
            graph.add_edge(0, 3, 1)

    def test_remove_edge(self):
        graph = build_triangle()
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.edge_count == 2

    def test_remove_missing_edge_raises(self):
        graph = WeightedGraph(3)
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_neighbors_and_degree(self):
        graph = build_triangle()
        assert sorted(graph.neighbors(0)) == [1, 2]
        assert graph.degree(0) == 2
        assert graph.max_degree() == 2

    def test_edges_iteration_is_undirected_once(self):
        edges = list(build_triangle().edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _ in edges)

    def test_max_weight_and_unweighted_flag(self):
        graph = build_triangle()
        assert graph.max_weight() == 10
        assert not graph.is_unweighted()
        unweighted = generators.path_graph(4)
        assert unweighted.is_unweighted()

    def test_total_weight(self):
        assert build_triangle().total_weight() == 15

    def test_copy_is_independent(self):
        graph = build_triangle()
        clone = graph.copy()
        clone.remove_edge(0, 1)
        assert graph.has_edge(0, 1)
        assert not clone.has_edge(0, 1)


class TestTraversal:
    def test_bfs_hops_on_path(self):
        path = generators.path_graph(6)
        hops = path.bfs_hops(0)
        assert hops[5] == 5
        assert hops[0] == 0

    def test_bfs_hops_with_limit(self):
        path = generators.path_graph(6)
        hops = path.bfs_hops(0, max_hops=2)
        assert set(hops) == {0, 1, 2}

    def test_ball(self):
        path = generators.path_graph(7)
        assert sorted(path.ball(3, 1)) == [2, 3, 4]

    def test_hop_distance(self):
        path = generators.path_graph(5)
        assert path.hop_distance(0, 4) == 4
        assert path.hop_distance(2, 2) == 0

    def test_hop_distance_disconnected(self):
        graph = WeightedGraph(4)
        graph.add_edge(0, 1, 1)
        graph.add_edge(2, 3, 1)
        assert graph.hop_distance(0, 3) == INFINITY

    def test_hop_diameter_of_path(self):
        assert generators.path_graph(9).hop_diameter() == 8

    def test_hop_diameter_of_complete_graph(self):
        assert generators.complete_graph(5).hop_diameter() == 1

    def test_hop_diameter_disconnected(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 1)
        assert graph.hop_diameter() == INFINITY

    def test_is_connected(self):
        assert generators.path_graph(4).is_connected()
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 1)
        assert not graph.is_connected()

    def test_connected_components(self):
        graph = WeightedGraph(5)
        graph.add_edge(0, 1, 1)
        graph.add_edge(2, 3, 1)
        components = graph.connected_components()
        assert [0, 1] in components and [2, 3] in components and [4] in components


class TestDistances:
    def test_dijkstra_prefers_light_path(self):
        graph = build_triangle()
        distances = graph.dijkstra(0)
        assert distances[2] == 5  # via node 1, not the weight-10 edge

    def test_dijkstra_with_targets_contains_target(self):
        graph = build_triangle()
        distances = graph.dijkstra(0, targets=[2])
        assert distances[2] == 5

    def test_dijkstra_with_parents_reconstructs_path(self):
        graph = build_triangle()
        distances, parents = graph.dijkstra_with_parents(0)
        assert distances[2] == 5
        assert parents[2] == 1

    def test_hop_limited_distances_respects_limit(self):
        graph = build_triangle()
        limited = graph.hop_limited_distances(0, 1)
        # With one hop the only way to node 2 is the direct weight-10 edge.
        assert limited[2] == 10
        assert limited[1] == 2

    def test_hop_limited_distances_equals_dijkstra_with_enough_hops(self):
        rng = RandomSource(5)
        graph = generators.connected_workload(25, rng, weighted=True, max_weight=7)
        exact = graph.dijkstra(0)
        limited = graph.hop_limited_distances(0, 25)
        assert limited == exact

    def test_hop_limited_zero_hops(self):
        graph = build_triangle()
        assert graph.hop_limited_distances(0, 0) == {0: 0.0}

    def test_shortest_distances_within_hops_exact_for_short_paths(self):
        rng = RandomSource(8)
        graph = generators.connected_workload(30, rng, weighted=True, max_weight=5)
        exact = graph.dijkstra(0)
        fast = graph.shortest_distances_within_hops(0, 30)
        assert fast == exact

    def test_shortest_distances_within_hops_is_upper_bound(self):
        graph = build_triangle()
        fast = graph.shortest_distances_within_hops(0, 1)
        exact = graph.dijkstra(0)
        for node, value in fast.items():
            assert value >= exact[node] - 1e-12

    def test_shortest_path_hops(self):
        path = generators.path_graph(5)
        assert path.shortest_path_hops(0, 4) == [0, 1, 2, 3, 4]

    def test_shortest_path_hops_disconnected(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 1)
        assert graph.shortest_path_hops(0, 2) is None


class TestConversion:
    def test_subgraph(self):
        graph = build_triangle()
        sub, mapping = graph.subgraph([0, 1])
        assert sub.node_count == 2
        assert sub.has_edge(mapping[0], mapping[1])
        assert sub.edge_count == 1

    def test_networkx_roundtrip(self):
        graph = build_triangle()
        back = WeightedGraph.from_networkx(graph.to_networkx())
        assert back.edge_count == graph.edge_count
        assert back.weight(0, 2) == 10

    def test_from_edges(self):
        graph = WeightedGraph.from_edges(3, [(0, 1, 4), (1, 2, 5)])
        assert graph.weight(0, 1) == 4
        assert graph.weight(1, 2) == 5


class TestMutationSemantics:
    """Pinned mutation semantics behind the delta log (DESIGN.md §12)."""

    def test_add_edge_duplicate_replaces_weight(self):
        graph = build_triangle()
        version = graph.version
        graph.add_edge(0, 1, 7)
        assert graph.weight(0, 1) == 7
        assert graph.weight(1, 0) == 7
        assert graph.edge_count == 3
        assert graph.version == version + 1
        assert graph.deltas_since(version)[-1].kind == "update"

    def test_add_edge_same_weight_is_noop(self):
        graph = build_triangle()
        version = graph.version
        graph.add_edge(0, 1, 2)
        assert graph.version == version
        assert graph.deltas_since(version) == []

    def test_update_weight_requires_existing_edge(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 2)
        with pytest.raises(KeyError):
            graph.update_weight(1, 2, 5)

    def test_update_weight_rejects_nonpositive(self):
        graph = build_triangle()
        with pytest.raises(ValueError):
            graph.update_weight(0, 1, 0)

    def test_update_weight_same_weight_is_noop(self):
        graph = build_triangle()
        version = graph.version
        graph.update_weight(0, 1, 2)
        assert graph.version == version

    def test_update_weight_patches_both_directions_and_bumps_version(self):
        graph = build_triangle()
        version = graph.version
        graph.update_weight(2, 0, 4)
        assert graph.weight(0, 2) == 4
        assert graph.weight(2, 0) == 4
        assert graph.version == version + 1

    def test_update_weight_keeps_hop_diameter_cache(self):
        graph = build_triangle()
        assert graph.hop_diameter() == 1
        graph.update_weight(0, 1, 9)
        assert graph._hop_diameter is not None
        assert graph.hop_diameter() == 1

    def test_update_weight_refreshes_csr_in_place(self):
        graph = WeightedGraph(4, backend="csr")
        graph.add_edge(0, 1, 2)
        graph.add_edge(1, 2, 3)
        graph.add_edge(2, 3, 4)
        before = graph.csr()
        graph.update_weight(1, 2, 9)
        after = graph.csr()
        assert after is not before
        # The refresh shares the topology arrays and only rewrites weights.
        assert after.indptr is before.indptr
        assert after.indices is before.indices
        rebuilt = WeightedGraph.from_edges(4, graph.edges(), backend="csr").csr()
        assert (after.weights == rebuilt.weights).all()
        assert (after.indptr == rebuilt.indptr).all()

    def test_every_mutation_records_a_delta(self):
        graph = WeightedGraph(4)
        start = graph.version
        graph.add_edge(0, 1, 2)
        graph.add_edge(1, 2, 3)
        graph.update_weight(0, 1, 5)
        graph.remove_edge(1, 2)
        deltas = graph.deltas_since(start)
        assert [d.kind for d in deltas] == ["add", "add", "update", "remove"]
        assert [(d.u, d.v) for d in deltas] == [(0, 1), (1, 2), (0, 1), (1, 2)]
        assert [d.version for d in deltas] == [start + 1, start + 2, start + 3, start + 4]
        add, _, update, remove = deltas
        assert (add.weight, add.old_weight, add.topological) == (2, None, True)
        assert (update.weight, update.old_weight, update.topological) == (5, 2, False)
        assert (remove.weight, remove.old_weight, remove.topological) == (None, 3, True)

    def test_deltas_since_edge_cases(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 1)
        assert graph.deltas_since(graph.version) == []
        assert graph.deltas_since(graph.version + 1) is None  # future version
        # A gap wider than the bounded log is reported as uncoverable.
        for _ in range(DELTA_LOG_LIMIT + 1):
            graph.update_weight(0, 1, 2)
            graph.update_weight(0, 1, 1)
        assert graph.deltas_since(0) is None
        assert len(graph.deltas_since(graph.version - DELTA_LOG_LIMIT)) == DELTA_LOG_LIMIT
