"""Good fixture: order-insensitive or sorted set consumption, no RL002."""


def sorted_iteration(n):
    receivers = {3, 1, 2}
    return [(node, "payload") for node in sorted(receivers)]


def order_insensitive_consumers(nodes, members):
    helpers = set(nodes) & set(members)
    total = sum(helpers)
    low, high = min(helpers), max(helpers)
    size = len(helpers)
    present = 3 in helpers
    frozen = frozenset(helpers)
    rebuilt = {node + 1 for node in helpers}  # set -> set stays unordered
    return total, low, high, size, present, frozen, rebuilt


def list_rebinding_is_not_a_set(nodes):
    collected = set(nodes)
    collected = [node for node in sorted(nodes)]  # rebound to a list
    return [item for item in collected]
