"""A literal registry whose values make functions address-taken."""

from resolver_pkg.tasks import hidden_task

REGISTRY = {"x": hidden_task}
