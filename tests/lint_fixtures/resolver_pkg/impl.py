"""``import x as y`` module aliasing + dotted-attribute resolution."""

import resolver_pkg.state as st


def run_helper():
    return st.mutate()
