"""Other half of the cycle: resolution and reachability must terminate."""

from resolver_pkg.cycle_a import ping


def pong(depth):
    if depth <= 0:
        return 1
    return ping(depth - 1)
