"""Dynamic call through a registry value: must fall back conservatively."""

from resolver_pkg.registry import REGISTRY


def dispatch(key):
    task = REGISTRY[key]
    return task()
