"""Mutable state only reachable through a dynamic registry dispatch."""

_COUNT: list = [0]


def bump():
    _COUNT[0] = _COUNT[0] + 1
    return _COUNT[0]
