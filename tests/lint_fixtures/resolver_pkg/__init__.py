"""Resolver fixture package: re-exports through ``__init__`` under test."""

from resolver_pkg.impl import run_helper as helper

__all__ = ["helper"]
