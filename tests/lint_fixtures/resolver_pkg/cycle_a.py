"""Half of an import + call cycle (never imported at runtime; AST only)."""

from resolver_pkg.cycle_b import pong


def ping(depth):
    if depth <= 0:
        return 0
    return pong(depth - 1)
