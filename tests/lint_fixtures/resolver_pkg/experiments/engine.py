"""Fixture worker entry point exercising every resolution path at once."""

from resolver_pkg import helper
from resolver_pkg.cycle_a import ping
from resolver_pkg.dispatch import dispatch


def execute_shard(shard):
    helper()
    ping(3)
    return dispatch("x")
