"""``from x import f as g`` aliasing on the dynamic-dispatch path."""

from resolver_pkg.counter import bump as bump_alias


def hidden_task():
    return bump_alias()
