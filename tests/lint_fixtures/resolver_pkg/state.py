"""Module-level mutable state at the end of an alias/re-export chain."""

_CALLS: list = []


def mutate():
    _CALLS.append(1)
    return len(_CALLS)
