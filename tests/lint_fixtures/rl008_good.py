"""RL008 good fixture: every discipline the rule must recognize as safe.

Covers: version bump in the mutator, invalidation-hook calls, cache-slot
fills (None-default attributes), lazy-fill blocks charging counters while
materializing a cache, and a disciplined external writer.
"""


class WeightedGraph:
    def __init__(self):
        self._version = 0
        self._csr = None
        self.node_count = 0
        self.fill_rounds = 0

    def add_node(self):
        self.node_count += 1
        self._version += 1

    def ensure_csr(self):
        if self._csr is None:
            self._csr = (self.node_count,)
            self.fill_rounds += 1  # Counter inside the lazy-fill block.
        return self._csr

    def rebuild_csr(self):
        self._csr = (self.node_count,)  # Cache-slot write: always allowed.


class HybridSession:
    def __init__(self):
        self._graph_version = -1
        self.mode = "idle"

    def invalidate(self):
        self._graph_version = 0

    def set_mode(self, mode):
        self.mode = mode
        self.invalidate()


def resize(graph: WeightedGraph, count):
    graph.node_count = count
    graph._version += 1
    return graph
