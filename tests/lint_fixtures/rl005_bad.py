"""Bad fixture: unauditable, malformed, and duplicated RNG fork labels."""


def unauditable_labels(network, rng, phase, index):
    a = network.fork_rng(phase)  # bare variable: not statically auditable
    b = rng.fork(f"phase:{index}")  # f-string: runtime-dependent
    c = rng.fork("Skeleton:Sampling")  # uppercase: not canonical
    d = rng.fork("sampling")  # single segment: no area prefix
    e = network.fork_rng(phase + "hash")  # suffix must be ':'-led
    return a, b, c, d, e


def duplicate_literals(rng):
    first = rng.fork("skeleton:sampling")
    second = rng.fork("skeleton:sampling")  # same label, same stream
    return first, second
