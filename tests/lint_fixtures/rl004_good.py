"""Good fixture: charges routed through the accounting layer, reads allowed."""


def account_properly(metrics, other):
    metrics.charge_global(2, phase="apsp:routing")
    metrics.charge_local(1)
    metrics.record_global_traffic(4, 128, 2, 2, receive_cap=8)
    metrics.record_cut_bits("half", 12)
    metrics.merge(other)
    snapshot = (metrics.global_rounds, metrics.local_rounds)  # reads are fine
    unrelated_rounds = 3
    return snapshot, unrelated_rounds
