"""Fixture: malformed waivers (RL090) -- missing reason, bad codes, typo'd form."""

import time


def bad_waivers():
    # repro-lint: waive[RL001]
    first = time.time()
    # repro-lint: waive[not-a-code] -- reason present but codes invalid
    second = time.time()
    # repro-lint: waive(RL001) -- parentheses instead of brackets
    third = time.time()
    return first, second, third
