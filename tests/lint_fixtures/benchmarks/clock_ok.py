"""Good fixture: wall-clock reads are exempt inside benchmark files."""

import time


def measure(kernel):
    started = time.perf_counter()
    result = kernel()
    return result, time.perf_counter() - started
