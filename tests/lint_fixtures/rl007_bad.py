"""RL007 bad fixture: an @njit kernel full of nopython-subset violations."""

import numpy as np

try:
    from numba import njit
except ImportError:  # The linter never imports numba; the guard is idiom.
    njit = None

_CACHE: dict = {}


def _python_helper(value):
    _CACHE[0] = value
    return value


@njit(cache=True)
def bad_kernel(values, **options):
    label = f"n={values.shape[0]}"
    total = np.nansum(values)
    _CACHE[1] = total
    squares = [value * value for value in values]
    return _python_helper(total), label, squares
