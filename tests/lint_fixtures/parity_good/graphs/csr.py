"""Good parity fixture: oracle module with a complete literal registry."""

PLANE_KERNELS = {
    "distance_matrix": ("csr", "sources"),
    "bfs_level_matrix": ("csr", "sources", "max_hops"),
    "fault_hash_columns": ("prefix", "columns"),
}


def distance_matrix(csr, sources):
    return [(csr, source) for source in sources]


def bfs_level_matrix(csr, sources, max_hops=None):
    return [(csr, source, max_hops) for source in sources]
