"""Good parity fixture: counterpart defs (one conditional) plus a degradation."""

HAS_ACCELERATOR = False

if HAS_ACCELERATOR:

    def distance_matrix(csr, sources):
        return [(csr, source) for source in sources]

else:
    distance_matrix = None

# Extra trailing parameters beyond the registered ones are allowed.
def bfs_level_matrix(csr, sources, max_hops=None, chunk=None):
    return [(csr, source, max_hops, chunk) for source in sources]


fault_hash_columns = None
