"""Bad fixture: direct RoundMetrics mutation outside the accounting layer."""


def sneak_charges(metrics, other):
    metrics.global_rounds += 2  # bypasses scoped observers
    metrics.local_rounds = 7  # bypasses scoped observers
    metrics.global_messages += len(other.payloads)  # bypasses scoped observers
    metrics.phases["apsp"] = other  # phase entries owned by the layer
    metrics.cut_bits["half"] = 12  # cut entries owned by the layer
    return metrics
