"""Module-level mutable cache mutated by worker-reachable code."""

_HITS: dict = {}


def record_hit(shard):
    _HITS[shard] = _HITS.get(shard, 0) + 1
    return _HITS
