"""RL006 bad fixture: the worker entry point reaches module-level state.

``execute_shard`` never touches the cache itself -- the hazard is one call
away, in another module, which is exactly what the whole-program pass must
see through.
"""

from rl006_bad.cache import record_hit


def execute_shard(shard):
    record_hit(shard)
    return shard
