"""Good fixture: canonical literal labels and the phase-suffix idiom."""


def sanctioned_labels(network, rng, phase):
    a = rng.fork("skeleton:sampling")
    b = rng.fork("helpers:hash-seed")
    c = network.fork_rng(phase + ":sampling")
    d = network.fork_rng(phase + ":relay:hash")
    return a, b, c, d
