"""Fixture: a finding suppressed by a well-formed inline waiver."""

import time


def stamped_report(rows):
    # repro-lint: waive[RL001] -- report footer timestamp; display only
    stamp = time.time()
    return rows, stamp
