"""Bad parity fixture: renamed kernel, wrong params, no degradation entry."""


def distance_matrix_v2(csr, sources):  # renamed: 'distance_matrix' unhooked
    return [(csr, source) for source in sources]


def hop_limited_matrix(csr, source_rows, hop_limit):  # param name drifted
    return [(csr, source, hop_limit) for source in source_rows]
