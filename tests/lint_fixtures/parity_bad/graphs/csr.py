"""Bad parity fixture: registry entries the counterpart fails to honour."""

PLANE_KERNELS = {
    "distance_matrix": ("csr", "sources"),
    "hop_limited_matrix": ("csr", "sources", "hop_limit"),
    "stale_entry": ("csr", "sources"),
}


def distance_matrix(csr, sources):
    return [(csr, source) for source in sources]


def hop_limited_matrix(csr, sources, hop_limit):
    return [(csr, source, hop_limit) for source in sources]


def stale_entry(csr, sources, extra):  # params drifted from the registry
    return [(csr, source, extra) for source in sources]
