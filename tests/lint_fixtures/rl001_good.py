"""Good fixture: sanctioned randomness and ordering, no RL001 findings."""

import random

import numpy as np


def seeded_randomness(seed):
    rng = random.Random(seed)  # seeded constructor is the sanctioned primitive
    stream = np.random.SeedSequence(entropy=seed, spawn_key=(1,))
    generator = np.random.default_rng(seed)  # seeded generator
    return rng.random(), stream.spawn(2), generator


def value_keyed_ordering(items, table):
    ranked = sorted(items, key=len)
    cached = table[len(items)]
    return ranked, cached
