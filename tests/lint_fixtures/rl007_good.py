"""RL007 good fixture: kernels inside the validated nopython subset.

Mirrors the real compiled-plane idiom: the ``HAS_NUMBA`` guard, the
``_njit`` alias, a closure over a cross-module immutable constant, and an
njit-to-njit call.
"""

import numpy as np

from rl007_good_constants import _SCALE

try:
    from numba import njit as _njit

    HAS_NUMBA = True
except ImportError:
    _njit = None
    HAS_NUMBA = False


if HAS_NUMBA:

    @_njit(cache=True)
    def _fill_inf(out):
        n = out.shape[0]
        for i in range(n):
            out[i] = np.inf
        return n

    @_njit(cache=True)
    def _scaled_sum(values, out):
        _fill_inf(out)
        total = 0.0
        for i in range(values.shape[0]):
            total += values[i] * _SCALE
        out[0] = total
        buffer = np.zeros(values.shape[0], dtype=np.float64)
        return total, buffer
