"""Bad fixture: set iteration in order-sensitive contexts (RL002)."""

import os


def outbox_from_set_variable(n):
    receivers = {3, 1, 2}
    outbox = []
    for node in receivers:  # set-typed variable in a for loop
        outbox.append((node, "payload"))
    return outbox


def list_of_set_call(nodes):
    return list(set(nodes))  # set(...) into list()


def comprehension_over_intersection(alive, members):
    helpers = set(alive) & set(members)
    return [node for node in helpers]  # set-typed variable in a comprehension


def starred_expansion(nodes):
    seen = frozenset(nodes)
    return [*seen, -1]  # starred expansion of a frozenset


def environment_iteration():
    return [key for key in os.environ]  # unordered mapping iteration
