# Fixture: RL000 must report this file instead of crashing the run.
def broken(:
    return "never parses"
