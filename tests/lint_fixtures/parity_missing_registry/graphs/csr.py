"""Bad parity fixture: an oracle module with no PLANE_KERNELS registry."""


def distance_matrix(csr, sources):
    return [(csr, source) for source in sources]
