"""Counterpart for the missing-registry fixture (itself unremarkable)."""


def distance_matrix(csr, sources):
    return [(csr, source) for source in sources]
