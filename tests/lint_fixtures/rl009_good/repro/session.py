"""Fixture: a session whose query surface carries its DESIGN.md anchors."""

from __future__ import annotations


class HybridSession:
    """The session fixture (not the real one)."""

    def sssp(self, source):
        """Single-source shortest paths; accounting per DESIGN.md §6."""
        return source

    def _private_query(self):
        return None
