"""Fixture: a fully documented serving module (see DESIGN.md §11)."""

from __future__ import annotations


class DocumentedHandler:
    """Accepts requests and answers them in order (DESIGN.md §11)."""

    def handle(self, request):
        """Handle one request."""
        return request

    def _internal(self):
        return None


def public_entry(payload):
    """Validate and enqueue one payload."""
    return payload


def _helper():
    return None
