"""Cross-module immutable constant an njit kernel may close over."""

_SCALE = (1 << 8) - 1
