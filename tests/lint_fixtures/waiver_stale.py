"""Fixture: a waiver whose finding no longer exists (stale, RL091)."""


def already_fixed(rows):
    # repro-lint: waive[RL001] -- leftover from a removed wall-clock read
    total = len(rows)
    return total
