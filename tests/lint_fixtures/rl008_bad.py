"""RL008 bad fixture: cache-backed classes mutated without invalidation."""


class WeightedGraph:
    def __init__(self):
        self._version = 0
        self._csr = None
        self.node_count = 0

    def add_node(self):
        self.node_count += 1  # No _version bump: stale-cache hazard.

    def bump_version(self):
        self._version += 1


class HybridSession:
    def __init__(self):
        self._graph_version = -1
        self.mode = "idle"

    def invalidate(self):
        self._graph_version = 0

    def set_mode(self, mode):
        self.mode = mode  # Neither bumps _graph_version nor calls a hook.


def resize(graph: WeightedGraph, count):
    graph.node_count = count  # External write, same missing bump.
    return graph
