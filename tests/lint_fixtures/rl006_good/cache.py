"""Worker-safe module data: constants and never-mutated literal tables."""

SHARD_LIMITS = (8, 16, 32)

#: Mutable *container*, but no function ever mutates it: a frozen lookup
#: table in disguise, which the classifier must not call state.
FAMILY_TABLE = {"ring": 1, "grid": 2}


def fresh_cache():
    cache = dict(FAMILY_TABLE)
    cache.clear()
    return cache
