"""RL006 good fixture: workers touch only locals, constants, and frozen tables.

Same shape as the bad fixture, but every piece of shared module-level data
is either an immutable constant or a literal table no function ever mutates
-- none of it counts as state, so the rule must stay silent.
"""

from rl006_good.cache import SHARD_LIMITS, fresh_cache


def execute_shard(shard):
    cache = fresh_cache()
    cache[shard] = SHARD_LIMITS[0]
    return cache
