"""Fixture: a session whose query surface forgot its DESIGN.md anchors."""

from __future__ import annotations


class HybridSession:
    """The session fixture (not the real one)."""

    def sssp(self, source):
        """Single-source shortest paths, documented but unanchored."""
        return source

    def diameter(self):
        return 0
