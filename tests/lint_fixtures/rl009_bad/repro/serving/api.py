from __future__ import annotations


class UndocumentedHandler:
    def handle(self, request):
        """Handle one request."""
        return request


class UnanchoredHandler:
    """A handler whose docstring never cites its design section."""

    def describe(self):
        return "no docstring above either"


def public_entry(payload):
    return payload
