"""Good fixture: the accounting layer itself may mutate counter fields."""


def charge(self, rounds):
    self.local_rounds += rounds
    self.phases["local"] = rounds
