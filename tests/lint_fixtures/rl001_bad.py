"""Bad fixture: every flavour of RL001 nondeterminism source fires."""

import os
import random
import time
from datetime import datetime

import numpy as np


def ambient_entropy():
    a = random.random()  # stateful global random
    b = random.randint(0, 10)  # stateful global random
    random.shuffle([1, 2, 3])  # stateful global random
    c = random.SystemRandom()  # OS entropy
    d = random.Random()  # unseeded constructor
    e = os.urandom(8)  # OS entropy
    return a, b, c, d, e


def global_numpy_rng():
    np.random.seed(0)  # stateful global numpy RNG
    values = np.random.rand(3)  # stateful global numpy RNG
    generator = np.random.default_rng()  # unseeded generator
    return values, generator


def wall_clock():
    stamp = time.time()  # wall clock outside benchmarks
    tick = time.perf_counter()  # wall clock outside benchmarks
    today = datetime.now()  # wall clock outside benchmarks
    return stamp, tick, today


def id_keyed_ordering(items, table):
    ranked = sorted(items, key=id)  # id()-keyed sort
    cached = table[id(items)]  # id()-keyed lookup
    mapping = {id(items): ranked}  # id()-keyed dict literal
    return ranked, cached, mapping
