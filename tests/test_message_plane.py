"""The batched NCC message plane: MessageBatch + scalar/vectorized identity.

The engine executes global traffic on one of two planes -- the per-message
scalar reference path and the whole-array vectorized scheduler
(``ModelConfig.global_plane``).  The property tests here drive both planes
with the same messages (hypothesis-generated exchanges and the protocol
workloads behind experiments E1/E8/E12) and assert *identical* RoundMetrics:
rounds, messages, bits, per-round maxima, per-phase breakdowns and cut
crossings.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

numpy = pytest.importorskip("numpy")

from repro.core.clique_simulation import HybridCliqueTransport
from repro.hybrid.network import _admit_scan
from repro.core.skeleton import compute_skeleton
from repro.core.token_routing import make_tokens, route_tokens
from repro.graphs import generators
from repro.hybrid import CapacityExceededError, HybridNetwork, MessageBatch, ModelConfig
from repro.localnet import aggregate_max, aggregate_sum, broadcast_value, disseminate_tokens
from repro.util.rand import RandomSource

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

message_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=19), st.integers(min_value=0, max_value=19)),
    min_size=0,
    max_size=120,
)


def metrics_snapshot(network):
    """Everything RoundMetrics records, including per-phase and cut counters."""
    snapshot = network.metrics.as_dict()
    snapshot["phases"] = {
        name: (breakdown.local_rounds, breakdown.global_rounds)
        for name, breakdown in network.metrics.phases.items()
    }
    snapshot["cut_bits"] = dict(network.metrics.cut_bits)
    snapshot["received_totals"] = [int(total) for total in network.received_totals]
    return snapshot


def build_batch(pairs):
    return MessageBatch(
        [sender for sender, _ in pairs],
        [target for _, target in pairs],
        [("payload", index) for index in range(len(pairs))],
    )


class TestMessageBatch:
    def test_outbox_round_trip(self):
        outboxes = {3: [(1, "a"), (2, "b")], 0: [(1, "c")]}
        batch = MessageBatch.from_outboxes(outboxes)
        assert len(batch) == 3
        assert batch.to_outboxes() == outboxes

    def test_inbox_round_trip(self):
        inboxes = {1: [(3, "a"), (0, "c")], 2: [(3, "b")]}
        batch = MessageBatch.from_inboxes(inboxes)
        assert batch.to_inboxes() == inboxes

    def test_groupby_target_preserves_order(self):
        batch = MessageBatch([0, 1, 2, 3], [5, 4, 5, 5], ["a", "b", "c", "d"])
        groups = {
            target: (list(senders), payloads)
            for target, senders, payloads in batch.groupby_target()
        }
        assert groups == {4: ([1], ["b"]), 5: ([0, 2, 3], ["a", "c", "d"])}

    def test_concat(self):
        first = MessageBatch([0], [1], ["a"])
        second = MessageBatch([2, 3], [1, 0], ["b", "c"])
        merged = MessageBatch.concat([first, MessageBatch.empty(), second])
        assert merged.senders.tolist() == [0, 2, 3]
        assert merged.payloads == ["a", "b", "c"]

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            MessageBatch([0, 1], [2], ["a", "b"])


class TestBatchedGlobalRound:
    def make(self, plane="vectorized", **config):
        graph = generators.cycle_graph(20)
        return HybridNetwork(graph, ModelConfig(rng_seed=1, global_plane=plane, **config))

    def test_unknown_plane_rejected(self):
        graph = generators.cycle_graph(4)
        with pytest.raises(ValueError):
            HybridNetwork(graph, ModelConfig(global_plane="bogus"))

    def test_delivers_batch(self):
        network = self.make()
        delivered = network.global_round(MessageBatch([0, 1], [5, 5], ["hello", "world"]))
        assert isinstance(delivered, MessageBatch)
        assert delivered.payloads == ["hello", "world"]
        assert network.metrics.global_rounds == 1
        assert network.metrics.global_messages == 2
        assert network.metrics.max_received_per_round == 2

    def test_scalar_plane_accepts_batches(self):
        network = self.make(plane="scalar")
        assert not network.vectorized_plane
        delivered = network.global_round(MessageBatch([0], [3], ["x"]))
        assert isinstance(delivered, MessageBatch)
        assert delivered.to_inboxes() == {3: [(0, "x")]}

    def test_send_cap_enforced(self):
        network = self.make()
        count = network.send_cap + 1
        batch = MessageBatch([0] * count, list(range(count)), list(range(count)))
        with pytest.raises(CapacityExceededError):
            network.global_round(batch)

    def test_strict_receive_enforced(self):
        network = self.make(strict_receive=True, global_receive_factor=0.1)
        batch = MessageBatch(list(range(1, 16)), [0] * 15, list(range(15)))
        with pytest.raises(CapacityExceededError):
            network.global_round(batch)

    def test_invalid_target_rejected(self):
        network = self.make()
        with pytest.raises(ValueError):
            network.global_round(MessageBatch([0], [network.n + 5], ["x"]))
        with pytest.raises(ValueError):
            network.global_round(MessageBatch([-1], [0], ["x"]))

    @pytest.mark.parametrize("plane", ["scalar", "vectorized"])
    def test_empty_batch_charges_no_round_on_either_plane(self, plane):
        # Regression (alongside the n=1 aggregation cases): a round with no
        # traffic does not use the global mode at all, so an empty
        # MessageBatch must charge zero global rounds on both planes.
        network = self.make(plane=plane)
        delivered = network.global_round(MessageBatch.empty())
        assert isinstance(delivered, MessageBatch) and len(delivered) == 0
        assert network.metrics.global_rounds == 0
        assert network.metrics.global_messages == 0
        assert network.metrics.phases == {}
        # The dict form of the same no-traffic round is round-free too (even
        # with senders present but holding empty queues).
        assert network.global_round({}) == {}
        assert network.global_round({3: []}) == {}
        assert network.metrics.global_rounds == 0
        # The exchange path was already round-free for empty batches.
        _, rounds = network.run_global_exchange(MessageBatch.empty())
        assert rounds == 0 and network.metrics.global_rounds == 0

    def test_batched_exchange_respects_caps(self):
        network = self.make()
        batch = MessageBatch([0] * 35, [1] * 35, list(range(35)))
        inboxes, rounds = network.run_global_exchange(batch)
        assert len(inboxes) == 35
        assert rounds >= math.ceil(35 / network.receive_cap)
        assert network.metrics.max_sent_per_round <= network.send_cap
        assert network.metrics.max_received_per_round <= network.receive_cap


class TestAdmitScan:
    """Direct unit tests for ``_admit_scan`` (previously only covered through
    ``run_global_exchange``): the Jacobi prefix-sum admission must equal the
    scalar scheduler's sequential scan for every input."""

    @staticmethod
    def prepare(pairs, offset_runs=0):
        """Canonicalize (sender, target) pairs the way the batched exchange
        does: stable-sorted by sender, with the rotated scan-rank array."""
        senders = numpy.array([sender for sender, _ in pairs], dtype=numpy.int64)
        targets = numpy.array([target for _, target in pairs], dtype=numpy.int64)
        order = numpy.argsort(senders, kind="stable")
        senders, targets = senders[order], targets[order]
        length = senders.size
        run_bounds = numpy.empty(length, dtype=bool)
        run_bounds[0] = True
        numpy.not_equal(senders[1:], senders[:-1], out=run_bounds[1:])
        run_starts = numpy.flatnonzero(run_bounds)
        split = int(run_starts[offset_runs % run_starts.size])
        scan_positions = (numpy.arange(length) - split) % length
        return senders, targets, scan_positions

    @staticmethod
    def sequential_reference(senders, targets, scan_positions, send_cap, receive_cap):
        """The scalar scheduler's per-message scan, spelled out sequentially."""
        admitted = numpy.zeros(senders.size, dtype=bool)
        sent = {}
        received = {}
        for index in numpy.argsort(scan_positions):
            sender, target = int(senders[index]), int(targets[index])
            if sent.get(sender, 0) < send_cap and received.get(target, 0) < receive_cap:
                admitted[index] = True
                sent[sender] = sent.get(sender, 0) + 1
                received[target] = received.get(target, 0) + 1
        return admitted

    def check(self, pairs, send_cap, receive_cap, offset_runs=0):
        senders, targets, scan_positions = self.prepare(pairs, offset_runs)
        got = _admit_scan(senders, targets, scan_positions, send_cap, receive_cap)
        expected = self.sequential_reference(
            senders, targets, scan_positions, send_cap, receive_cap
        )
        assert got.tolist() == expected.tolist()
        return got

    def test_send_cap_boundary(self):
        # Exactly at the cap every message goes; one past the cap waits.
        at_cap = [(0, target) for target in range(4)]
        assert self.check(at_cap, send_cap=4, receive_cap=10).all()
        over = self.check(at_cap + [(0, 4)], send_cap=4, receive_cap=10)
        assert int(over.sum()) == 4 and not over[-1]

    def test_receive_cap_boundary(self):
        pairs = [(sender, 9) for sender in range(5)]
        assert self.check(pairs, send_cap=3, receive_cap=5).all()
        clipped = self.check(pairs, send_cap=3, receive_cap=4)
        assert int(clipped.sum()) == 4

    def test_zero_caps_admit_nothing(self):
        pairs = [(0, 1), (1, 2), (2, 0)]
        assert not self.check(pairs, send_cap=0, receive_cap=5).any()
        assert not self.check(pairs, send_cap=5, receive_cap=0).any()

    def test_all_to_one_saturation_follows_scan_order(self):
        # 12 senders, one message each, all to node 0, receive_cap 5: the five
        # senders earliest in the rotated scan order win, everyone else waits.
        pairs = [(sender, 0) for sender in range(12)]
        for offset in (0, 3, 11):
            senders, targets, scan_positions = self.prepare(pairs, offset_runs=offset)
            admitted = _admit_scan(senders, targets, scan_positions, 2, 5)
            assert int(admitted.sum()) == 5
            winners = scan_positions[admitted]
            assert sorted(winners.tolist()) == [0, 1, 2, 3, 4]

    @common_settings
    @given(
        message_lists.filter(bool),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=19),
    )
    def test_matches_sequential_scan(self, pairs, send_cap, receive_cap, offset_runs):
        self.check(pairs, send_cap, receive_cap, offset_runs)


class TestSaturatedReceiverProgress:
    """The exchange makes progress every round: a contested receiver drains at
    exactly ``receive_cap`` messages per round, with no idle (stall) rounds --
    the scheduler asserts the invariant instead of charging them."""

    @pytest.mark.parametrize("plane", ["scalar", "vectorized"])
    def test_exact_drain_rate(self, plane):
        n = 20
        network = HybridNetwork(
            generators.cycle_graph(n), ModelConfig(rng_seed=0, global_plane=plane)
        )
        per_sender = 3
        pairs = [(sender, 0) for sender in range(1, n) for _ in range(per_sender)]
        total = len(pairs)
        # 19 senders with 3 messages each can fill the receive budget every
        # round, so the drain takes exactly ceil(total / receive_cap) rounds.
        assert (n - 2) * per_sender >= network.receive_cap
        inboxes, rounds = network.run_global_exchange(build_batch(pairs))
        delivered = len(inboxes) if isinstance(inboxes, MessageBatch) else sum(
            len(messages) for messages in inboxes.values()
        )
        assert delivered == total
        assert rounds == math.ceil(total / network.receive_cap)
        assert network.metrics.global_rounds == rounds


class TestPlaneIdentity:
    """Scalar and vectorized planes record bit-identical RoundMetrics."""

    @common_settings
    @given(message_lists, st.booleans())
    def test_exchange_identical_metrics(self, pairs, receiver_limited):
        graph = generators.cycle_graph(20)
        snapshots = {}
        deliveries = {}
        for plane in ("scalar", "vectorized"):
            network = HybridNetwork(graph, ModelConfig(rng_seed=1, global_plane=plane))
            network.add_cut_watcher("half", range(10))
            inbox, rounds = network.run_global_exchange(
                build_batch(pairs), receiver_limited=receiver_limited
            )
            snapshots[plane] = metrics_snapshot(network)
            deliveries[plane] = {
                target: (list(senders), payloads)
                for target, senders, payloads in inbox.groupby_target()
            }
        assert snapshots["scalar"] == snapshots["vectorized"]
        assert deliveries["scalar"] == deliveries["vectorized"]

    @common_settings
    @given(message_lists)
    def test_dict_form_and_batched_form_identical_metrics(self, pairs):
        """The dict-of-tuples form (scalar path) and the MessageBatch form
        (vectorized path) of the same messages produce the same metrics."""
        graph = generators.cycle_graph(20)
        outboxes = {}
        for index, (sender, target) in enumerate(pairs):
            outboxes.setdefault(sender, []).append((target, ("payload", index)))
        dict_network = HybridNetwork(graph, ModelConfig(rng_seed=1))
        dict_inboxes, dict_rounds = dict_network.run_global_exchange(outboxes)
        batch_network = HybridNetwork(graph, ModelConfig(rng_seed=1, global_plane="vectorized"))
        batch_inbox, batch_rounds = batch_network.run_global_exchange(build_batch(pairs))
        assert dict_rounds == batch_rounds
        assert metrics_snapshot(dict_network) == metrics_snapshot(batch_network)
        assert {
            target: messages for target, messages in batch_inbox.to_inboxes().items()
        } == dict_inboxes

    @common_settings
    @given(message_lists)
    def test_single_round_identical_metrics(self, pairs):
        graph = generators.cycle_graph(20)
        counts = {}
        for sender, _ in pairs:
            counts[sender] = counts.get(sender, 0) + 1
        snapshots = {}
        for plane in ("scalar", "vectorized"):
            network = HybridNetwork(
                graph, ModelConfig(rng_seed=1, global_plane=plane, strict_send=False)
            )
            network.add_cut_watcher("half", range(10))
            network.global_round(build_batch(pairs))
            snapshots[plane] = metrics_snapshot(network)
        assert snapshots["scalar"] == snapshots["vectorized"]


def run_on_both_planes(build_graph, protocol):
    """Run a protocol under each plane and return the two metric snapshots."""
    snapshots = {}
    outputs = {}
    for plane in ("scalar", "vectorized"):
        network = HybridNetwork(build_graph(), ModelConfig(rng_seed=5, global_plane=plane))
        outputs[plane] = protocol(network)
        snapshots[plane] = metrics_snapshot(network)
    return snapshots, outputs


class TestProtocolPlaneIdentity:
    """End-to-end workloads (E1 routing, E8 clique, E12 dissemination /
    aggregation) leave identical metrics on both planes."""

    def test_aggregation_workload(self):
        values = {node: float((node * 13) % 11) for node in range(0, 33, 2)}

        def protocol(network):
            aggregate_max(network, values)
            aggregate_sum(network, values)
            return broadcast_value(network, 42.0, source=3)

        snapshots, outputs = run_on_both_planes(lambda: generators.cycle_graph(33), protocol)
        assert snapshots["scalar"] == snapshots["vectorized"]
        assert outputs["scalar"] == outputs["vectorized"]

    def test_dissemination_workload(self):
        tokens = {node: [("t", node, i) for i in range(3)] for node in range(0, 40, 4)}

        def protocol(network):
            return disseminate_tokens(network, tokens).rounds

        snapshots, outputs = run_on_both_planes(lambda: generators.cycle_graph(40), protocol)
        assert snapshots["scalar"] == snapshots["vectorized"]
        assert outputs["scalar"] == outputs["vectorized"]

    def test_token_routing_workload(self):
        rng = RandomSource(9)
        tokens = make_tokens(
            {
                sender: [(rng.randrange(40), ("p", sender, i)) for i in range(4)]
                for sender in rng.sample(list(range(40)), 8)
            }
        )

        def protocol(network):
            result = route_tokens(network, tokens)
            return result.rounds, sorted(
                (token.label for items in result.delivered.values() for token in items)
            )

        snapshots, outputs = run_on_both_planes(
            lambda: generators.connected_workload(40, RandomSource(4), weighted=False), protocol
        )
        assert snapshots["scalar"] == snapshots["vectorized"]
        assert outputs["scalar"] == outputs["vectorized"]

    def test_clique_simulation_workload(self):
        def protocol(network):
            skeleton = compute_skeleton(
                network, 0.2, ensure_connected=True, keep_local_knowledge=False
            )
            transport = HybridCliqueTransport(network, skeleton)
            transport.exchange({0: [(1, "x")]})
            return skeleton.size

        snapshots, outputs = run_on_both_planes(
            lambda: generators.connected_workload(30, RandomSource(8), weighted=False), protocol
        )
        assert snapshots["scalar"] == snapshots["vectorized"]
        assert outputs["scalar"] == outputs["vectorized"]
