"""Unit tests for the HYBRID model engine (config, metrics, network)."""

import pytest

from repro.graphs import generators
from repro.hybrid import (
    CapacityExceededError,
    HybridNetwork,
    ModelConfig,
    RoundMetrics,
)
from repro.util.rand import RandomSource


class TestModelConfig:
    def test_send_cap_grows_logarithmically(self):
        config = ModelConfig(global_send_factor=1.0)
        assert config.send_cap(2) == 1
        assert config.send_cap(1024) == 10
        assert config.send_cap(1 << 20) == 20

    def test_send_cap_factor(self):
        assert ModelConfig(global_send_factor=2.0).send_cap(1024) == 20

    def test_receive_cap_at_least_send_cap_by_default(self):
        config = ModelConfig()
        assert config.receive_cap(256) >= config.send_cap(256)

    def test_log_rounds(self):
        assert ModelConfig().log_rounds(256) == 8

    def test_send_cap_minimum_one(self):
        assert ModelConfig(global_send_factor=0.01).send_cap(4) == 1


class TestRoundMetrics:
    def test_charges_accumulate(self):
        metrics = RoundMetrics()
        metrics.charge_local(5, "a")
        metrics.charge_global(3, "b")
        assert metrics.total_rounds == 8
        assert metrics.phases["a"].local_rounds == 5
        assert metrics.phases["b"].global_rounds == 3

    def test_negative_charge_rejected(self):
        metrics = RoundMetrics()
        with pytest.raises(ValueError):
            metrics.charge_local(-1)
        with pytest.raises(ValueError):
            metrics.charge_global(-1)

    def test_traffic_records_maxima(self):
        metrics = RoundMetrics()
        metrics.record_global_traffic(10, 640, max_sent=4, max_received=7, receive_cap=5)
        metrics.record_global_traffic(2, 128, max_sent=1, max_received=2, receive_cap=5)
        assert metrics.global_messages == 12
        assert metrics.max_received_per_round == 7
        assert metrics.receive_cap_violations == 1

    def test_merge(self):
        a, b = RoundMetrics(), RoundMetrics()
        a.charge_local(2, "x")
        b.charge_global(3, "x")
        b.record_cut_bits("cut", 100)
        a.merge(b)
        assert a.total_rounds == 5
        assert a.phases["x"].total_rounds == 5
        assert a.cut_bits["cut"] == 100

    def test_phase_summary_sorted(self):
        metrics = RoundMetrics()
        metrics.charge_local(1, "small")
        metrics.charge_local(10, "big")
        summary = metrics.phase_summary()
        assert summary[0].startswith("big")

    def test_as_dict_keys(self):
        data = RoundMetrics().as_dict()
        assert {"total_rounds", "global_messages", "max_received_per_round"} <= set(data)


@pytest.fixture
def network():
    graph = generators.connected_workload(24, RandomSource(3), weighted=False)
    return HybridNetwork(graph, ModelConfig(rng_seed=1))


class TestHybridNetwork:
    def test_local_charge_counts(self, network):
        network.charge_local_rounds(3, "test")
        assert network.metrics.local_rounds == 3

    def test_local_charge_capped_at_diameter(self, network):
        diameter = network.hop_diameter()
        network.charge_local_rounds(10_000, "test")
        assert network.metrics.local_rounds == diameter

    def test_local_charge_uncapped_when_disabled(self):
        graph = generators.path_graph(10)
        net = HybridNetwork(graph, ModelConfig(cap_local_at_diameter=False))
        net.charge_local_rounds(500, "test")
        assert net.metrics.local_rounds == 500

    def test_global_round_delivers(self, network):
        inboxes = network.global_round({0: [(5, "hello")], 1: [(5, "world")]})
        assert sorted(payload for _, payload in inboxes[5]) == ["hello", "world"]
        assert network.metrics.global_rounds == 1
        assert network.metrics.global_messages == 2

    def test_global_round_send_cap_enforced(self, network):
        too_many = [(i % network.n, i) for i in range(network.send_cap + 1)]
        with pytest.raises(CapacityExceededError):
            network.global_round({0: too_many})

    def test_global_round_send_cap_not_enforced_when_lenient(self):
        graph = generators.path_graph(8)
        net = HybridNetwork(graph, ModelConfig(strict_send=False))
        inboxes = net.global_round({0: [(1, i) for i in range(50)]})
        assert len(inboxes[1]) == 50

    def test_strict_receive_raises(self):
        graph = generators.complete_graph(16)
        net = HybridNetwork(graph, ModelConfig(strict_receive=True, global_receive_factor=0.1))
        outboxes = {sender: [(0, "x")] for sender in range(1, 16)}
        with pytest.raises(CapacityExceededError):
            net.global_round(outboxes)

    def test_invalid_target_rejected(self, network):
        with pytest.raises(ValueError):
            network.global_round({0: [(network.n + 5, "x")]})

    def test_run_global_exchange_respects_send_cap(self, network):
        messages = [(1, i) for i in range(35)]
        inboxes, rounds = network.run_global_exchange({0: messages})
        assert len(inboxes[1]) == 35
        assert rounds >= (35 + network.receive_cap - 1) // network.receive_cap
        assert network.metrics.max_sent_per_round <= network.send_cap

    def test_run_global_exchange_receiver_limited(self, network):
        # Many senders target node 0; per-round receive load must stay capped.
        outboxes = {sender: [(0, sender)] * 3 for sender in range(1, 20)}
        inboxes, rounds = network.run_global_exchange(outboxes)
        assert len(inboxes[0]) == 19 * 3
        assert network.metrics.max_received_per_round <= network.receive_cap

    def test_run_global_exchange_unlimited_receivers_optional(self, network):
        outboxes = {sender: [(0, sender)] for sender in range(1, 20)}
        network.run_global_exchange(outboxes, receiver_limited=False)
        assert (
            network.metrics.max_received_per_round > network.receive_cap
            or network.receive_cap >= 19
        )

    def test_cut_watcher_counts_crossing_bits(self, network):
        network.add_cut_watcher("half", set(range(network.n // 2)))
        network.global_round({0: [(network.n - 1, "x")], 1: [(2, "y")]})
        assert network.metrics.cut_bits["half"] == network.config.message_bits

    def test_cut_watcher_membership_order_invariant(self, network):
        # Regression pin for the RL002 cleanup: the watcher's numpy mask is
        # built by iterating the member set in sorted order, so the recorded
        # cut bits cannot depend on how the caller composed the node set.
        half = network.n // 2
        network.add_cut_watcher("fwd", set(range(half)))
        network.add_cut_watcher("rev", set(reversed(range(half))))
        network.global_round({0: [(network.n - 1, "x")], 1: [(2, "y")]})
        assert network.metrics.cut_bits["fwd"] == network.metrics.cut_bits["rev"]
        assert network.metrics.cut_bits["fwd"] == network.config.message_bits

    def test_received_totals_accumulate(self, network):
        network.global_round({0: [(3, "a")]})
        network.global_round({1: [(3, "b")]})
        assert network.received_totals[3] == 2
        assert network.max_total_received() == 2

    def test_state_is_per_node(self, network):
        network.state(4)["key"] = "value"
        assert "key" not in network.state(5)
        network.clear_states()
        assert network.state(4) == {}

    def test_reset_metrics(self, network):
        network.charge_local_rounds(3)
        network.reset_metrics()
        assert network.metrics.total_rounds == 0

    def test_fork_rng_reproducible(self, network):
        a = network.fork_rng("phase").randint(0, 10**6)
        b = network.fork_rng("phase").randint(0, 10**6)
        assert a == b


class TestSenderFairness:
    """Round-robin regression: high-ID senders must not starve behind a
    saturated receiver (run_global_exchange rotates the sender order)."""

    def test_high_id_sender_not_starved(self):
        graph = generators.path_graph(8)
        network = HybridNetwork(graph, ModelConfig(rng_seed=0))
        # Senders 0..5 saturate receiver 7 with 30 messages each; sender 6
        # has a single message for the same receiver.  With a fixed
        # sorted(queues) schedule the low-ID senders would consume the whole
        # receive budget every round and sender 6 would deliver only after
        # ~180 earlier messages; rotation must serve it within a few rounds.
        outboxes = {s: [(7, ("bulk", s, i)) for i in range(30)] for s in range(6)}
        outboxes[6] = [(7, ("urgent", 6, 0))]
        inboxes, rounds = network.run_global_exchange(outboxes)
        delivered = inboxes[7]
        assert len(delivered) == 181
        urgent_position = next(
            index for index, (sender, _) in enumerate(delivered) if sender == 6
        )
        # Budget is receive_cap (12 for n=8) messages per round; the rotated
        # schedule reaches sender 6 within the first len(senders) rounds.
        assert urgent_position < 5 * network.receive_cap
        assert rounds >= 181 // network.receive_cap

    def test_rotation_preserves_total_traffic(self):
        graph = generators.path_graph(6)
        network = HybridNetwork(graph, ModelConfig(rng_seed=0))
        outboxes = {s: [(5, (s, i)) for i in range(7)] for s in range(4)}
        inboxes, _ = network.run_global_exchange(outboxes)
        assert sorted(payload for _, payload in inboxes[5]) == sorted(
            (s, i) for s in range(4) for i in range(7)
        )
        assert network.metrics.global_messages == 28
