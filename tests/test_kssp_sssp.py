"""Tests for the k-SSP framework (Theorem 4.1) and exact SSSP (Theorem 1.3)."""

import pytest

from repro.clique import BroadcastKSourceBellmanFord, GatherShortestPaths
from repro.core.kssp import predicted_framework_rounds, shortest_paths_via_clique
from repro.core.sssp import sssp_exact
from repro.graphs import generators, reference
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.rand import RandomSource


def make_network(seed, n=42, weighted=True, max_weight=7):
    graph = generators.connected_workload(
        n, RandomSource(seed), weighted=weighted, max_weight=max_weight
    )
    return graph, HybridNetwork(graph, ModelConfig(rng_seed=seed, skeleton_xi=1.0))


class TestKSSPFramework:
    def test_estimates_never_undershoot(self):
        graph, network = make_network(21)
        sources = [0, 9, 17, 30]
        result = shortest_paths_via_clique(network, sources, GatherShortestPaths())
        truth = reference.multi_source_distances(graph, sources)
        for s in sources:
            for v in range(graph.node_count):
                assert result.estimate(v, s) >= truth[s][v] - 1e-9

    def test_estimates_within_guarantee(self):
        graph, network = make_network(22)
        sources = [1, 8, 25]
        result = shortest_paths_via_clique(network, sources, GatherShortestPaths())
        truth = reference.multi_source_distances(graph, sources)
        bound = result.guaranteed_alpha(weighted=True)
        for s in sources:
            for v in range(graph.node_count):
                if truth[s][v] > 0:
                    assert result.estimate(v, s) <= bound * truth[s][v] + 1e-6

    def test_exact_with_exact_clique_algorithm_in_practice(self):
        # With an exact CLIQUE algorithm and sources' representatives equal to
        # themselves (sources sampled into the skeleton are frequent at this
        # density), most estimates are exact; all are within the guarantee and
        # at least the source rows at distance < h are exact.
        graph, network = make_network(23, n=36)
        sources = [0, 5]
        result = shortest_paths_via_clique(network, sources, BroadcastKSourceBellmanFord())
        truth = reference.multi_source_distances(graph, sources)
        close_exact = 0
        for s in sources:
            for v in range(graph.node_count):
                if graph.hop_distance(s, v) <= result.exploration_depth:
                    assert result.estimate(v, s) == pytest.approx(truth[s][v])
                    close_exact += 1
        assert close_exact > 0

    def test_unweighted_graphs_supported(self):
        graph, network = make_network(24, weighted=False)
        sources = [3, 13]
        result = shortest_paths_via_clique(network, sources, GatherShortestPaths())
        truth = reference.multi_source_distances(graph, sources)
        bound = result.guaranteed_alpha(weighted=False)
        for s in sources:
            for v in range(graph.node_count):
                if truth[s][v] > 0:
                    assert truth[s][v] <= result.estimate(v, s) <= bound * truth[s][v] + 1e-6

    def test_result_metadata(self):
        graph, network = make_network(25)
        result = shortest_paths_via_clique(network, [2, 4], GatherShortestPaths())
        assert result.rounds == network.metrics.total_rounds
        assert result.skeleton_size >= 1
        assert result.clique_rounds >= 1
        assert result.spec.name == "gather-exact"

    def test_requires_sources(self):
        _, network = make_network(26)
        with pytest.raises(ValueError):
            shortest_paths_via_clique(network, [], GatherShortestPaths())

    def test_duplicate_sources_deduplicated(self):
        graph, network = make_network(27)
        result = shortest_paths_via_clique(network, [4, 4, 4], GatherShortestPaths())
        assert result.sources == [4]

    def test_predicted_rounds_formula(self):
        spec = GatherShortestPaths().spec
        assert predicted_framework_rounds(1000, spec) == pytest.approx(1000 ** 0.6)


class TestSSSP:
    @pytest.mark.parametrize("seed", [31, 32])
    def test_exact_on_weighted_graphs(self, seed):
        graph, network = make_network(seed)
        result = sssp_exact(network, source=0)
        truth = reference.single_source_distances(graph, 0)
        for v, d in truth.items():
            assert result.distance(v) == pytest.approx(d)

    def test_exact_on_large_diameter_graph(self):
        graph = generators.random_geometric_like_graph(
            50, neighbourhood=2, rng=RandomSource(33), extra_edge_probability=0.0
        )
        network = HybridNetwork(graph, ModelConfig(rng_seed=33, skeleton_xi=1.0))
        result = sssp_exact(network, source=7)
        truth = reference.single_source_distances(graph, 7)
        for v, d in truth.items():
            assert result.distance(v) == pytest.approx(d)

    def test_source_distance_zero(self):
        _, network = make_network(34)
        result = sssp_exact(network, source=11)
        assert result.distance(11) == 0.0

    def test_rejects_inexact_clique_algorithm(self):
        from repro.clique.interfaces import CliqueAlgorithmSpec, CliqueShortestPathAlgorithm

        class SloppySSSP(CliqueShortestPathAlgorithm):
            def __init__(self):
                self.spec = CliqueAlgorithmSpec(0, 1, 1, 2.0, 0.0)

            def run(self, transport, incident_edges, sources):
                return [dict() for _ in range(transport.size)]

        _, network = make_network(35)
        with pytest.raises(ValueError):
            sssp_exact(network, 0, algorithm=SloppySSSP())

    def test_metadata(self):
        _, network = make_network(36)
        result = sssp_exact(network, source=3)
        assert result.rounds == network.metrics.total_rounds
        assert result.skeleton_size >= 1
        assert result.clique_rounds >= 1

    def test_disconnected_graph_keeps_unreachable_entries(self):
        """Contract pin: ``distances`` covers every node, inf for unreachable.

        Mirrors the ``inf`` entries of ``APSPResult.matrix`` -- earlier
        revisions silently dropped unreachable nodes from the SSSP dict.
        """
        from repro.core.apsp import apsp_exact
        from repro.graphs.graph import INFINITY, WeightedGraph

        graph = WeightedGraph(7)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (6, 4)]:
            graph.add_edge(u, v, 2)

        network = HybridNetwork(graph, ModelConfig(rng_seed=41))
        result = sssp_exact(network, source=0)
        assert set(result.distances) == set(range(7))
        for v, d in reference.single_source_distances(graph, 0).items():
            assert result.distance(v) == pytest.approx(d)
        for unreachable in (4, 5, 6):
            assert result.distances[unreachable] == INFINITY
            assert result.distance(unreachable) == INFINITY

        apsp_network = HybridNetwork(graph, ModelConfig(rng_seed=41))
        apsp = apsp_exact(apsp_network)
        for unreachable in (4, 5, 6):
            assert apsp.distance(0, unreachable) == INFINITY
