"""The compiled execution plane: bit-identity to the pinned pure-plane oracles.

DESIGN.md §9: the numpy CSR kernels and the scalar message plane stay pinned
as differential-testing oracles, and the compiled plane (njit / scipy.sparse,
``backend="csr-njit"`` / ``global_plane="compiled"``) must be a pure
performance substitution -- bit-identical distances, levels, RoundMetrics and
fault fates on every seed.  These tests drive all planes with the same
hypothesis-generated inputs and pin that contract, plus the graceful
degradation to pure numpy when no accelerator is importable, the per-round
fault-context memoization, memory-aware source chunking, and the ``bench``
CLI entry point.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

numpy = pytest.importorskip("numpy")

from repro.cli import main as cli_main
from repro.core.sssp import sssp_exact
from repro.graphs import compiled as graph_compiled
from repro.graphs import csr as numpy_plane
from repro.graphs import generators
from repro.graphs.csr import chunk_byte_budget, chunked_sources
from repro.graphs.graph import WeightedGraph
from repro.hybrid import HybridNetwork, MessageBatch, ModelConfig
from repro.hybrid.faults import FaultModel, FaultState, fault_hash, fault_hash_from_prefix
from repro.session import HybridSession
from repro.util.rand import RandomSource

common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def random_csr(draw):
    """A random connected graph's frozen CSR plus a hop limit."""
    n = draw(st.integers(min_value=2, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    max_weight = draw(st.sampled_from([1, 1, 5, 12]))
    degree = draw(st.sampled_from([1.5, 3.0, 5.0]))
    graph = generators.random_connected_graph(
        n, degree, RandomSource(seed), max_weight=max_weight
    )
    hop_limit = draw(st.integers(min_value=0, max_value=n))
    return graph.csr(), hop_limit


class TestPlaneSelection:
    def test_kernel_report_shape(self):
        report = graph_compiled.kernel_report()
        assert set(report) == {
            "available",
            "numba",
            "scipy",
            "distance_matrix",
            "bfs_level_matrix",
            "hop_limited_matrix",
        }
        assert report["available"] == (report["numba"] or report["scipy"])

    def test_compiled_message_plane_accepted(self):
        graph = generators.cycle_graph(8)
        network = HybridNetwork(graph, ModelConfig(global_plane="compiled"))
        assert network.vectorized_plane
        # Without numba the compiled plane degrades to the vectorized kernels
        # but stays selected; with numba the flag arms the njit admission scan.
        assert network.compiled_plane

    def test_auto_arms_compiled_only_with_numba(self):
        from repro.hybrid import compiled as hybrid_compiled

        graph = generators.cycle_graph(8)
        network = HybridNetwork(graph, ModelConfig(global_plane="auto"))
        assert network.compiled_plane == hybrid_compiled.HAS_NUMBA

    def test_session_reports_acceleration(self):
        graph = generators.cycle_graph(8)
        session = HybridSession(graph, ModelConfig(global_plane="compiled"))
        report = session.acceleration()
        assert report["message_plane"] == "compiled"
        assert report["graph_backend"] in ("dict", "csr", "csr-njit")
        assert report["kernels"] == graph_compiled.kernel_report()


class TestGraphKernelIdentity:
    """Compiled graph kernels are bit-identical to the numpy oracle."""

    @common_settings
    @given(random_csr())
    def test_distance_matrix_identical(self, case):
        csr, _ = case
        sources = list(range(csr.n))
        oracle = numpy_plane.distance_matrix(csr, sources)
        candidate = graph_compiled.distance_matrix(csr, sources)
        assert numpy.array_equal(oracle, candidate)

    @common_settings
    @given(random_csr())
    def test_bfs_levels_identical(self, case):
        csr, hop_limit = case
        sources = list(range(csr.n))
        for max_hops in (None, 0, 1, hop_limit):
            oracle = numpy_plane.bfs_level_matrix(csr, sources, max_hops)
            candidate = graph_compiled.bfs_level_matrix(csr, sources, max_hops)
            assert numpy.array_equal(oracle, candidate)

    @common_settings
    @given(random_csr())
    def test_hop_limited_identical(self, case):
        csr, hop_limit = case
        sources = list(range(csr.n))
        oracle = numpy_plane.hop_limited_matrix(csr, sources, hop_limit)
        candidate = graph_compiled.hop_limited_matrix(csr, sources, hop_limit)
        assert numpy.array_equal(oracle, candidate)

    def test_empty_sources(self):
        csr = generators.cycle_graph(5).csr()
        assert graph_compiled.distance_matrix(csr, []).shape == (0, 5)
        assert graph_compiled.bfs_level_matrix(csr, []).shape == (0, 5)
        assert graph_compiled.hop_limited_matrix(csr, [], 2).shape == (0, 5)

    def test_disconnected_graph(self):
        graph = WeightedGraph(6, backend="csr-njit")
        graph.add_edge(0, 1, 3)
        graph.add_edge(2, 3, 1)
        reference = WeightedGraph.from_edges(6, graph.edges(), backend="csr")
        assert (graph.distance_matrix() == reference.distance_matrix()).all()
        assert graph.hop_diameter() == float("inf")

    @common_settings
    @given(random_csr())
    def test_csr_njit_backend_matches_dict(self, case):
        csr, hop_limit = case
        # Rebuild both graphs from the same CSR arrays' edge list.
        edges = []
        for u in range(csr.n):
            for e in range(int(csr.indptr[u]), int(csr.indptr[u + 1])):
                v = int(csr.indices[e])
                if u < v:
                    edges.append((u, v, int(csr.weights[e])))
        as_dict = WeightedGraph.from_edges(csr.n, edges, backend="dict")
        as_njit = WeightedGraph.from_edges(csr.n, edges, backend="csr-njit")
        sources = list(range(csr.n))
        assert as_dict.bfs_hops_many(sources) == as_njit.bfs_hops_many(sources)
        assert as_dict.hop_limited_distances_many(
            sources, hop_limit
        ) == as_njit.hop_limited_distances_many(sources, hop_limit)
        assert (as_dict.distance_matrix() == as_njit.distance_matrix()).all()
        assert as_dict.hop_eccentricities() == as_njit.hop_eccentricities()


class TestGracefulDegradation:
    """With no accelerator importable every kernel is the numpy oracle."""

    @pytest.fixture
    def bare_plane(self, monkeypatch):
        monkeypatch.setattr(graph_compiled, "HAS_NUMBA", False)
        monkeypatch.setattr(graph_compiled, "HAS_SCIPY", False)
        return graph_compiled

    def test_not_available(self, bare_plane):
        assert not bare_plane.available()
        report = bare_plane.kernel_report()
        assert report["distance_matrix"] == "numpy"
        assert report["bfs_level_matrix"] == "numpy"
        assert report["hop_limited_matrix"] == "numpy"

    def test_auto_backend_falls_back_to_csr(self, bare_plane):
        assert WeightedGraph(4).backend == "csr"

    def test_kernels_fall_through_to_numpy(self, bare_plane):
        graph = generators.random_connected_graph(24, 3.0, RandomSource(7), max_weight=9)
        csr = graph.csr()
        sources = list(range(24))
        assert numpy.array_equal(
            bare_plane.distance_matrix(csr, sources),
            numpy_plane.distance_matrix(csr, sources),
        )
        assert numpy.array_equal(
            bare_plane.bfs_level_matrix(csr, sources, 3),
            numpy_plane.bfs_level_matrix(csr, sources, 3),
        )
        assert numpy.array_equal(
            bare_plane.hop_limited_matrix(csr, sources, 4),
            numpy_plane.hop_limited_matrix(csr, sources, 4),
        )

    def test_explicit_csr_njit_still_works(self, bare_plane):
        # An explicit opt-in with no accelerator degrades silently: same
        # results through the numpy kernels, never an import error.
        graph = WeightedGraph(5, backend="csr-njit")
        graph.add_edge(0, 1, 2)
        graph.add_edge(1, 2, 1)
        assert graph.bfs_hops_many([0])[0] == {0: 0, 1: 1, 2: 2}

    def test_hybrid_compiled_module_importable_without_numba(self):
        from repro.hybrid import compiled as hybrid_compiled

        if not hybrid_compiled.HAS_NUMBA:
            assert hybrid_compiled.admit_scan is None
            assert hybrid_compiled.fault_hash_columns is None


@st.composite
def fault_exchange(draw):
    """A random message batch plus a lossy fault model."""
    n = draw(st.integers(min_value=3, max_value=16))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=0,
            max_size=60,
        )
    )
    model = FaultModel(
        drop_rate=draw(st.sampled_from([0.0, 0.2, 0.5])),
        burst_rate=draw(st.sampled_from([0.0, 0.3])),
        burst_length=2,
        burst_drop_rate=0.9,
        crash_schedule={0: 3} if draw(st.booleans()) else {},
        seed=draw(st.integers(min_value=0, max_value=99)),
        max_attempts=64,
    )
    seed = draw(st.integers(min_value=0, max_value=99))
    return n, pairs, model, seed


class TestMessagePlaneIdentity:
    """scalar / vectorized / compiled planes: identical deliveries and metrics."""

    @staticmethod
    def _run(plane, n, pairs, model, seed):
        graph = generators.cycle_graph(n)
        network = HybridNetwork(
            graph, ModelConfig(rng_seed=seed, global_plane=plane, faults=model)
        )
        batch = MessageBatch(
            [sender for sender, _ in pairs],
            [target for _, target in pairs],
            list(range(len(pairs))),
        )
        inbox, rounds = network.run_global_exchange(batch, phase="test")
        snapshot = network.metrics.as_dict()
        snapshot["received_totals"] = [int(total) for total in network.received_totals]
        deliveries = sorted(
            zip(inbox.senders.tolist(), inbox.targets.tolist(), inbox.payloads, strict=True)
        )
        return deliveries, rounds, snapshot

    @common_settings
    @given(fault_exchange())
    def test_exchange_identical_across_planes(self, case):
        n, pairs, model, seed = case
        reference = self._run("scalar", n, pairs, model, seed)
        assert self._run("vectorized", n, pairs, model, seed) == reference
        assert self._run("compiled", n, pairs, model, seed) == reference

    @pytest.mark.parametrize("plane", ["scalar", "vectorized", "compiled"])
    def test_sssp_identical_across_planes(self, plane):
        graph = generators.connected_workload(48, RandomSource(5), weighted=True, max_weight=6)
        reference_net = HybridNetwork(graph.copy(), ModelConfig(rng_seed=5))
        reference = sssp_exact(reference_net, source=0)
        network = HybridNetwork(graph.copy(), ModelConfig(rng_seed=5, global_plane=plane))
        result = sssp_exact(network, source=0)
        assert result.distances == reference.distances
        assert result.rounds == reference.rounds
        assert network.metrics.as_dict() == reference_net.metrics.as_dict()
        # Same fork labels => same protocol randomness on every plane.
        assert network.fork_rng("check").randrange(1 << 30) == reference_net.fork_rng(
            "check"
        ).randrange(1 << 30)


class TestFaultRoundContext:
    def test_prefix_folding_matches_full_hash(self):
        for seed in (0, 1, 77):
            prefix = fault_hash(seed, 1, 5)
            for lanes in ((0, 0, 0), (3, 4, 5), (1 << 40, 2, 9)):
                assert fault_hash_from_prefix(prefix, *lanes) == fault_hash(seed, 1, 5, *lanes)

    def test_round_context_matches_per_round_queries(self):
        model = FaultModel(
            drop_rate=0.3,
            burst_rate=0.4,
            burst_length=2,
            burst_drop_rate=0.95,
            crash_schedule={2: 1},
            omission_schedule={3: [4]},
            seed=11,
        )
        state = FaultState(model)
        for round_index in (0, 1, 2, 3, 4, 2, 0):  # revisits hit the memo
            threshold, faulty, prefix = state.round_context(round_index)
            assert threshold == state.drop_threshold(round_index)
            assert faulty == state.faulty_nodes(round_index)
            assert prefix == fault_hash(model.seed, 1, round_index)

    def test_context_is_memoized(self):
        state = FaultState(FaultModel(drop_rate=0.5, seed=3))
        first = state.round_context(7)
        assert state.round_context(7) is first

    def test_drops_uses_memoized_prefix(self):
        model = FaultModel(drop_rate=0.5, seed=21)
        state = FaultState(model)
        threshold, faulty, _ = state.round_context(4)
        for sender, target, occurrence in ((0, 1, 0), (5, 5, 2), (9, 0, 1)):
            expected = (
                fault_hash(model.seed, 1, 4, sender, target, occurrence) < threshold
            )
            assert state.drops(4, sender, target, occurrence, threshold, faulty) == expected


class TestChunkedSources:
    def test_default_budget_preserved(self):
        # 128 MiB / (8 bytes x scratch factor 4) = the historical 1<<22 cells.
        assert chunked_sources(1, list(range(10))) == [list(range(10))]
        chunks = chunked_sources(1 << 21, list(range(8)))
        assert chunks == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_explicit_budget(self):
        # budget 8*4*10 bytes => 10 cells => chunk of 2 sources at n=5.
        chunks = chunked_sources(5, list(range(5)), byte_budget=8 * 4 * 10)
        assert chunks == [[0, 1], [2, 3], [4]]

    def test_tiny_budget_still_progresses(self):
        assert chunked_sources(100, [1, 2], byte_budget=1) == [[1], [2]]

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CHUNK_BYTES", str(8 * 4 * 6))
        assert chunk_byte_budget() == 8 * 4 * 6
        assert chunked_sources(3, list(range(4))) == [[0, 1], [2, 3]]

    @pytest.mark.parametrize("raw", ["", "not-a-number", "-5", "0"])
    def test_invalid_env_falls_back(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_KERNEL_CHUNK_BYTES", raw)
        assert chunk_byte_budget() == 128 * 1024 * 1024

    def test_chunk_size_never_changes_results(self, monkeypatch):
        graph = generators.random_connected_graph(40, 3.0, RandomSource(13), max_weight=7)
        baseline = graph.distance_matrix()
        eccentricities = graph.hop_eccentricities()
        monkeypatch.setenv("REPRO_KERNEL_CHUNK_BYTES", str(8 * 4 * 40 * 3))  # 3 sources/chunk
        rechunked = WeightedGraph.from_edges(40, graph.edges(), backend=graph.backend)
        assert (rechunked.distance_matrix() == baseline).all()
        assert rechunked.hop_eccentricities() == eccentricities


class TestBenchCLI:
    def test_bench_runs_and_verifies(self, capsys):
        assert cli_main(["bench", "--n", "48", "--sources", "8", "--seed", "2"]) == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert "distance_matrix" in output
        assert "NO" not in output  # every kernel verified identical

    def test_bench_profile_breakdown(self, capsys):
        assert (
            cli_main(
                ["bench", "--n", "32", "--sources", "4", "--profile", "--top", "5"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "profile: distance_matrix [compiled]" in output
        assert "cumulative" in output

    def test_bench_rejects_bad_arguments(self, capsys):
        assert cli_main(["bench", "--n", "1"]) == 2
        assert cli_main(["bench", "--sources", "0"]) == 2
