"""Shared fixtures and helpers for the test suite.

Tests run on deliberately small graphs (tens of nodes) so the whole suite
stays fast; the scaling behaviour is exercised by the benchmark harness
instead.  Seeds are fixed so the "w.h.p." algorithms are deterministic per
test.
"""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.graphs.graph import WeightedGraph
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.rand import RandomSource


def small_config(seed: int = 1, **overrides) -> ModelConfig:
    """A ModelConfig with a slightly larger ξ so small skeletons stay connected."""
    defaults = dict(rng_seed=seed, skeleton_xi=1.0)
    defaults.update(overrides)
    return ModelConfig(**defaults)


@pytest.fixture
def rng() -> RandomSource:
    """A deterministic random source."""
    return RandomSource(12345)


@pytest.fixture
def small_weighted_graph() -> WeightedGraph:
    """A connected weighted random graph on 40 nodes."""
    return generators.connected_workload(40, RandomSource(7), weighted=True, max_weight=9)


@pytest.fixture
def small_unweighted_graph() -> WeightedGraph:
    """A connected unweighted random graph on 40 nodes."""
    return generators.connected_workload(40, RandomSource(11), weighted=False)


@pytest.fixture
def ring_graph() -> WeightedGraph:
    """A locality-heavy graph with a large hop diameter (48 nodes)."""
    return generators.random_geometric_like_graph(
        48, neighbourhood=2, rng=RandomSource(3), extra_edge_probability=0.0
    )


@pytest.fixture
def small_network(small_weighted_graph) -> HybridNetwork:
    """A HYBRID network over the small weighted graph."""
    return HybridNetwork(small_weighted_graph, small_config(seed=5))


@pytest.fixture
def unweighted_network(small_unweighted_graph) -> HybridNetwork:
    """A HYBRID network over the small unweighted graph."""
    return HybridNetwork(small_unweighted_graph, small_config(seed=9))
