"""Tests for the token routing protocol (Section 2, Theorem 2.2)."""

import pytest

from repro.core.token_routing import (
    RoutingToken,
    TokenRouter,
    make_tokens,
    predicted_routing_rounds,
    route_tokens,
)
from repro.graphs import generators
from repro.hybrid import HybridNetwork, ModelConfig
from repro.hybrid.errors import ProtocolError
from repro.util.rand import RandomSource


@pytest.fixture
def network():
    graph = generators.random_geometric_like_graph(
        50, neighbourhood=2, rng=RandomSource(13), extra_edge_probability=0.02
    )
    return HybridNetwork(graph, ModelConfig(rng_seed=6))


def build_instance(network, sender_count, tokens_per_sender, seed=1):
    rng = RandomSource(seed)
    senders = rng.sample(list(range(network.n)), sender_count)
    assignments = {}
    for sender in senders:
        assignments[sender] = [
            (rng.randrange(network.n), ("payload", sender, i)) for i in range(tokens_per_sender)
        ]
    return make_tokens(assignments)


class TestMakeTokens:
    def test_labels_enumerate_pairs(self):
        tokens = make_tokens({1: [(2, "a"), (2, "b"), (3, "c")]})
        labels = {t.label for t in tokens}
        assert labels == {(1, 2, 0), (1, 2, 1), (1, 3, 0)}

    def test_payload_preserved(self):
        tokens = make_tokens({1: [(2, "data")]})
        assert tokens[0].payload == "data"


class TestRouteTokens:
    def test_all_tokens_delivered(self, network):
        tokens = build_instance(network, sender_count=8, tokens_per_sender=5)
        result = route_tokens(network, tokens)
        delivered = [t for items in result.delivered.values() for t in items]
        assert sorted(t.label for t in delivered) == sorted(t.label for t in tokens)

    def test_tokens_reach_correct_receiver(self, network):
        tokens = build_instance(network, sender_count=6, tokens_per_sender=4)
        result = route_tokens(network, tokens)
        for receiver, items in result.delivered.items():
            assert all(t.receiver == receiver for t in items)

    def test_empty_instance(self, network):
        result = route_tokens(network, [])
        assert result.delivered == {}
        assert result.rounds == 0

    def test_self_addressed_tokens_free(self, network):
        tokens = [RoutingToken(3, 3, 0, "self")]
        result = route_tokens(network, tokens)
        assert result.delivered[3][0].payload == "self"

    def test_send_cap_respected(self, network):
        tokens = build_instance(network, sender_count=10, tokens_per_sender=8)
        route_tokens(network, tokens)
        assert network.metrics.max_sent_per_round <= network.send_cap

    def test_receive_load_bounded(self, network):
        tokens = build_instance(network, sender_count=10, tokens_per_sender=8)
        route_tokens(network, tokens)
        # Lemma D.2 / receiver-limited scheduling: per-round receive load stays
        # within the configured cap.
        assert network.metrics.max_received_per_round <= network.receive_cap

    def test_rounds_positive_and_recorded(self, network):
        tokens = build_instance(network, sender_count=5, tokens_per_sender=3)
        before = network.metrics.total_rounds
        result = route_tokens(network, tokens)
        assert result.rounds == network.metrics.total_rounds - before
        assert result.rounds > 0

    def test_mu_parameters_reported(self, network):
        tokens = build_instance(network, sender_count=5, tokens_per_sender=9)
        result = route_tokens(network, tokens)
        assert result.mu_senders >= 1
        assert result.mu_receivers >= 1


class TestTokenRouter:
    def test_router_reuse_across_batches(self, network):
        senders = list(range(0, network.n, 5))
        receivers = list(range(0, network.n, 3))
        router = TokenRouter(network, senders, receivers, 4, 8)
        rng = RandomSource(3)
        for batch in range(3):
            tokens = make_tokens(
                {s: [(rng.choice(receivers), (batch, s, i)) for i in range(2)] for s in senders}
            )
            result = router.route(tokens)
            delivered = sorted(t.label for items in result.delivered.values() for t in items)
            assert delivered == sorted(t.label for t in tokens)

    def test_router_rejects_unknown_sender(self, network):
        router = TokenRouter(network, [0, 1], [2, 3], 1, 1)
        with pytest.raises(ProtocolError):
            router.route([RoutingToken(9, 2, 0, "x")])

    def test_router_rejects_unknown_receiver(self, network):
        router = TokenRouter(network, [0, 1], [2, 3], 1, 1)
        with pytest.raises(ProtocolError):
            router.route([RoutingToken(0, 9, 0, "x")])

    def test_router_requires_nonempty_populations(self, network):
        with pytest.raises(ValueError):
            TokenRouter(network, [], [1], 1, 1)

    def test_setup_rounds_recorded(self, network):
        router = TokenRouter(network, [0, 5, 10], [1, 6, 11], 2, 2)
        assert router.setup_rounds > 0


class TestPredictedRounds:
    def test_formula_matches_theorem(self):
        # K/n + sqrt(kS) + sqrt(kR)
        value = predicted_routing_rounds(100, 10, 20, 4, 9)
        assert value == pytest.approx((10 * 4 + 20 * 9) / 100 + 2 + 3)

    def test_monotone_in_workload(self):
        low = predicted_routing_rounds(100, 10, 10, 4, 4)
        high = predicted_routing_rounds(100, 10, 10, 16, 16)
        assert high > low
