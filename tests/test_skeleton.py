"""Tests for skeleton construction (Algorithm 6, Lemmas C.1/C.2) and
representatives (Algorithm 7)."""

import pytest

from repro.core.representatives import compute_representatives
from repro.core.skeleton import (
    compute_skeleton,
    framework_exponent,
    framework_sampling_probability,
)
from repro.graphs import generators
from repro.graphs.skeleton_analysis import (
    audit_skeleton,
    build_skeleton_offline,
    sample_gap_on_shortest_path,
    skeleton_hop_length,
)
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.rand import RandomSource


@pytest.fixture
def network():
    graph = generators.connected_workload(50, RandomSource(31), weighted=True, max_weight=6)
    return HybridNetwork(graph, ModelConfig(rng_seed=7, skeleton_xi=1.0))


class TestFrameworkParameters:
    def test_exponent_formula(self):
        assert framework_exponent(0.0) == pytest.approx(2.0 / 3.0)
        assert framework_exponent(1.0) == pytest.approx(0.4)
        assert framework_exponent(1.0 / 6.0) == pytest.approx(0.6)

    def test_exponent_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            framework_exponent(-0.1)

    def test_sampling_probability_in_range(self):
        p = framework_sampling_probability(1000, 1.0)
        assert 0 < p <= 1
        assert p == pytest.approx(1000 ** (0.4 - 1.0))

    def test_sampling_probability_tiny_network(self):
        assert framework_sampling_probability(1, 0.5) == 1.0

    def test_hop_length_clamped(self):
        assert 1 <= skeleton_hop_length(10, 1000, xi=1.0) <= 10
        assert skeleton_hop_length(1, 5) == 1


class TestComputeSkeleton:
    def test_forced_members_included(self, network):
        skeleton = compute_skeleton(network, 0.1, forced_members=[13])
        assert skeleton.contains(13)

    def test_never_empty(self, network):
        skeleton = compute_skeleton(network, 1e-9)
        assert skeleton.size >= 1

    def test_invalid_probability(self, network):
        with pytest.raises(ValueError):
            compute_skeleton(network, 0.0)

    def test_edges_connect_nearby_sampled_nodes(self, network):
        skeleton = compute_skeleton(network, 0.25)
        for u, v, w in skeleton.graph.edges():
            original_u = skeleton.original_id(u)
            original_v = skeleton.original_id(v)
            hops = network.graph.hop_distance(original_u, original_v)
            assert hops <= skeleton.hop_length
            assert w >= network.graph.dijkstra(original_u)[original_v] - 1e-9

    def test_local_distances_only_contain_skeleton_nodes(self, network):
        skeleton = compute_skeleton(network, 0.2)
        for node in range(network.n):
            assert set(skeleton.local_distances[node]) <= set(skeleton.nodes)

    def test_ensure_connected(self, network):
        skeleton = compute_skeleton(network, 0.3, ensure_connected=True)
        if skeleton.size > 1:
            assert skeleton.graph.is_connected()

    def test_local_knowledge_optional(self, network):
        without = compute_skeleton(network, 0.2)
        assert without.local_knowledge is None
        with_knowledge = compute_skeleton(network, 0.2, keep_local_knowledge=True)
        assert with_knowledge.local_knowledge is not None
        assert len(with_knowledge.local_knowledge) == network.n

    def test_rounds_charged(self, network):
        before = network.metrics.total_rounds
        skeleton = compute_skeleton(network, 0.2)
        assert skeleton.rounds_charged == network.metrics.total_rounds - before
        assert skeleton.rounds_charged >= 1

    def test_closest_skeleton_node(self, network):
        skeleton = compute_skeleton(network, 0.3)
        for node in range(0, network.n, 11):
            closest = skeleton.closest_skeleton_node(node)
            if closest is not None:
                assert closest in skeleton.index_of

    def test_incident_edges_symmetric(self, network):
        skeleton = compute_skeleton(network, 0.3)
        incident = skeleton.incident_edges()
        for u in range(skeleton.graph.node_count):
            for v, w in incident[u].items():
                assert incident[v][u] == w


class TestSkeletonAnalysis:
    def test_offline_skeleton_distance_preservation(self):
        graph = generators.connected_workload(40, RandomSource(3), weighted=True, max_weight=4)
        rng = RandomSource(5)
        sampled = [node for node in graph.nodes() if rng.bernoulli(0.3)] or [0]
        report = audit_skeleton(graph, sampled, hop_length=40, rng=RandomSource(7))
        assert report.connected
        assert report.distance_preserving
        assert report.max_distance_error == pytest.approx(0.0)

    def test_gap_on_shortest_path(self):
        path = generators.path_graph(12)
        gap = sample_gap_on_shortest_path(path, sampled=[0, 4, 8, 11], source=0, target=11)
        assert gap == 3

    def test_gap_none_when_disconnected(self):
        graph = generators.path_graph(4)
        graph.remove_edge(1, 2)
        assert sample_gap_on_shortest_path(graph, [0], 0, 3) is None

    def test_offline_build_matches_distances(self):
        graph = generators.connected_workload(30, RandomSource(9), weighted=True, max_weight=5)
        sampled = list(range(0, 30, 4))
        skeleton, mapping = build_skeleton_offline(graph, sampled, hop_length=30)
        for u in sampled[:3]:
            exact = graph.dijkstra(u)
            skel = skeleton.dijkstra(mapping[u])
            for v in sampled:
                if v != u:
                    assert skel[mapping[v]] == pytest.approx(exact[v])


class TestRepresentatives:
    def test_skeleton_sources_are_their_own_representatives(self, network):
        skeleton = compute_skeleton(network, 0.3, keep_local_knowledge=True)
        source = skeleton.nodes[0]
        reps = compute_representatives(network, skeleton, [source])
        assert reps.representative[source] == source
        assert reps.distance_to_representative[source] == 0.0

    def test_every_source_gets_representative(self, network):
        skeleton = compute_skeleton(network, 0.2)
        sources = [1, 7, 19, 33]
        reps = compute_representatives(network, skeleton, sources)
        assert set(reps.representative) == set(sources)
        assert all(rep in skeleton.index_of for rep in reps.representative.values())

    def test_representative_distance_is_valid_upper_bound(self, network):
        skeleton = compute_skeleton(network, 0.2)
        sources = [2, 11, 29]
        reps = compute_representatives(network, skeleton, sources)
        for source in sources:
            rep = reps.representative[source]
            exact = network.graph.dijkstra(source)[rep]
            assert reps.distance_to_representative[source] >= exact - 1e-9

    def test_rounds_accounted(self, network):
        skeleton = compute_skeleton(network, 0.2)
        before = network.metrics.total_rounds
        reps = compute_representatives(network, skeleton, [4, 5])
        assert reps.rounds == network.metrics.total_rounds - before
