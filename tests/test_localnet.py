"""Unit tests for the LOCAL/NCC primitives (flooding, ruling sets, clustering,
aggregation, token dissemination)."""

import pytest

from repro.graphs import generators
from repro.hybrid import HybridNetwork, ModelConfig
from repro.localnet import (
    aggregate_max,
    aggregate_min,
    aggregate_sum,
    broadcast_value,
    cluster_around_rulers,
    compute_ruling_set,
    converge_cast_max,
    disseminate_tokens,
    explore_hop_distances,
    explore_limited_distances,
    flood_token_sets,
    flood_values,
    multi_source_hop_distances,
)
from repro.util.rand import RandomSource


@pytest.fixture
def network():
    graph = generators.connected_workload(36, RandomSource(21), weighted=True, max_weight=5)
    return HybridNetwork(graph, ModelConfig(rng_seed=2))


@pytest.fixture
def ring_network():
    graph = generators.cycle_graph(30)
    return HybridNetwork(graph, ModelConfig(rng_seed=2))


class TestFlooding:
    def test_explore_hop_distances_matches_bfs(self, network):
        result = explore_hop_distances(network, 2)
        for node in range(0, network.n, 7):
            assert result[node] == network.graph.bfs_hops(node, 2)

    def test_explore_hop_distances_charges_rounds(self, network):
        before = network.metrics.local_rounds
        explore_hop_distances(network, 3)
        assert network.metrics.local_rounds - before == min(3, network.hop_diameter())

    def test_explore_limited_distances_exact_mode(self, network):
        fast = explore_limited_distances(network, 3)
        exact = explore_limited_distances(network, 3, exact=True)
        for node in range(0, network.n, 9):
            for other, value in fast[node].items():
                assert value >= exact[node].get(other, float("inf")) - 1e9  # sanity: finite
                assert value >= network.graph.dijkstra(node)[other] - 1e-9

    def test_flood_values_reaches_ball(self, ring_network):
        result = flood_values(ring_network, 2, {0: "token"})
        assert "token" in result[1].values()
        assert "token" in result[2].values()
        assert 0 not in result[5]

    def test_flood_token_sets_concatenates(self, ring_network):
        result = flood_token_sets(ring_network, 1, {0: ["a", "b"], 1: ["c"]})
        assert sorted(result[1]) == ["a", "b", "c"]

    def test_multi_source_hop_distances_ties_by_id(self, ring_network):
        assignment = multi_source_hop_distances(ring_network, [0, 10])
        hops, source = assignment[5]
        assert hops == 5
        assert source == 0  # equidistant, smaller ID wins

    def test_converge_cast_max(self, ring_network):
        values = {node: float(node) for node in range(ring_network.n)}
        result = converge_cast_max(ring_network, values, 1)
        assert result[0] == max(1.0, float(ring_network.n - 1))


class TestRulingSetsAndClusters:
    def test_ruling_set_separation(self, network):
        result = compute_ruling_set(network, mu=2)
        rulers = result.rulers
        for i, r1 in enumerate(rulers):
            hops = network.graph.bfs_hops(r1)
            for r2 in rulers[i + 1 :]:
                assert hops.get(r2, float("inf")) >= result.min_separation

    def test_ruling_set_covering(self, network):
        result = compute_ruling_set(network, mu=2)
        covered = set()
        for ruler in result.rulers:
            covered.update(network.graph.ball(ruler, result.min_separation - 1))
        assert covered == set(range(network.n))

    def test_ruling_set_nonempty_and_charged(self, network):
        before = network.metrics.total_rounds
        result = compute_ruling_set(network, mu=3)
        assert result.rulers
        assert network.metrics.total_rounds > before

    def test_ruling_set_mu_one_is_mis(self, ring_network):
        result = compute_ruling_set(ring_network, mu=1)
        rulers = set(result.rulers)
        # Independence in the power-2 graph: no two rulers within 2 hops.
        for r in rulers:
            assert not (set(ring_network.graph.ball(r, 2)) - {r}) & rulers

    def test_ruling_set_invalid_mu(self, network):
        with pytest.raises(ValueError):
            compute_ruling_set(network, mu=0)

    def test_clustering_partitions_all_nodes(self, network):
        ruling = compute_ruling_set(network, mu=2)
        clustering = cluster_around_rulers(network, ruling.rulers, mu=2)
        assert sorted(node for members in clustering.members.values() for node in members) == list(
            range(network.n)
        )

    def test_clustering_minimum_size(self, ring_network):
        mu = 3
        ruling = compute_ruling_set(ring_network, mu=mu)
        clustering = cluster_around_rulers(ring_network, ruling.rulers, mu=mu)
        # Rulers are >= 2µ+1 apart on a cycle, so each cluster has >= µ nodes.
        assert min(clustering.cluster_sizes()) >= mu

    def test_clustering_members_close_to_ruler(self, network):
        ruling = compute_ruling_set(network, mu=2)
        clustering = cluster_around_rulers(network, ruling.rulers, mu=2)
        for ruler, members in clustering.members.items():
            hops = network.graph.bfs_hops(ruler)
            assert all(hops[m] <= clustering.radius for m in members)

    def test_clustering_requires_rulers(self, network):
        with pytest.raises(ValueError):
            cluster_around_rulers(network, [], mu=1)


class TestAggregation:
    def test_aggregate_max(self, network):
        values = {node: float(node % 7) for node in range(network.n)}
        assert aggregate_max(network, values) == 6.0

    def test_aggregate_min(self, network):
        values = {3: 5.0, 9: 2.0, 20: 8.0}
        assert aggregate_min(network, values) == 2.0

    def test_aggregate_empty(self, network):
        assert aggregate_max(network, {}) is None

    def test_aggregate_sum(self, network):
        values = {node: 1.0 for node in range(network.n)}
        assert aggregate_sum(network, values) == pytest.approx(network.n)

    def test_aggregate_sum_partial_holders(self, network):
        assert aggregate_sum(network, {0: 2.5, 7: 1.5}) == pytest.approx(4.0)

    def test_aggregation_is_logarithmic_rounds(self, network):
        before = network.metrics.global_rounds
        aggregate_max(network, {0: 1.0, 5: 2.0})
        used = network.metrics.global_rounds - before
        assert used <= 2 * network.config.log_rounds(network.n) + 2

    def test_broadcast_value(self, network):
        broadcast_value(network, "payload", source=4, phase="test-broadcast")
        assert network.state(10)["broadcast:test-broadcast"] == "payload"

    def test_aggregation_respects_send_cap(self, network):
        aggregate_sum(network, {node: 1.0 for node in range(network.n)})
        assert network.metrics.max_sent_per_round <= network.send_cap

    @pytest.mark.parametrize(
        "n, expected_rounds",
        [(7, 5), (8, 6), (9, 7)],  # ⌊log2 n⌋ convergecast + ⌈log2 n⌉ broadcast
    )
    def test_aggregate_sum_exact_round_counts(self, n, expected_rounds):
        """Regression: the convergecast starts at the deepest *occupied* tree
        level ⌊log2 n⌋; the old ⌈log2(n+1)⌉ iterated an empty level first and
        charged a spurious global round for every n."""
        network = HybridNetwork(generators.path_graph(n), ModelConfig(rng_seed=1))
        total = aggregate_sum(network, {node: 1.0 for node in range(n)})
        assert total == pytest.approx(n)
        assert network.metrics.global_rounds == expected_rounds
        assert network.metrics.local_rounds == 0

    def test_single_node_charges_no_rounds(self):
        """Regression: at n = 1 aggregation/broadcast must not send the node a
        global message to itself or charge any round."""
        network = HybridNetwork(generators.path_graph(1), ModelConfig(rng_seed=1))
        assert aggregate_max(network, {0: 3.0}) == 3.0
        assert broadcast_value(network, "payload") == "payload"
        assert aggregate_sum(network, {0: 2.5}) == pytest.approx(2.5)
        assert network.metrics.total_rounds == 0
        assert network.metrics.global_messages == 0
        assert network.state(0)["broadcast:broadcast"] == "payload"
        assert network.state(0)["aggregate:aggregation-sum"] == pytest.approx(2.5)


class TestTokenDissemination:
    def test_all_tokens_returned(self, network):
        tokens = {node: [("t", node, i) for i in range(3)] for node in range(0, network.n, 4)}
        result = disseminate_tokens(network, tokens)
        expected = {token for items in tokens.values() for token in items}
        assert set(result.tokens) == expected
        assert result.token_count == len(expected)

    def test_empty_dissemination(self, network):
        result = disseminate_tokens(network, {})
        assert result.tokens == []
        assert result.rounds >= 0

    def test_duplicate_tokens_counted_once(self, network):
        result = disseminate_tokens(network, {0: ["dup"], 1: ["dup"], 2: ["other"]})
        assert result.token_count == 2

    def test_store_key_populates_states(self, network):
        disseminate_tokens(network, {0: ["x"]}, store_key="all-tokens")
        assert network.state(network.n - 1)["all-tokens"] == ["x"]

    def test_rounds_grow_sublinearly_in_token_count(self, ring_network):
        # Õ(√k): quadrupling k should far less than quadruple the rounds.
        few = HybridNetwork(ring_network.graph, ModelConfig(rng_seed=3))
        many = HybridNetwork(ring_network.graph, ModelConfig(rng_seed=3))
        small = disseminate_tokens(few, {n: [("s", n, i) for i in range(2)] for n in range(30)})
        large = disseminate_tokens(many, {n: [("s", n, i) for i in range(8)] for n in range(30)})
        assert large.token_count == 4 * small.token_count
        assert large.rounds < 4 * small.rounds

    def test_send_cap_respected(self, network):
        tokens = {0: [("bulk", i) for i in range(40)]}
        disseminate_tokens(network, tokens)
        assert network.metrics.max_sent_per_round <= network.send_cap

    def test_huge_integer_tokens_use_digest_fallback(self, network):
        """Integer tokens outside int64 must take the digest path, not crash."""
        result = disseminate_tokens(network, {0: [2**63, -(2**70), 5]})
        assert result.token_count == 3

    def test_rounds_invariant_under_holder_insertion_order(self):
        """Regression: relay placement hashes a canonical per-token key, so
        permuting the ``tokens_per_node`` dict insertion order must not move
        any relay and the measured rounds stay identical."""
        graph = generators.cycle_graph(30)
        tokens = {node: [("tok", node, i) for i in range(2)] for node in range(30)}
        forward = HybridNetwork(graph, ModelConfig(rng_seed=3))
        forward_result = disseminate_tokens(forward, tokens)
        reversed_tokens = {node: tokens[node] for node in reversed(list(tokens))}
        backward = HybridNetwork(graph, ModelConfig(rng_seed=3))
        backward_result = disseminate_tokens(backward, reversed_tokens)
        assert forward_result.rounds == backward_result.rounds
        assert forward.metrics.as_dict() == backward.metrics.as_dict()
        assert set(forward_result.tokens) == set(backward_result.tokens)
