"""Tests for simulating the CLIQUE model inside a HYBRID network (Corollary 4.1)."""

import pytest

from repro.clique import GatherShortestPaths
from repro.core.clique_simulation import HybridCliqueTransport, predicted_simulation_rounds
from repro.core.skeleton import compute_skeleton
from repro.graphs import generators
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.rand import RandomSource


@pytest.fixture
def network():
    graph = generators.connected_workload(40, RandomSource(19), weighted=True, max_weight=5)
    return HybridNetwork(graph, ModelConfig(rng_seed=9, skeleton_xi=1.0))


@pytest.fixture
def skeleton(network):
    return compute_skeleton(network, 0.25, ensure_connected=True, keep_local_knowledge=True)


class TestHybridCliqueTransport:
    def test_exchange_delivers_payloads(self, network, skeleton):
        transport = HybridCliqueTransport(network, skeleton)
        size = transport.size
        outboxes = {0: [(i, f"to-{i}") for i in range(size)]}
        inboxes = transport.exchange(outboxes)
        for i in range(1, size):
            assert (0, f"to-{i}") in inboxes.get(i, [])

    def test_rounds_used_counts_clique_rounds(self, network, skeleton):
        transport = HybridCliqueTransport(network, skeleton)
        transport.exchange({})
        transport.exchange({})
        assert transport.rounds_used == 2

    def test_hybrid_rounds_grow_with_clique_rounds(self, network, skeleton):
        transport = HybridCliqueTransport(network, skeleton)
        before = network.metrics.total_rounds
        transport.exchange({})
        after_one = network.metrics.total_rounds
        transport.exchange({})
        after_two = network.metrics.total_rounds
        assert after_one > before
        assert after_two > after_one

    def test_padding_does_not_leak_into_inboxes(self, network, skeleton):
        transport = HybridCliqueTransport(network, skeleton)
        inboxes = transport.exchange({})
        assert all(not messages for messages in inboxes.values())

    def test_invalid_index_rejected(self, network, skeleton):
        transport = HybridCliqueTransport(network, skeleton)
        with pytest.raises(ValueError):
            transport.exchange({transport.size + 1: [(0, "x")]})
        with pytest.raises(ValueError):
            transport.exchange({0: [(transport.size + 1, "x")]})

    def test_clique_algorithm_runs_correctly_inside_hybrid(self, network, skeleton):
        transport = HybridCliqueTransport(network, skeleton)
        algorithm = GatherShortestPaths()
        sources = [0]
        estimates = algorithm.run(transport, skeleton.incident_edges(), sources)
        truth = skeleton.graph.dijkstra(0)
        for index in range(skeleton.graph.node_count):
            assert estimates[index][0] == pytest.approx(truth.get(index, float("inf")))

    def test_predicted_rounds_formula(self):
        assert predicted_simulation_rounds(100, 10) == pytest.approx(1.0 + 10 ** 0.5)

    def test_empty_skeleton_rejected(self, network):
        class FakeSkeleton:
            size = 0

        with pytest.raises((ValueError, AttributeError)):
            HybridCliqueTransport(network, FakeSkeleton())
