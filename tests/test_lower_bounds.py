"""Tests for the lower-bound constructions of Sections 6 and 7."""

import pytest

from repro.graphs import reference
from repro.hybrid import ModelConfig
from repro.lower_bounds import (
    assignment_entropy_bits,
    build_gamma_gadget,
    build_kssp_gadget,
    choose_parameters,
    classify_disjointness_from_diameter,
    disjointness_bits_required,
    distance_gap_factor,
    implied_round_lower_bound,
    measure_cut_traffic,
    per_round_cut_capacity_bits,
    predicted_diameter,
    random_disjointness_instance,
    suggested_bottleneck_distance,
    verify_simulation_partition,
)
from repro.lower_bounds.set_disjointness import (
    implied_round_lower_bound as diameter_round_lower_bound,
)
from repro.util.rand import RandomSource


class TestKSSPGadget:
    def test_construction_counts(self):
        gadget = build_kssp_gadget(path_hops=40, source_count=16, rng=RandomSource(1))
        assert gadget.graph.node_count == 41 + 16
        assert gadget.source_count == 16
        assert len(gadget.near_sources) == 8
        assert gadget.graph.is_connected()

    def test_default_bottleneck_distance(self):
        gadget = build_kssp_gadget(path_hops=40, source_count=16, rng=RandomSource(2))
        assert gadget.bottleneck_distance == suggested_bottleneck_distance(16) == 4

    def test_distance_gap_is_large(self):
        gadget = build_kssp_gadget(path_hops=60, source_count=16, rng=RandomSource(3))
        factor = distance_gap_factor(gadget)
        # Θ(n / √k): here 61 / 5 ≈ 12.
        assert factor >= (gadget.path_hops + 1) / (gadget.bottleneck_distance + 1) - 1

    def test_near_and_far_distances(self):
        gadget = build_kssp_gadget(path_hops=30, source_count=8, rng=RandomSource(4))
        distances = gadget.graph.dijkstra(gadget.bottleneck_node)
        for s in gadget.near_sources:
            assert distances[s] == gadget.bottleneck_distance + 1
        for s in gadget.far_sources:
            assert distances[s] == gadget.path_hops + 1

    def test_entropy_is_about_k_bits(self):
        gadget = build_kssp_gadget(path_hops=50, source_count=20, rng=RandomSource(5))
        entropy = assignment_entropy_bits(gadget)
        assert 0.6 * 20 <= entropy <= 20

    def test_implied_round_lower_bound_positive(self):
        gadget = build_kssp_gadget(path_hops=50, source_count=24, rng=RandomSource(6))
        bound = implied_round_lower_bound(gadget, message_bits=64, send_cap=6)
        assert 0 < bound <= gadget.bottleneck_distance

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_kssp_gadget(path_hops=1, source_count=4, rng=RandomSource(7))
        with pytest.raises(ValueError):
            build_kssp_gadget(path_hops=10, source_count=1, rng=RandomSource(7))
        with pytest.raises(ValueError):
            build_kssp_gadget(
                path_hops=5, source_count=100, rng=RandomSource(7), bottleneck_distance=10
            )


class TestGammaGadget:
    def make(self, disjoint, weight, k=3, path_hops=4, seed=1):
        a, b = random_disjointness_instance(k, RandomSource(seed), disjoint=disjoint)
        return build_gamma_gadget(k, path_hops, weight, a, b)

    def test_lemma_71_weighted_disjoint(self):
        gadget = self.make(disjoint=True, weight=10)
        diameter = reference.weighted_diameter(gadget.graph)
        assert diameter <= gadget.weight + 2 * gadget.path_hops
        assert predicted_diameter(gadget) == gadget.weight + 2 * gadget.path_hops

    def test_lemma_71_weighted_intersecting(self):
        gadget = self.make(disjoint=False, weight=10)
        diameter = reference.weighted_diameter(gadget.graph)
        assert diameter >= 2 * gadget.weight + gadget.path_hops

    def test_lemma_72_unweighted_disjoint(self):
        gadget = self.make(disjoint=True, weight=1)
        assert reference.hop_diameter(gadget.graph) == gadget.path_hops + 1

    def test_lemma_72_unweighted_intersecting(self):
        gadget = self.make(disjoint=False, weight=1)
        assert reference.hop_diameter(gadget.graph) == gadget.path_hops + 2

    def test_classification_from_exact_diameter(self):
        for disjoint in (True, False):
            gadget = self.make(disjoint=disjoint, weight=12, seed=3)
            diameter = reference.weighted_diameter(gadget.graph)
            assert classify_disjointness_from_diameter(gadget, diameter) == disjoint

    def test_columns_partition_all_nodes(self):
        gadget = self.make(disjoint=True, weight=5, k=3, path_hops=5)
        columns = gadget.columns()
        nodes = sorted(node for column in columns for node in column)
        assert nodes == list(range(gadget.node_count))
        assert len(columns) == gadget.path_hops + 1

    def test_alice_bob_cover_everything(self):
        gadget = self.make(disjoint=True, weight=5, path_hops=6)
        rounds = gadget.path_hops // 2
        for r in range(rounds):
            covered = set(gadget.alice_nodes(r)) | set(gadget.bob_nodes(r))
            assert covered == set(range(gadget.node_count))

    def test_simulation_partition_property(self):
        gadget = self.make(disjoint=False, weight=7, path_hops=6)
        assert verify_simulation_partition(gadget, rounds=gadget.path_hops // 2)

    def test_input_length_validation(self):
        with pytest.raises(ValueError):
            build_gamma_gadget(3, 4, 5, [0] * 8, [0] * 9)

    def test_disjointness_flag(self):
        gadget = self.make(disjoint=True, weight=5)
        assert gadget.disjoint()
        gadget = self.make(disjoint=False, weight=5)
        assert not gadget.disjoint()


class TestSetDisjointnessAccounting:
    def test_choose_parameters_respects_budget(self):
        params = choose_parameters(300)
        assert params.node_count <= 330
        assert params.k >= 2 and params.path_hops >= 2

    def test_required_bits_quadratic(self):
        assert disjointness_bits_required(10) == 100

    def test_cut_capacity_formula(self):
        config = ModelConfig()
        expected = 64 * config.send_cap(64) * config.message_bits
        assert per_round_cut_capacity_bits(64, config) == expected

    def test_implied_lower_bound_bounded_by_half_path(self):
        a, b = random_disjointness_instance(3, RandomSource(5), disjoint=True)
        gadget = build_gamma_gadget(3, 6, 7, a, b)
        bound = diameter_round_lower_bound(gadget, ModelConfig())
        assert bound <= gadget.path_hops // 2

    def test_measure_cut_traffic_with_aggregation(self):
        from repro.localnet.aggregation import aggregate_max

        a, b = random_disjointness_instance(3, RandomSource(6), disjoint=True)
        gadget = build_gamma_gadget(3, 6, 1, a, b)
        measurement = measure_cut_traffic(
            gadget,
            ModelConfig(rng_seed=1),
            lambda network: aggregate_max(network, {0: 1.0, gadget.u_hub: 2.0}),
        )
        assert measurement.cut_bits > 0
        assert measurement.total_rounds > 0
        assert measurement.required_bits == gadget.k ** 2
