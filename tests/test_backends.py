"""Backend equivalence: the dict and CSR traversal backends are interchangeable.

The CSR backend (DESIGN.md §4) must be a pure performance substitution: every
`WeightedGraph` method returns bit-identical results under both backends, and
every HYBRID simulation produces identical `RoundMetrics` — rounds, messages,
bits, maxima — on identical seeds.  These tests pin that contract
property-style over random weighted and unweighted graphs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.apsp import apsp_exact
from repro.core.sssp import sssp_exact
from repro.graphs import generators
from repro.graphs.graph import WeightedGraph
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.hashing import hash_family_for_network
from repro.util.rand import RandomSource

common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def backend_pair(draw):
    """The same random graph under both backends."""
    n = draw(st.integers(min_value=2, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    max_weight = draw(st.sampled_from([1, 1, 7, 16]))
    degree = draw(st.sampled_from([1.5, 3.0, 5.0]))
    rng = RandomSource(seed)
    graph = generators.random_connected_graph(n, degree, rng, max_weight=max_weight)
    as_dict = WeightedGraph.from_edges(n, graph.edges(), backend="dict")
    as_csr = WeightedGraph.from_edges(n, graph.edges(), backend="csr")
    hop_limit = draw(st.integers(min_value=0, max_value=n))
    return as_dict, as_csr, hop_limit


class TestBackendSelection:
    def test_auto_prefers_compiled_then_csr(self):
        from repro.graphs import compiled

        expected = "csr-njit" if compiled.available() else "csr"
        assert WeightedGraph(3).backend == expected

    def test_explicit_backends(self):
        assert WeightedGraph(3, backend="dict").backend == "dict"
        assert WeightedGraph(3, backend="csr").backend == "csr"
        assert WeightedGraph(3, backend="csr-njit").backend == "csr-njit"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            WeightedGraph(3, backend="sparse")

    def test_copy_and_subgraph_keep_backend(self):
        graph = WeightedGraph(4, backend="dict")
        graph.add_edge(0, 1, 2)
        assert graph.copy().backend == "dict"
        sub, _ = graph.subgraph([0, 1])
        assert sub.backend == "dict"

    def test_mutation_invalidates_csr_cache(self):
        graph = WeightedGraph(4, backend="csr")
        graph.add_edge(0, 1, 2)
        graph.add_edge(1, 2, 1)
        before = graph.csr()
        assert before.directed_edge_count == 4
        graph.add_edge(2, 3, 5)
        assert graph._csr is None
        assert graph.csr().directed_edge_count == 6
        assert graph.bfs_hops_many([0])[0] == {0: 0, 1: 1, 2: 2, 3: 3}
        graph.remove_edge(2, 3)
        assert graph._csr is None
        assert graph.bfs_hops_many([0])[0] == {0: 0, 1: 1, 2: 2}


class TestTraversalEquivalence:
    @common_settings
    @given(backend_pair())
    def test_bfs_hops_agree(self, pair):
        as_dict, as_csr, hop_limit = pair
        sources = list(range(as_dict.node_count))
        assert as_dict.bfs_hops_many(sources) == as_csr.bfs_hops_many(sources)
        assert as_dict.bfs_hops_many(sources, hop_limit) == as_csr.bfs_hops_many(
            sources, hop_limit
        )

    @common_settings
    @given(backend_pair())
    def test_dijkstra_agree(self, pair):
        as_dict, as_csr, _ = pair
        sources = list(range(as_dict.node_count))
        assert as_dict.dijkstra_many(sources) == as_csr.dijkstra_many(sources)

    @common_settings
    @given(backend_pair())
    def test_hop_limited_distances_agree(self, pair):
        as_dict, as_csr, hop_limit = pair
        sources = list(range(as_dict.node_count))
        assert as_dict.hop_limited_distances_many(
            sources, hop_limit
        ) == as_csr.hop_limited_distances_many(sources, hop_limit)

    @common_settings
    @given(backend_pair())
    def test_shortest_distances_within_hops_agree(self, pair):
        as_dict, as_csr, hop_limit = pair
        for source in range(0, as_dict.node_count, 3):
            assert as_dict.shortest_distances_within_hops(
                source, hop_limit
            ) == as_csr.shortest_distances_within_hops(source, hop_limit)

    @common_settings
    @given(backend_pair())
    def test_eccentricities_and_diameter_agree(self, pair):
        as_dict, as_csr, hop_limit = pair
        assert as_dict.hop_eccentricities() == as_csr.hop_eccentricities()
        assert as_dict.hop_eccentricities(max_hops=max(1, hop_limit)) == as_csr.hop_eccentricities(
            max_hops=max(1, hop_limit)
        )
        assert as_dict.hop_diameter() == as_csr.hop_diameter()

    @common_settings
    @given(backend_pair())
    def test_distance_matrix_agree(self, pair):
        as_dict, as_csr, _ = pair
        assert (as_dict.distance_matrix() == as_csr.distance_matrix()).all()

    def test_disconnected_graphs_agree(self):
        as_dict = WeightedGraph(6, backend="dict")
        as_csr = WeightedGraph(6, backend="csr")
        for graph in (as_dict, as_csr):
            graph.add_edge(0, 1, 3)
            graph.add_edge(2, 3, 1)
        sources = list(range(6))
        assert as_dict.bfs_hops_many(sources) == as_csr.bfs_hops_many(sources)
        assert as_dict.dijkstra_many(sources) == as_csr.dijkstra_many(sources)
        assert as_dict.hop_diameter() == as_csr.hop_diameter() == float("inf")


class TestSimulationEquivalence:
    """Fixed-seed end-to-end runs must be metric-identical across backends."""

    @staticmethod
    def _metrics(backend, algorithm, n=64, seed=9):
        graph = generators.connected_workload(
            n, RandomSource(seed), weighted=True, max_weight=6
        )
        pinned = WeightedGraph.from_edges(n, graph.edges(), backend=backend)
        network = HybridNetwork(pinned, ModelConfig(rng_seed=seed))
        result = algorithm(network)
        return network.metrics, result

    @pytest.mark.parametrize(
        "algorithm", [lambda net: sssp_exact(net, source=0), apsp_exact], ids=["sssp", "apsp"]
    )
    def test_round_metrics_identical(self, algorithm):
        dict_metrics, dict_result = self._metrics("dict", algorithm)
        csr_metrics, csr_result = self._metrics("csr", algorithm)
        assert dict_metrics.as_dict() == csr_metrics.as_dict()
        assert dict_result.rounds == csr_result.rounds
        assert {
            name: (phase.local_rounds, phase.global_rounds)
            for name, phase in dict_metrics.phases.items()
        } == {
            name: (phase.local_rounds, phase.global_rounds)
            for name, phase in csr_metrics.phases.items()
        }

    def test_sssp_distances_identical(self):
        _, dict_result = self._metrics("dict", lambda net: sssp_exact(net, source=0))
        _, csr_result = self._metrics("csr", lambda net: sssp_exact(net, source=0))
        assert dict_result.distances == csr_result.distances

    def test_apsp_matrices_identical(self):
        _, dict_result = self._metrics("dict", apsp_exact)
        _, csr_result = self._metrics("csr", apsp_exact)
        assert (dict_result.matrix == csr_result.matrix).all()


class TestBatchedHashing:
    def test_many_matches_scalar_evaluation(self):
        function = hash_family_for_network(257, RandomSource(4))
        rng = RandomSource(11)
        lanes = (
            [rng.randrange(1 << 20) for _ in range(500)],
            [rng.randrange(1 << 20) for _ in range(500)],
            [rng.randrange(64) for _ in range(500)],
        )
        batched = function.many(lanes)
        assert batched == [function(key) for key in zip(*lanes, strict=True)]

    def test_many_empty(self):
        function = hash_family_for_network(64, RandomSource(1))
        assert function.many(()) == []
