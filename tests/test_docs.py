"""Docs-consistency checks: cross-references must point at real anchors.

RL009 requires the serving surface to anchor itself with ``DESIGN.md §``
references; this suite closes the loop from the other side (DESIGN.md §10):
every section a docstring or README paragraph cites must actually exist as a
``## §N`` heading, every example script the README names must exist, and the
serving runbook must stay in sync with the wire protocol's documented
operations and error codes.
"""

import re
from pathlib import Path

from repro.serving import protocol

REPO = Path(__file__).resolve().parent.parent
DESIGN = (REPO / "DESIGN.md").read_text()
README = (REPO / "README.md").read_text()

SECTION_REFERENCE = re.compile(r"DESIGN\.md\s*§(\d+)")
SECTION_HEADING = re.compile(r"^## §(\d+) ", re.MULTILINE)


def design_sections():
    return {int(number) for number in SECTION_HEADING.findall(DESIGN)}


def referenced_sections(text):
    return {int(number) for number in SECTION_REFERENCE.findall(text)}


class TestSectionReferences:
    def test_design_headings_are_contiguous_from_one(self):
        sections = design_sections()
        assert sections == set(range(1, max(sections) + 1))

    def test_readme_references_resolve(self):
        missing = referenced_sections(README) - design_sections()
        assert not missing, f"README cites missing DESIGN.md sections: {sorted(missing)}"

    def test_source_docstring_references_resolve(self):
        sections = design_sections()
        offenders = {}
        for path in sorted((REPO / "src" / "repro").rglob("*.py")):
            missing = referenced_sections(path.read_text()) - sections
            if missing:
                offenders[str(path.relative_to(REPO))] = sorted(missing)
        assert not offenders, f"dangling DESIGN.md references: {offenders}"

    def test_serving_surface_is_anchored(self):
        # The §11 anchor RL009 demands must point somewhere real.
        assert 11 in design_sections()
        for name in ("server.py", "protocol.py", "batching.py", "benchmark.py"):
            text = (REPO / "src" / "repro" / "serving" / name).read_text()
            assert referenced_sections(text) <= design_sections()
            assert "DESIGN.md §" in text


class TestReadmeInventory:
    def test_named_example_scripts_exist(self):
        for match in re.finditer(r"examples/(\w+\.py)", README):
            assert (REPO / "examples" / match.group(1)).is_file(), match.group(0)

    def test_runbook_matches_wire_protocol(self):
        for code in protocol.ERROR_CODES:
            assert f"`{code}`" in README, f"error code {code} missing from README"
        serving_section = README.split("## Serving", 1)[1].split("\n## ", 1)[0]
        for knob in ("--batch-window", "--max-pending", "--tenant-quota", "--max-batch"):
            assert knob in serving_section, f"runbook is missing the {knob} knob"

    def test_design_mentions_every_operation(self):
        section_11 = DESIGN.split("## §11", 1)[1]
        for operation in protocol.OPERATIONS:
            assert f"`{operation}`" in section_11, (
                f"DESIGN.md §11 compatibility table is missing op {operation}"
            )
