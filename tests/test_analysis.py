"""Tests for the analysis helpers (power-law fits, markdown reports)."""

import math

import pytest

from repro.analysis import (
    exponent_gap,
    fit_power_law,
    fit_power_law_with_log,
    format_key_values,
    format_markdown_table,
    geometric_sweep,
    summarize_comparison,
)


class TestPowerLawFits:
    def test_recovers_exact_exponent(self):
        xs = [10, 20, 40, 80, 160]
        ys = [3 * x ** 0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-6)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_exponent_with_log_factor(self):
        xs = [16, 32, 64, 128, 256]
        ys = [2 * (x ** 0.66) * math.log2(x) for x in xs]
        fit = fit_power_law_with_log(xs, ys)
        assert fit.exponent == pytest.approx(0.66, abs=1e-6)
        assert fit.with_log_factor

    def test_predict_roundtrip(self):
        xs = [10, 100, 1000]
        ys = [5 * x ** 0.7 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.predict(500) == pytest.approx(5 * 500 ** 0.7, rel=1e-6)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [5])

    def test_requires_positive_values(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 3])

    def test_exponent_gap(self):
        fit = fit_power_law([10, 100], [10, 100])
        assert exponent_gap(fit, 1.0) == pytest.approx(0.0)

    def test_geometric_sweep_monotone(self):
        sweep = geometric_sweep(32, 512, 5)
        assert sweep[0] == 32 and sweep[-1] == 512
        assert all(a < b for a, b in zip(sweep, sweep[1:], strict=False))

    def test_geometric_sweep_validation(self):
        with pytest.raises(ValueError):
            geometric_sweep(10, 5, 3)


class TestReporting:
    def test_markdown_table_shape(self):
        table = format_markdown_table(["n", "rounds"], [[10, 42], [20, 99]])
        lines = table.splitlines()
        assert lines[0] == "| n | rounds |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_float_formatting(self):
        table = format_markdown_table(["x"], [[0.123456], [float("inf")]])
        assert "0.123" in table
        assert "inf" in table

    def test_key_values_block(self):
        text = format_key_values({"rounds": 12, "ratio": 1.5}, title="Run")
        assert text.startswith("Run")
        assert "  rounds: 12" in text

    def test_summarize_comparison(self):
        line = summarize_comparison("baseline", 200, "ours", 100)
        assert "2.00x" in line
