"""Tests for exact APSP in the HYBRID model (Section 3, Theorem 1.1)."""

import pytest

from repro.core.apsp import apsp_exact
from repro.graphs import generators, reference
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.rand import RandomSource


def exact_everywhere(graph, result) -> int:
    truth = reference.all_pairs_distances(graph)
    errors = 0
    for u in range(graph.node_count):
        for v, d in truth[u].items():
            if abs(result.distance(u, v) - d) > 1e-9:
                errors += 1
    return errors


class TestAPSPCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_exact_on_weighted_random_graphs(self, seed):
        graph = generators.connected_workload(45, RandomSource(seed), weighted=True, max_weight=9)
        network = HybridNetwork(graph, ModelConfig(rng_seed=seed, skeleton_xi=1.0))
        result = apsp_exact(network)
        assert exact_everywhere(graph, result) == 0

    def test_exact_on_unweighted_graph(self):
        graph = generators.connected_workload(40, RandomSource(4), weighted=False)
        network = HybridNetwork(graph, ModelConfig(rng_seed=4, skeleton_xi=1.0))
        result = apsp_exact(network)
        assert exact_everywhere(graph, result) == 0

    def test_exact_on_large_diameter_graph(self):
        graph = generators.random_geometric_like_graph(
            48, neighbourhood=2, rng=RandomSource(5), extra_edge_probability=0.0
        )
        network = HybridNetwork(graph, ModelConfig(rng_seed=5, skeleton_xi=1.0))
        result = apsp_exact(network)
        assert exact_everywhere(graph, result) == 0

    def test_exact_on_structured_graphs(self):
        for graph in (generators.grid_graph(6, 7), generators.barbell_graph(8, 6)):
            network = HybridNetwork(graph, ModelConfig(rng_seed=6, skeleton_xi=1.0))
            result = apsp_exact(network)
            assert exact_everywhere(graph, result) == 0

    def test_diagonal_is_zero(self):
        graph = generators.connected_workload(30, RandomSource(7), weighted=True, max_weight=4)
        network = HybridNetwork(graph, ModelConfig(rng_seed=7, skeleton_xi=1.0))
        result = apsp_exact(network)
        assert all(result.distance(v, v) == 0 for v in range(graph.node_count))

    def test_distances_from_accessor(self):
        graph = generators.connected_workload(25, RandomSource(8), weighted=True, max_weight=4)
        network = HybridNetwork(graph, ModelConfig(rng_seed=8, skeleton_xi=1.0))
        result = apsp_exact(network)
        row = result.distances_from(3)
        assert row[3] == 0
        assert len(row) == graph.node_count


class TestAPSPAccounting:
    def test_rounds_and_metadata_recorded(self):
        graph = generators.connected_workload(40, RandomSource(9), weighted=True, max_weight=4)
        network = HybridNetwork(graph, ModelConfig(rng_seed=9, skeleton_xi=1.0))
        result = apsp_exact(network)
        assert result.rounds == network.metrics.total_rounds
        assert result.skeleton_size >= 1
        assert result.hop_length >= 1
        assert result.routing_tokens >= graph.node_count  # ~ n * |V_S|

    def test_send_cap_respected_throughout(self):
        graph = generators.connected_workload(36, RandomSource(10), weighted=True, max_weight=4)
        network = HybridNetwork(graph, ModelConfig(rng_seed=10, skeleton_xi=1.0))
        apsp_exact(network)
        assert network.metrics.max_sent_per_round <= network.send_cap

    def test_rounds_well_below_pure_global_cost(self):
        # The whole point of HYBRID: far fewer rounds than the Ω̃(n) a pure
        # global-network solution needs on a high-diameter graph.
        graph = generators.random_geometric_like_graph(
            60, neighbourhood=2, rng=RandomSource(11), extra_edge_probability=0.0
        )
        network = HybridNetwork(graph, ModelConfig(rng_seed=11, skeleton_xi=1.0))
        result = apsp_exact(network)
        # A global-only solution needs every node to receive ~n distances at
        # O(log n) messages per round, i.e. ~n^2/log n rounds in total through
        # the coordinator; the HYBRID algorithm stays far below that.
        assert result.rounds < graph.node_count ** 2 / 10
