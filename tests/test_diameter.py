"""Tests for diameter approximation in the HYBRID model (Section 5, Theorem 5.1)."""

import pytest

from repro.clique import EccentricityDiameter, GatherDiameter
from repro.core.diameter import approximate_diameter
from repro.graphs import generators
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.rand import RandomSource


def make_network(graph, seed):
    return HybridNetwork(graph, ModelConfig(rng_seed=seed, skeleton_xi=1.0))


class TestDiameterApproximation:
    @pytest.mark.parametrize("seed", [41, 42])
    def test_exact_clique_algorithm_on_random_graph(self, seed):
        graph = generators.connected_workload(44, RandomSource(seed), weighted=False)
        network = make_network(graph, seed)
        result = approximate_diameter(network, GatherDiameter())
        true_diameter = graph.hop_diameter()
        assert true_diameter <= result.estimate
        assert result.estimate <= result.guaranteed_alpha() * true_diameter + 2 * result.hop_length

    def test_small_diameter_graphs_answered_exactly(self):
        graph = generators.connected_workload(
            40, RandomSource(43), weighted=False, average_degree=6.0
        )
        network = make_network(graph, 43)
        result = approximate_diameter(network, GatherDiameter())
        # D is tiny, so the local phase sees everything and Equation (3) takes
        # the exact branch.
        assert result.used_local_estimate
        assert result.estimate == graph.hop_diameter()

    def test_large_diameter_ring(self):
        graph = generators.random_geometric_like_graph(
            60, neighbourhood=2, rng=RandomSource(44), extra_edge_probability=0.0
        )
        network = make_network(graph, 44)
        result = approximate_diameter(network, GatherDiameter())
        true_diameter = graph.hop_diameter()
        assert true_diameter <= result.estimate <= 1.5 * true_diameter + 2 * result.hop_length

    def test_eccentricity_based_approximation(self):
        graph = generators.random_geometric_like_graph(
            50, neighbourhood=2, rng=RandomSource(45), extra_edge_probability=0.0
        )
        network = make_network(graph, 45)
        result = approximate_diameter(network, EccentricityDiameter())
        true_diameter = graph.hop_diameter()
        assert result.estimate >= true_diameter
        limit = (result.guaranteed_alpha()) * true_diameter + 2 * result.hop_length
        assert result.estimate <= limit

    def test_path_graph_exact_branch_vs_skeleton_branch(self):
        path = generators.path_graph(30)
        network = make_network(path, 46)
        result = approximate_diameter(network, GatherDiameter())
        assert result.estimate >= path.hop_diameter()

    def test_weighted_graph_rejected(self):
        graph = generators.connected_workload(20, RandomSource(47), weighted=True, max_weight=5)
        network = make_network(graph, 47)
        with pytest.raises(ValueError):
            approximate_diameter(network, GatherDiameter())

    def test_metadata_recorded(self):
        graph = generators.connected_workload(30, RandomSource(48), weighted=False)
        network = make_network(graph, 48)
        result = approximate_diameter(network, GatherDiameter())
        assert result.rounds == network.metrics.total_rounds
        assert result.skeleton_size >= 1
        assert result.clique_rounds >= 1
        assert result.local_max_hop >= 1

    def test_guaranteed_alpha_formula(self):
        graph = generators.connected_workload(30, RandomSource(49), weighted=False)
        network = make_network(graph, 49)
        result = approximate_diameter(network, EccentricityDiameter())
        spec = result.spec
        expected = spec.alpha + 2.0 / spec.eta + spec.beta / max(1, result.exploration_depth)
        assert result.guaranteed_alpha() == pytest.approx(expected)
