"""Tests for the whole-program resolution layer behind RL006-RL008.

The layer has three parts -- the symbol table / import resolver
(:mod:`repro.analysis.lint.symbols`), the conservative call graph
(:mod:`repro.analysis.lint.callgraph`), and the data-flow fact extractor
(:mod:`repro.analysis.lint.dataflow`).  Unit tests here build synthetic
in-memory modules (no tmp files needed: a ``SourceFile`` is just
path/text/AST), and integration tests run over the committed
``tests/lint_fixtures/resolver_pkg`` package, which wires every resolution
feature into one call chain from a fixture worker entry point: ``import x
as y`` module aliasing, ``from x import f as g``, re-exports through
``__init__.py``, an import+call cycle, and a registry-dispatched dynamic
call.  The end-to-end claim under test: none of those indirections may
produce a false RL006 negative.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.lint import lint_paths
from repro.analysis.lint.callgraph import build_call_graph
from repro.analysis.lint.dataflow import function_facts
from repro.analysis.lint.framework import SourceFile
from repro.analysis.lint.symbols import ProjectSymbols

FIXTURES = Path(__file__).parent / "lint_fixtures"
RESOLVER_PKG = FIXTURES / "resolver_pkg"


def make_source(path: str, text: str) -> SourceFile:
    return SourceFile(path=path, text=text, tree=ast.parse(text))


def make_project(*files: tuple) -> ProjectSymbols:
    return ProjectSymbols([make_source(path, text) for path, text in files])


def fixture_project() -> ProjectSymbols:
    sources = []
    for path in sorted(RESOLVER_PKG.rglob("*.py")):
        relative = path.relative_to(FIXTURES.parent.parent).as_posix()
        sources.append(make_source(relative, path.read_text()))
    return ProjectSymbols(sources)


def module_by_suffix(project: ProjectSymbols, suffix: str):
    for module in project.modules:
        if module.source.suffix_matches(suffix):
            return module
    raise AssertionError(f"no module matching {suffix}")


class TestSymbolResolution:
    def test_import_module_as_alias_resolves(self):
        project = make_project(
            ("pkg/state.py", "def mutate():\n    return 1\n"),
            ("pkg/impl.py", "import pkg.state as st\n\ndef run():\n    return st.mutate()\n"),
        )
        impl = module_by_suffix(project, "pkg/impl.py")
        kind, value = project.resolve_dotted(impl, "st.mutate")
        assert kind == "function"
        assert value.name == "mutate"
        assert value.source.path == "pkg/state.py"

    def test_from_import_as_alias_resolves(self):
        project = make_project(
            ("pkg/counter.py", "def bump():\n    return 1\n"),
            ("pkg/tasks.py", "from pkg.counter import bump as poke\n\ndef task():\n    return poke()\n"),
        )
        tasks = module_by_suffix(project, "pkg/tasks.py")
        kind, value = project.resolve_name(tasks, "poke")
        assert kind == "function"
        assert value.name == "bump"

    def test_reexport_through_package_init_resolves(self):
        project = make_project(
            ("pkg/__init__.py", "from pkg.impl import run_helper as helper\n"),
            ("pkg/impl.py", "def run_helper():\n    return 0\n"),
            ("pkg/use.py", "from pkg import helper\n\ndef go():\n    return helper()\n"),
        )
        use = module_by_suffix(project, "pkg/use.py")
        kind, value = project.resolve_name(use, "helper")
        assert kind == "function"
        assert value.name == "run_helper"
        assert value.source.path == "pkg/impl.py"

    def test_import_cycle_resolution_terminates(self):
        project = make_project(
            ("pkg/a.py", "from pkg.b import thing\n"),
            ("pkg/b.py", "from pkg.a import thing\n"),
        )
        a = module_by_suffix(project, "pkg/a.py")
        # The alias chain is circular; resolution must answer None, not hang.
        assert project.resolve_name(a, "thing") is None

    def test_mutable_state_classification(self):
        project = make_project(
            (
                "pkg/data.py",
                "CONST = (1 << 8) - 1\n"
                "FROZEN_TABLE = {'a': 1}\n"
                "_CACHE: dict = {}\n"
                "_memo = None\n"
                "def touch(key):\n"
                "    _CACHE[key] = key\n"
                "def rebind():\n"
                "    global _memo\n"
                "    _memo = object()\n",
            ),
        )
        data = module_by_suffix(project, "pkg/data.py")
        assert data.globals["CONST"].constant_value
        assert not data.globals["CONST"].is_mutable_state
        # A mutable container nobody mutates is a de-facto constant table.
        assert not data.globals["FROZEN_TABLE"].is_mutable_state
        # Mutated container and global-rebound name are both state.
        assert data.globals["_CACHE"].is_mutable_state
        assert data.globals["_memo"].is_mutable_state


class TestCallGraph:
    def test_cycle_bearing_reachability_terminates_and_covers(self):
        project = fixture_project()
        graph = build_call_graph(project)
        engine = module_by_suffix(project, "experiments/engine.py")
        entry = engine.functions["execute_shard"].qualname
        reached = graph.reachable_from([entry])
        names = {qualname.split("::")[-1] for qualname in reached}
        assert {"ping", "pong"} <= names  # Both halves of the call cycle.

    def test_dynamic_dispatch_pulls_in_address_taken_functions(self):
        project = fixture_project()
        graph = build_call_graph(project)
        engine = module_by_suffix(project, "experiments/engine.py")
        entry = engine.functions["execute_shard"].qualname
        reached = graph.reachable_from([entry])
        names = {qualname.split("::")[-1] for qualname in reached}
        # dispatch() calls through a registry value; the conservative
        # fallback must still reach the registered task and its callee.
        assert "dispatch" in names
        assert "hidden_task" in names
        assert "bump" in names

    def test_alias_and_reexport_chain_is_walked(self):
        project = fixture_project()
        graph = build_call_graph(project)
        engine = module_by_suffix(project, "experiments/engine.py")
        entry = engine.functions["execute_shard"].qualname
        reached = graph.reachable_from([entry])
        names = {qualname.split("::")[-1] for qualname in reached}
        # engine -> helper (re-export) -> run_helper -> st.mutate (module
        # alias): the full chain must be edges, not fallbacks.
        assert "run_helper" in names
        assert "mutate" in names

    def test_witness_path_leads_back_to_the_entry(self):
        project = fixture_project()
        graph = build_call_graph(project)
        engine = module_by_suffix(project, "experiments/engine.py")
        entry = engine.functions["execute_shard"].qualname
        reached = graph.reachable_from([entry])
        mutate = next(q for q in reached if q.split("::")[-1] == "mutate")
        path = graph.witness_path(reached, mutate)
        assert path[0] == entry
        assert path[-1] == mutate


class TestDataFlowFacts:
    def test_global_reads_and_writes_are_attributed(self):
        project = fixture_project()
        counter = module_by_suffix(project, "resolver_pkg/counter.py")
        facts = function_facts(project, counter.functions["bump"])
        kinds = sorted((use.target.name, use.kind) for use in facts.global_uses)
        assert ("_COUNT", "write") in kinds
        assert ("_COUNT", "read") in kinds

    def test_attribute_writes_record_receiver_and_augmentation(self):
        project = make_project(
            (
                "pkg/obj.py",
                "class Thing:\n"
                "    def __init__(self):\n"
                "        self.total = 0\n"
                "    def charge(self, amount):\n"
                "        self.total += amount\n",
            ),
        )
        thing = module_by_suffix(project, "pkg/obj.py").classes["Thing"]
        facts = function_facts(project, thing.methods["charge"])
        assert [(w.base, w.attr, w.augmented) for w in facts.attribute_writes] == [
            ("self", "total", True)
        ]

    def test_local_types_from_construction_and_annotation(self):
        project = make_project(
            (
                "pkg/types.py",
                "class Graph:\n"
                "    def __init__(self):\n"
                "        self.n = 0\n"
                "def build():\n"
                "    graph = Graph()\n"
                "    return graph\n"
                "def use(graph: Graph):\n"
                "    return graph\n",
            ),
        )
        module = module_by_suffix(project, "pkg/types.py")
        build_facts = function_facts(project, module.functions["build"])
        use_facts = function_facts(project, module.functions["use"])
        assert build_facts.local_types == {"graph": "Graph"}
        assert use_facts.local_types == {"graph": "Graph"}


class TestNoFalseNegativesEndToEnd:
    def test_rl006_fires_through_every_indirection(self):
        report = lint_paths([str(RESOLVER_PKG)], select=["RL006"])
        flagged_files = {diagnostic.path.split("/")[-1] for diagnostic in report.active}
        # state.py is reached via __init__ re-export + module alias;
        # counter.py via registry dynamic dispatch + from-import-as.
        assert flagged_files == {"state.py", "counter.py"}
        assert all(diagnostic.code == "RL006" for diagnostic in report.active)
        assert len(report.active) == 5

    def test_registry_table_itself_is_not_flagged(self):
        # REGISTRY is a literal dict nobody mutates: reading it from worker
        # code is fine; only genuine mutable state may fire.
        report = lint_paths([str(RESOLVER_PKG)], select=["RL006"])
        assert not any("registry.py" in d.path for d in report.active)
        assert not any("dispatch.py" in d.path for d in report.active)
