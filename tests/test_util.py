"""Unit tests for repro.util (randomness, hashing, Chernoff helpers)."""

import math

import pytest

from repro.util.chernoff import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    union_bound_failure,
    whp_threshold_above,
    whp_threshold_below,
)
from repro.util.hashing import KWiseHashFamily, hash_family_for_network
from repro.util.rand import RandomSource, sample_nodes, split_evenly


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a, b = RandomSource(5), RandomSource(5)
        assert [a.randint(0, 100) for _ in range(10)] == [b.randint(0, 100) for _ in range(10)]

    def test_fork_is_deterministic(self):
        a, b = RandomSource(5), RandomSource(5)
        assert a.fork("phase").randint(0, 1000) == b.fork("phase").randint(0, 1000)

    def test_forks_with_different_labels_differ(self):
        root = RandomSource(5)
        values_a = [root.fork("a").randint(0, 10**9) for _ in range(1)]
        values_b = [root.fork("b").randint(0, 10**9) for _ in range(1)]
        assert values_a != values_b

    def test_bernoulli_extremes(self):
        rng = RandomSource(1)
        assert rng.bernoulli(1.0)
        assert not rng.bernoulli(0.0)

    def test_bernoulli_rate(self):
        rng = RandomSource(2)
        hits = sum(rng.bernoulli(0.3) for _ in range(5000))
        assert 0.25 * 5000 < hits < 0.35 * 5000

    def test_randrange_bounds(self):
        rng = RandomSource(3)
        assert all(0 <= rng.randrange(7) < 7 for _ in range(100))

    def test_choice_and_sample(self):
        rng = RandomSource(4)
        items = list(range(10))
        assert rng.choice(items) in items
        sampled = rng.sample(items, 4)
        assert len(set(sampled)) == 4

    def test_shuffle_preserves_elements(self):
        rng = RandomSource(5)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_sample_nodes_probability_one(self):
        rng = RandomSource(6)
        assert sample_nodes(range(10), 1.0, rng) == list(range(10))

    def test_sample_nodes_probability_zero(self):
        rng = RandomSource(6)
        assert sample_nodes(range(10), 0.0, rng) == []

    def test_split_evenly_balanced(self):
        buckets = split_evenly(list(range(10)), 3)
        sizes = sorted(len(b) for b in buckets)
        assert sizes == [3, 3, 4]
        assert sorted(x for b in buckets for x in b) == list(range(10))

    def test_split_evenly_more_buckets_than_items(self):
        buckets = split_evenly([1, 2], 5)
        assert sum(len(b) for b in buckets) == 2

    def test_split_evenly_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            split_evenly([1], 0)


class TestHashing:
    def test_output_range(self):
        function = KWiseHashFamily(4, 50).sample(RandomSource(1))
        assert all(0 <= function((i, i + 1, i + 2)) < 50 for i in range(200))

    def test_deterministic_per_function(self):
        function = KWiseHashFamily(4, 50).sample(RandomSource(1))
        assert function((3, 4, 5)) == function((3, 4, 5))

    def test_different_seeds_differ(self):
        family = KWiseHashFamily(4, 1000)
        f1 = family.sample(RandomSource(1))
        f2 = family.sample(RandomSource(2))
        values1 = [f1((i,)) for i in range(50)]
        values2 = [f2((i,)) for i in range(50)]
        assert values1 != values2

    def test_roughly_uniform(self):
        function = KWiseHashFamily(6, 10).sample(RandomSource(3))
        counts = [0] * 10
        for i in range(5000):
            counts[function((i, 2 * i, 3 * i))] += 1
        assert min(counts) > 300  # expectation 500 per bucket

    def test_independence_parameter(self):
        family = KWiseHashFamily(7, 10)
        assert family.sample(RandomSource(1)).independence == 7

    def test_seed_bits_match_lemma(self):
        # Lemma 2.3: O(log^2 n) bits suffice; our family uses k * 61 bits.
        function = hash_family_for_network(1024, RandomSource(5))
        assert function.seed_bits <= 3 * 10 * 61 + 61

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KWiseHashFamily(0, 10)
        with pytest.raises(ValueError):
            KWiseHashFamily(2, 0).sample(RandomSource(1))

    def test_integer_keys_accepted(self):
        function = KWiseHashFamily(3, 17).sample(RandomSource(9))
        assert 0 <= function(12345) < 17


class TestChernoff:
    def test_upper_tail_decreasing_in_mean(self):
        assert chernoff_upper_tail(100, 1.0) < chernoff_upper_tail(10, 1.0)

    def test_upper_tail_at_most_one(self):
        assert chernoff_upper_tail(0.1, 0.5) <= 1.0

    def test_lower_tail_decreasing_in_mean(self):
        assert chernoff_lower_tail(100, 0.5) < chernoff_lower_tail(10, 0.5)

    def test_lower_tail_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            chernoff_lower_tail(10, 1.5)

    def test_union_bound(self):
        assert union_bound_failure(0.001, 100) == pytest.approx(0.1)
        assert union_bound_failure(0.5, 100) == 1.0

    def test_whp_threshold_above_is_above_mean(self):
        assert whp_threshold_above(10.0, 1000) >= 10.0

    def test_whp_threshold_above_zero_mean_is_logarithmic(self):
        threshold = whp_threshold_above(0.0, 1000)
        assert threshold == pytest.approx(3 * math.log(1000))

    def test_whp_threshold_below_is_below_mean(self):
        assert whp_threshold_below(100.0, 1000) <= 100.0

    def test_whp_threshold_below_degenerates_for_small_mean(self):
        assert whp_threshold_below(1.0, 1000) == 0.0

    def test_thresholds_reject_tiny_n(self):
        with pytest.raises(ValueError):
            whp_threshold_above(1.0, 1)
