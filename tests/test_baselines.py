"""Tests for the prior-work baselines (repro.baselines)."""

import pytest

from repro.baselines import (
    apsp_broadcast_baseline,
    local_only_diameter,
    local_only_shortest_paths,
    ncc_only_shortest_paths,
    predicted_broadcast_rounds,
    route_tokens_by_broadcast,
)
from repro.core.token_routing import make_tokens
from repro.graphs import generators, reference
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.rand import RandomSource


def make_network(seed, n=40, weighted=True):
    graph = generators.connected_workload(n, RandomSource(seed), weighted=weighted, max_weight=6)
    return graph, HybridNetwork(graph, ModelConfig(rng_seed=seed, skeleton_xi=1.0))


class TestBroadcastAPSPBaseline:
    def test_exact(self):
        graph, network = make_network(51)
        result = apsp_broadcast_baseline(network)
        truth = reference.all_pairs_distances(graph)
        for u in range(0, graph.node_count, 3):
            for v, d in truth[u].items():
                assert result.distance(u, v) == pytest.approx(d)

    def test_broadcast_token_count_scales_with_skeleton(self):
        graph, network = make_network(52)
        result = apsp_broadcast_baseline(network)
        # Every node broadcasts a label per nearby skeleton node; with h large
        # relative to D that is ~ n * |V_S| tokens.
        assert result.broadcast_tokens >= result.skeleton_size
        assert result.rounds > 0

    def test_metadata(self):
        _, network = make_network(53)
        result = apsp_broadcast_baseline(network)
        assert result.rounds == network.metrics.total_rounds


class TestLocalOnlyBaseline:
    def test_shortest_paths_exact_and_costs_diameter(self):
        graph, network = make_network(54)
        sources = [0, 7]
        result = local_only_shortest_paths(network, sources)
        assert result.rounds == graph.hop_diameter()
        truth = reference.multi_source_distances(graph, sources)
        for s in sources:
            for v in range(graph.node_count):
                assert result.distances[v][s] == pytest.approx(truth[s][v])

    def test_diameter(self):
        graph, network = make_network(55, weighted=False)
        result = local_only_diameter(network)
        assert result.diameter == graph.hop_diameter()
        assert result.rounds == graph.hop_diameter()

    def test_disconnected_rejected(self):
        graph = generators.path_graph(6)
        graph.remove_edge(2, 3)
        network = HybridNetwork(graph, ModelConfig())
        with pytest.raises(ValueError):
            local_only_shortest_paths(network, [0])


class TestNCCOnlyBaseline:
    def test_exact(self):
        graph, network = make_network(56, n=30)
        sources = [0, 3]
        result = ncc_only_shortest_paths(network, sources)
        truth = reference.multi_source_distances(graph, sources)
        for s in sources:
            for v in range(graph.node_count):
                assert result.distances[v][s] == pytest.approx(truth[s][v])

    def test_rounds_dominated_by_coordinator_bottleneck(self):
        graph, network = make_network(57, n=30)
        result = ncc_only_shortest_paths(network, [0])
        # Node 0 has to receive ~m messages at receive_cap per round.
        assert result.rounds >= graph.edge_count // network.receive_cap

    def test_global_only_uses_no_local_rounds(self):
        _, network = make_network(58, n=25)
        ncc_only_shortest_paths(network, [0])
        assert network.metrics.local_rounds == 0


class TestNaiveRoutingBaseline:
    def test_delivers_all_tokens(self):
        graph, network = make_network(59)
        tokens = make_tokens(
            {s: [((s * 3 + 1) % 40, ("p", s, i)) for i in range(3)] for s in range(0, 40, 4)}
        )
        result = route_tokens_by_broadcast(network, tokens)
        delivered = [t for items in result.delivered.values() for t in items]
        assert sorted(t.label for t in delivered) == sorted(t.label for t in tokens)

    def test_broadcast_moves_more_data_than_routing(self):
        graph, network = make_network(60)
        tokens = make_tokens(
            {s: [((s * 7 + 2) % 40, ("p", s, i)) for i in range(4)] for s in range(0, 40, 2)}
        )
        broadcast_messages_net = HybridNetwork(graph, ModelConfig(rng_seed=61, skeleton_xi=1.0))
        route_tokens_by_broadcast(broadcast_messages_net, tokens)

        from repro.core.token_routing import route_tokens

        routing_net = HybridNetwork(graph, ModelConfig(rng_seed=61, skeleton_xi=1.0))
        route_tokens(routing_net, tokens)
        # The broadcast strategy must push every token towards every node, so
        # its busiest receiver handles at least as much global traffic.
        assert broadcast_messages_net.max_total_received() >= routing_net.max_total_received()

    def test_predicted_rounds_formula(self):
        assert predicted_broadcast_rounds(100, 5) == pytest.approx(15.0)
