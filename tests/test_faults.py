"""The fault-injection subsystem: seeded drops, crashes, bursts, outages,
acknowledged retransmission, and the differential fuzzer.

Three contracts are pinned here:

* **Fault-free bit-identity.**  With no :class:`FaultModel` (or a disabled
  one) every entry point charges exactly the phases, forks exactly the RNG
  labels and records exactly the RoundMetrics of the ideal engine -- the
  loss-tolerance machinery must be invisible when faults are off.
* **Plane identity under faults.**  The scalar and vectorized message planes
  drop the *same* messages (the per-message fate is a seeded hash of round /
  sender / target / occurrence, not of iteration order), so metrics and
  deliveries stay bit-identical between planes even on lossy networks.
* **Differential correctness.**  Across hundreds of random graph × fault
  schedule combinations, the retransmitting APSP / SSSP / diameter pipelines
  either raise :class:`FaultToleranceExceededError` (the schedule beat the
  retry budget) or return answers that match the sequential Dijkstra oracle
  -- never a silently wrong result.
"""

import pytest

numpy = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    FaultModel,
    FaultToleranceExceededError,
    HybridNetwork,
    ModelConfig,
    generators,
    reference,
)
from repro.clique import GatherDiameter
from repro.core.apsp import apsp_exact
from repro.core.diameter import approximate_diameter
from repro.core.sssp import sssp_exact
from repro.hybrid import MessageBatch
from repro.hybrid.faults import (
    MESSAGE_LANE,
    FaultState,
    fault_hash,
    fault_hash_array,
)
from repro.session import HybridSession
from repro.util.rand import RandomSource

fuzz_settings = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

message_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=19), st.integers(min_value=0, max_value=19)),
    min_size=0,
    max_size=100,
)


def build_batch(pairs):
    return MessageBatch(
        [sender for sender, _ in pairs],
        [target for _, target in pairs],
        [("payload", index) for index in range(len(pairs))],
    )


def metrics_snapshot(network):
    snapshot = network.metrics.as_dict()
    snapshot["phases"] = {
        name: (breakdown.local_rounds, breakdown.global_rounds)
        for name, breakdown in network.metrics.phases.items()
    }
    snapshot["received_totals"] = [int(total) for total in network.received_totals]
    return snapshot


class TestFaultModel:
    def test_defaults_inject_nothing(self):
        model = FaultModel()
        assert not model.enabled and not model.affects_global

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultModel(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultModel(burst_rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(max_attempts=0)
        with pytest.raises(ValueError):
            FaultModel(burst_length=-1)

    def test_schedules_normalize_from_mappings_and_pairs(self):
        from_mapping = FaultModel(
            crash_schedule={3: 5}, omission_schedule={2: [7, 1]}, edge_outages=[(9, 4)]
        )
        from_pairs = FaultModel(
            crash_schedule=[(3, 5)], omission_schedule=[(2, (1, 7))], edge_outages=[(4, 9)]
        )
        assert from_mapping == from_pairs
        assert from_mapping.enabled and from_mapping.affects_global
        # Duplicate keys in the pair forms merge instead of overwriting: the
        # earliest crash round wins and omission sets union per round.
        merged = FaultModel(
            crash_schedule=[(4, 9), (4, 2)], omission_schedule=[(3, [1]), (3, [2])]
        )
        assert merged.crash_schedule == ((4, 2),)
        assert merged.omission_schedule == ((3, (1, 2)),)

    def test_outage_only_model_does_not_touch_global_plane(self):
        model = FaultModel(edge_outages=[(0, 1)])
        assert model.enabled and not model.affects_global

    def test_hash_scalar_and_array_agree(self):
        rng = RandomSource(1)
        senders = numpy.array([rng.randrange(50) for _ in range(200)], dtype=numpy.int64)
        targets = numpy.array([rng.randrange(50) for _ in range(200)], dtype=numpy.int64)
        occurrences = numpy.array([rng.randrange(4) for _ in range(200)], dtype=numpy.int64)
        prefix = fault_hash(77, MESSAGE_LANE, 13)
        hashed = fault_hash_array(prefix, senders, targets, occurrences)
        for i in range(200):
            assert int(hashed[i]) == fault_hash(
                77, MESSAGE_LANE, 13, int(senders[i]), int(targets[i]), int(occurrences[i])
            )

    def test_keep_mask_matches_scalar_decisions(self):
        state = FaultState(FaultModel(drop_rate=0.3, seed=5))
        rng = RandomSource(2)
        senders = numpy.array([rng.randrange(12) for _ in range(150)], dtype=numpy.int64)
        targets = numpy.array([rng.randrange(12) for _ in range(150)], dtype=numpy.int64)
        for round_index in range(4):
            threshold = state.drop_threshold(round_index)
            faulty = state.faulty_nodes(round_index)
            occurrences = {}
            expected = []
            for sender, target in zip(senders.tolist(), targets.tolist(), strict=True):
                occurrence = occurrences.get((sender, target), 0)
                occurrences[(sender, target)] = occurrence + 1
                expected.append(
                    not state.drops(round_index, sender, target, occurrence, threshold, faulty)
                )
            mask = state.keep_mask(senders, targets, round_index, 12)
            got = [True] * 150 if mask is None else mask.tolist()
            assert got == expected

    def test_burst_windows_cover_burst_length_rounds(self):
        model = FaultModel(burst_rate=0.2, burst_length=3, burst_drop_rate=1.0, seed=11)
        state = FaultState(model)
        single = FaultState(FaultModel(burst_rate=0.2, burst_length=1, seed=11))
        bursty = [r for r in range(200) if state.in_burst(r)]
        starts = [r for r in range(200) if single.in_burst(r)]
        assert starts, "seed 11 should start at least one burst in 200 rounds"
        # Every burst round is within burst_length of some start, and every
        # start opens a full window.
        for r in bursty:
            assert any(s <= r < s + 3 for s in starts)
        for s in starts:
            for r in range(s, s + 3):
                assert state.in_burst(r)

    def test_crash_and_omission_round_semantics(self):
        state = FaultState(FaultModel(crash_schedule={4: 2}, omission_schedule={1: [9]}))
        assert state.faulty_nodes(0) == frozenset()
        assert state.faulty_nodes(1) == frozenset({9})
        assert state.faulty_nodes(2) == frozenset({4})
        assert state.faulty_nodes(3) == frozenset({4})


class TestEngineEnforcement:
    def make(self, plane="vectorized", **faults):
        graph = generators.cycle_graph(20)
        return HybridNetwork(
            graph, ModelConfig(rng_seed=1, global_plane=plane, faults=FaultModel(**faults))
        )

    @pytest.mark.parametrize("plane", ["scalar", "vectorized"])
    def test_drops_are_counted_but_not_delivered(self, plane):
        network = self.make(plane=plane, drop_rate=0.5, seed=3)
        pairs = [(sender, (sender + 1) % 20) for sender in range(20) for _ in range(3)]
        delivered = network.global_round(build_batch(pairs), "lossy")
        dropped = network.metrics.global_dropped
        assert 0 < dropped < len(pairs)
        assert len(delivered) == len(pairs) - dropped
        # Sends count every attempted message; receives only the delivered.
        assert network.metrics.global_messages == len(pairs)
        assert sum(int(total) for total in network.received_totals) == len(delivered)

    def test_crashed_node_sends_and_receives_nothing(self):
        network = self.make(crash_schedule={5: 0})
        pairs = [(5, 1), (1, 5), (2, 3)]
        delivered = network.global_round(build_batch(pairs), "crash")
        assert delivered.to_inboxes() == {3: [(2, ("payload", 2))]}
        assert network.metrics.global_dropped == 2

    def test_omission_silences_exactly_one_round(self):
        network = self.make(omission_schedule={0: [1]})
        first = network.global_round(build_batch([(1, 2)]), "omit")
        assert len(first) == 0
        second = network.global_round(build_batch([(1, 2)]), "omit")
        assert len(second) == 1

    def test_burst_drops_everything_while_active(self):
        # A guaranteed burst from round 0 (rate 1.0) of length 2: the first
        # two global rounds lose all traffic, the third is clean again.
        network = self.make(burst_rate=1.0, burst_length=2, burst_drop_rate=1.0, drop_rate=0.0)
        state = network._fault_state
        assert state.in_burst(0) and state.in_burst(1)
        lost = network.global_round(build_batch([(0, 1), (2, 3)]), "burst")
        assert len(lost) == 0 and network.metrics.global_dropped == 2

    @fuzz_settings
    @given(message_lists, st.integers(min_value=0, max_value=2**31))
    def test_planes_identical_under_faults(self, pairs, fault_seed):
        """The scalar and vectorized planes drop the same messages: identical
        metrics (dropped/retried included), identical deliveries."""
        snapshots = {}
        deliveries = {}
        model = FaultModel(
            drop_rate=0.35, seed=fault_seed, omission_schedule={1: [0, 7]}, crash_schedule={19: 2}
        )
        for plane in ("scalar", "vectorized"):
            network = HybridNetwork(
                generators.cycle_graph(20),
                ModelConfig(rng_seed=1, global_plane=plane, faults=model),
            )
            inbox, _rounds = network.run_global_exchange(build_batch(pairs), "faulty")
            snapshots[plane] = metrics_snapshot(network)
            deliveries[plane] = {
                target: (list(senders), payloads)
                for target, senders, payloads in inbox.groupby_target()
            }
        assert snapshots["scalar"] == snapshots["vectorized"]
        assert deliveries["scalar"] == deliveries["vectorized"]

    def test_edge_outages_shrink_the_local_mode_only(self):
        graph = generators.cycle_graph(8)
        network = HybridNetwork(
            graph, ModelConfig(rng_seed=1, faults=FaultModel(edge_outages=[(0, 1)]))
        )
        assert network.graph.has_edge(0, 1)  # the graph itself is untouched
        assert not network.local_graph.has_edge(0, 1)
        # The 1-hop ball of node 0 lost neighbour 1; the cycle's severed ring
        # now has hop diameter 7 instead of 4.
        assert 1 not in network.local_ball(0, 1)
        assert network.hop_diameter() == 7
        assert 1 not in network.local_hop_limited_distances(0, 1)
        # The global plane still reaches node 1 by ID.
        delivered = network.global_round(build_batch([(0, 1)]), "global")
        assert len(delivered) == 1

    def test_sssp_respects_edge_outages_end_to_end(self):
        # The whole LOCAL mode (flooding, exploration, helper/ruling sets)
        # computes on the survivor graph, so SSSP under an outage must equal
        # Dijkstra on the graph *minus* the downed edge -- and differ from
        # the intact graph when the edge was load-bearing.
        from repro import WeightedGraph

        graph = generators.random_geometric_like_graph(
            30, neighbourhood=2, rng=RandomSource(3), extra_edge_probability=0.1
        )
        full_truth = reference.single_source_distances(graph, 0)
        outage = survivor = None
        for u, v, _w in sorted(graph.edges()):
            candidate = WeightedGraph(graph.node_count)
            for a, b, w in graph.edges():
                if {a, b} != {u, v}:
                    candidate.add_edge(a, b, w)
            if candidate.is_connected():
                candidate_truth = reference.single_source_distances(candidate, 0)
                if any(
                    abs(candidate_truth[node] - full_truth[node]) > 1e-9
                    for node in candidate_truth
                ):
                    outage, survivor = (u, v), candidate
                    break
        assert outage is not None, "graph should have a load-bearing, removable edge"
        network = HybridNetwork(
            graph,
            ModelConfig(rng_seed=2, faults=FaultModel(edge_outages=[outage])),
        )
        result = sssp_exact(network, source=0)
        truth = reference.single_source_distances(survivor, 0)
        assert all(abs(result.distance(v) - d) <= 1e-9 for v, d in truth.items())
        assert any(abs(result.distance(node) - full_truth[node]) > 1e-9 for node in full_truth)

    def test_outage_graph_tracks_graph_mutations(self):
        graph = generators.cycle_graph(8)
        network = HybridNetwork(
            graph, ModelConfig(rng_seed=1, faults=FaultModel(edge_outages=[(0, 1)]))
        )
        assert network.hop_diameter() == 7
        graph.add_edge(0, 4, 1)  # a chord the outage view must pick up
        assert network.local_graph.has_edge(0, 4)
        assert not network.local_graph.has_edge(0, 1)

    def test_reset_metrics_replays_the_fault_schedule(self):
        network = self.make(drop_rate=0.4, seed=9)
        pairs = [(sender, (sender + 3) % 20) for sender in range(20)]
        first = len(network.global_round(build_batch(pairs), "round"))
        network.reset_metrics()
        assert network._fault_state.round_index == 0
        second = len(network.global_round(build_batch(pairs), "round"))
        assert first == second


class TestReliableExchange:
    def make(self, **faults):
        graph = generators.cycle_graph(24)
        config = ModelConfig(
            rng_seed=2, faults=FaultModel(**faults) if faults else None
        )
        return HybridNetwork(graph, config)

    def test_fault_free_is_plain_exchange(self):
        pairs = [(sender, (sender + 5) % 24) for sender in range(24) for _ in range(2)]
        reliable = self.make()
        r_inbox, r_rounds = reliable.run_reliable_exchange(build_batch(pairs), "phase")
        plain = self.make()
        p_inbox, p_rounds = plain.run_global_exchange(build_batch(pairs), "phase")
        assert r_rounds == p_rounds
        assert metrics_snapshot(reliable) == metrics_snapshot(plain)
        # No ack/retry phases exist on the ideal path.
        assert set(reliable.metrics.phases) == {"phase"}
        assert r_inbox.to_inboxes() == p_inbox.to_inboxes()

    def test_lossy_exchange_delivers_everything_exactly_once(self):
        network = self.make(drop_rate=0.4, seed=6, max_attempts=20)
        pairs = [(sender, (sender + 5) % 24) for sender in range(24) for _ in range(2)]
        inbox, rounds = network.run_reliable_exchange(build_batch(pairs), "phase")
        assert sorted(payload for _, payload in inbox.to_inboxes().get(5, [])) == sorted(
            ("payload", index) for index, (s, t) in enumerate(pairs) if t == 5
        )
        assert len(inbox) == len(pairs)
        assert network.metrics.global_dropped > 0
        assert network.metrics.global_retried > 0
        assert rounds > 0
        # Retry and ack phases are charged under the caller's phase name.
        assert {"phase", "phase:ack", "phase:retry"} <= set(network.metrics.phases)

    def test_budget_exhaustion_raises(self):
        network = self.make(drop_rate=1.0, max_attempts=3)
        with pytest.raises(FaultToleranceExceededError):
            network.run_reliable_exchange(build_batch([(0, 1)]), "doomed")
        # All three attempts were spent (two of them retransmissions).
        assert network.metrics.global_retried == 2

    def test_permanently_crashed_receiver_beats_the_budget(self):
        network = self.make(crash_schedule={3: 0}, max_attempts=4)
        with pytest.raises(FaultToleranceExceededError):
            network.run_reliable_exchange(build_batch([(0, 3)]), "dead-target")

    def test_aggregate_sum_is_exact_under_drops(self):
        # A dropped partial sum is unrecoverable (sums are not idempotent),
        # so the tree convergecast rides the reliable exchange: the returned
        # total must be exact on a lossy network, never silently short.
        from repro.localnet import aggregate_sum

        network = self.make(drop_rate=0.4, seed=0, max_attempts=16)
        total = aggregate_sum(network, {node: 1.0 for node in range(24)})
        assert total == 24.0
        assert network.metrics.global_dropped > 0

    def test_empty_batch_is_free(self):
        network = self.make(drop_rate=0.5)
        inbox, rounds = network.run_reliable_exchange(MessageBatch.empty(), "empty")
        assert len(inbox) == 0 and rounds == 0
        assert network.metrics.global_rounds == 0


def _record_fork_labels(monkeypatch):
    """Record every RandomSource.fork label issued while the patch is live."""
    labels = []
    original = RandomSource.fork

    def forked(self, label):
        labels.append(label)
        return original(self, label)

    monkeypatch.setattr(RandomSource, "fork", forked)
    return labels


class TestFaultFreeBitIdentity:
    """With faults disabled, every entry point is bit-identical to a network
    that never heard of fault injection: same phases, same RNG fork labels,
    same RoundMetrics (the acceptance pin of ISSUE 5)."""

    @pytest.mark.parametrize(
        "faults",
        [None, FaultModel(), FaultModel(drop_rate=0.0, burst_rate=0.0, burst_length=4)],
        ids=["absent", "default", "zero-rates"],
    )
    def test_session_workload_is_bit_identical(self, faults, monkeypatch):
        graph_seed = 17
        baseline_graph = generators.connected_workload(
            36, RandomSource(graph_seed), weighted=False
        )
        labels_baseline = _record_fork_labels(monkeypatch)
        baseline = HybridSession(baseline_graph, ModelConfig(rng_seed=4))
        baseline.apsp()
        baseline.sssp(0)
        baseline.diameter()
        baseline_snapshot = metrics_snapshot(baseline.network)
        baseline_labels = list(labels_baseline)
        labels_baseline.clear()

        graph = generators.connected_workload(
            36, RandomSource(graph_seed), weighted=False
        )
        session = HybridSession(graph, ModelConfig(rng_seed=4), fault_model=faults)
        apsp = session.apsp()
        sssp = session.sssp(0)
        diameter = session.diameter()
        assert metrics_snapshot(session.network) == baseline_snapshot
        assert labels_baseline == baseline_labels
        truth = reference.single_source_distances(graph, 0)
        assert all(abs(sssp.distance(v) - d) <= 1e-9 for v, d in truth.items())
        assert all(abs(apsp.distance(0, v) - d) <= 1e-9 for v, d in truth.items())
        assert diameter.estimate >= graph.hop_diameter() - 1e-9


class TestDifferentialFuzzer:
    """Random graphs x random seeded fault schedules, checked against the
    sequential Dijkstra oracle.  Whenever the retry budget suffices (the run
    completes), the retransmitting pipelines must agree with the reference
    exactly; runs the schedule beats must raise, never return wrong data."""

    SCHEDULES = 200

    @staticmethod
    def build_case(case: int):
        rng = RandomSource(1000 + case)
        n = 20 + 4 * (case % 4)
        if case % 3 == 0:
            graph = generators.connected_workload(
                n, RandomSource(case), weighted=True, max_weight=8
            )
        elif case % 3 == 1:
            graph = generators.connected_workload(n, RandomSource(case), weighted=False)
        else:
            graph = generators.random_geometric_like_graph(
                n, neighbourhood=2, rng=RandomSource(case), extra_edge_probability=0.05
            )
        faults = dict(
            drop_rate=0.05 + 0.3 * rng.random(),
            seed=case,
            max_attempts=12,
        )
        if case % 4 == 0:
            faults.update(
                burst_rate=0.02, burst_length=1 + case % 3, burst_drop_rate=0.9
            )
        if case % 5 == 0:
            faults["omission_schedule"] = {rng.randrange(20): [rng.randrange(n)]}
        return graph, FaultModel(**faults)

    def test_zero_mismatches_over_200_schedules(self):
        completed = 0
        beaten = 0
        mismatches = []
        total_dropped = total_retried = 0
        for case in range(self.SCHEDULES):
            graph, model = self.build_case(case)
            n = graph.node_count
            network = HybridNetwork(graph, ModelConfig(rng_seed=case, faults=model))
            kind = ("sssp", "apsp", "diameter")[case % 3]
            try:
                if kind == "sssp":
                    result = sssp_exact(network, source=case % n)
                    truth = reference.single_source_distances(graph, case % n)
                    ok = all(
                        abs(result.distance(v) - d) <= 1e-9 for v, d in truth.items()
                    )
                elif kind == "apsp":
                    result = apsp_exact(network)
                    truth = reference.single_source_distances(graph, 0)
                    ok = all(
                        abs(result.distance(0, v) - d) <= 1e-9 for v, d in truth.items()
                    )
                else:
                    result = approximate_diameter(network, GatherDiameter())
                    true_diameter = graph.hop_diameter()
                    ok = (
                        true_diameter - 1e-9
                        <= result.estimate
                        <= result.guaranteed_alpha() * true_diameter + 1e-9
                    )
            except FaultToleranceExceededError:
                beaten += 1
                total_dropped += network.metrics.global_dropped
                continue
            finally:
                total_retried += network.metrics.global_retried
            completed += 1
            total_dropped += network.metrics.global_dropped
            if not ok:
                mismatches.append((case, kind))
        assert mismatches == []
        # The budget should suffice for the vast majority of schedules -- a
        # fuzzer that mostly raises would not be testing the results at all.
        assert completed >= self.SCHEDULES * 3 // 4, (completed, beaten)
        # And the schedules must actually have injected faults and forced
        # retransmissions (otherwise the fuzz space is too tame to mean
        # anything): a drop-rate plumbing regression would trip these.
        assert total_dropped > self.SCHEDULES
        assert total_retried > self.SCHEDULES

    def test_fuzzer_exercises_retransmission(self):
        graph, model = self.build_case(1)
        network = HybridNetwork(graph, ModelConfig(rng_seed=1, faults=model))
        sssp_exact(network, source=0)
        assert network.metrics.global_dropped > 0
        assert network.metrics.global_retried > 0
