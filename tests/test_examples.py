"""Smoke tests: every example script runs end to end and reports sane results."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, monkeypatch, argv=None):
    monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    return runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        run_example("quickstart.py", monkeypatch, argv=["60"])
        output = capsys.readouterr().out
        assert "mismatches vs Dijkstra:  0" in output
        assert "[Theorem 1.1] exact APSP" in output

    def test_isp_topology_routing(self, monkeypatch, capsys):
        run_example("isp_topology_routing.py", monkeypatch)
        output = capsys.readouterr().out
        assert "underestimates:            0" in output
        assert "gateways" in output

    def test_datacenter_diameter(self, monkeypatch, capsys):
        run_example("datacenter_diameter.py", monkeypatch)
        output = capsys.readouterr().out
        assert "[Theorem 5.1]" in output
        assert "ratio" in output

    def test_token_routing_demo(self, monkeypatch, capsys):
        run_example("token_routing_demo.py", monkeypatch)
        output = capsys.readouterr().out
        assert "[Theorem 2.2] token routing" in output
        assert "global messages moved" in output

    def test_unreliable_network(self, monkeypatch, capsys):
        run_example("unreliable_network.py", monkeypatch)
        output = capsys.readouterr().out
        assert "[fault injection]" in output
        assert "False" not in output  # every completed run stays exact
        assert "FaultToleranceExceededError" in output

    def test_serving_demo(self, monkeypatch, capsys):
        run_example("serving_demo.py", monkeypatch, argv=["64"])
        output = capsys.readouterr().out
        assert "ok=False" not in output
        assert "batch_size=6" in output  # all six SSSP queries shared one pass
        assert "acme" in output and "globex" in output

    def test_lower_bound_gadgets(self, monkeypatch, capsys):
        run_example("lower_bound_gadgets.py", monkeypatch)
        output = capsys.readouterr().out
        assert "WRONG" not in output
        assert "Figure 1" in output and "Figure 2" in output
