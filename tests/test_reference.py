"""Unit tests for the sequential reference algorithms (repro.graphs.reference)."""

import networkx as nx
import pytest

from repro.graphs import generators, reference
from repro.graphs.graph import INFINITY, WeightedGraph
from repro.util.rand import RandomSource


@pytest.fixture
def graph():
    return generators.connected_workload(30, RandomSource(17), weighted=True, max_weight=9)


class TestDistances:
    def test_single_source_matches_networkx(self, graph):
        ours = reference.single_source_distances(graph, 0)
        theirs = nx.single_source_dijkstra_path_length(graph.to_networkx(), 0)
        assert ours == pytest.approx(theirs)

    def test_all_pairs_symmetry(self, graph):
        all_pairs = reference.all_pairs_distances(graph)
        for u in range(0, 30, 5):
            for v in range(0, 30, 7):
                assert all_pairs[u][v] == pytest.approx(all_pairs[v][u])

    def test_multi_source_subset_of_all_pairs(self, graph):
        sources = [0, 3, 9]
        multi = reference.multi_source_distances(graph, sources)
        full = reference.all_pairs_distances(graph)
        for s in sources:
            assert multi[s] == full[s]

    def test_weighted_diameter_matches_networkx(self, graph):
        ours = reference.weighted_diameter(graph)
        lengths = dict(nx.all_pairs_dijkstra_path_length(graph.to_networkx()))
        theirs = max(max(row.values()) for row in lengths.values())
        assert ours == pytest.approx(theirs)

    def test_hop_diameter_matches_networkx(self, graph):
        assert reference.hop_diameter(graph) == nx.diameter(graph.to_networkx())

    def test_eccentricity_hops(self):
        path = generators.path_graph(7)
        assert reference.eccentricity(path, 0) == 6
        assert reference.eccentricity(path, 3) == 3

    def test_eccentricity_disconnected(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 1)
        assert reference.eccentricity(graph, 0) == INFINITY

    def test_shortest_path_diameter_path_graph(self):
        path = generators.path_graph(6)
        assert reference.shortest_path_diameter(path) == 5

    def test_shortest_path_diameter_heavy_shortcut(self):
        # Shortcut edge is heavy, so shortest paths use many hops.
        graph = generators.path_graph(5)
        graph.add_edge(0, 4, 100)
        assert reference.shortest_path_diameter(graph) == 4


class TestComparisonHelpers:
    def test_distances_as_matrix(self, graph):
        all_pairs = reference.all_pairs_distances(graph)
        matrix = reference.distances_as_matrix(graph, all_pairs)
        assert matrix[0][0] == 0.0
        assert matrix[0][5] == pytest.approx(all_pairs[0][5])

    def test_max_absolute_error(self):
        error = reference.max_absolute_error({1: 5.0, 2: 3.0}, {1: 5.5, 2: 3.0})
        assert error == pytest.approx(0.5)

    def test_max_absolute_error_infinite_mismatch(self):
        assert reference.max_absolute_error({1: 5.0}, {}) == INFINITY

    def test_max_stretch(self):
        assert reference.max_stretch({1: 2.0, 2: 4.0}, {1: 3.0, 2: 4.0}) == pytest.approx(1.5)

    def test_has_one_sided_error_accepts_overestimates(self):
        assert reference.has_one_sided_error({1: 2.0}, {1: 2.5})

    def test_has_one_sided_error_rejects_underestimates(self):
        assert not reference.has_one_sided_error({1: 2.0}, {1: 1.0})
