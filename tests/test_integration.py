"""Cross-module integration tests: whole pipelines on one shared network.

These tests exercise realistic end-to-end flows (several algorithms run on the
same graph, results cross-checked against each other and against the oracle),
which is how a downstream user would actually drive the library.
"""

import pytest

from repro import (
    EccentricityDiameter,
    GatherDiameter,
    GatherShortestPaths,
    HybridNetwork,
    ModelConfig,
    approximate_diameter,
    apsp_exact,
    make_tokens,
    route_tokens,
    shortest_paths_via_clique,
    sssp_exact,
)
from repro.baselines import apsp_broadcast_baseline, local_only_shortest_paths
from repro.graphs import generators, reference
from repro.util.rand import RandomSource


@pytest.fixture(scope="module")
def isp_graph():
    return generators.clustered_isp_graph(6, 10, RandomSource(61))


@pytest.fixture(scope="module")
def ring_graph():
    return generators.random_geometric_like_graph(
        56, neighbourhood=2, rng=RandomSource(62), extra_edge_probability=0.0
    )


class TestEndToEndPipelines:
    def test_apsp_and_baseline_agree(self, isp_graph):
        new = apsp_exact(HybridNetwork(isp_graph, ModelConfig(rng_seed=1, skeleton_xi=1.0)))
        baseline = apsp_broadcast_baseline(
            HybridNetwork(isp_graph, ModelConfig(rng_seed=2, skeleton_xi=1.0))
        )
        for u in range(0, isp_graph.node_count, 7):
            for v in range(0, isp_graph.node_count, 5):
                assert new.distance(u, v) == pytest.approx(baseline.distance(u, v))

    def test_sssp_row_matches_apsp_row(self, isp_graph):
        apsp = apsp_exact(HybridNetwork(isp_graph, ModelConfig(rng_seed=3, skeleton_xi=1.0)))
        sssp = sssp_exact(HybridNetwork(isp_graph, ModelConfig(rng_seed=4, skeleton_xi=1.0)), 0)
        for v in range(isp_graph.node_count):
            assert sssp.distance(v) == pytest.approx(apsp.distance(0, v))

    def test_kssp_upper_bounds_apsp(self, isp_graph):
        sources = [0, 10, 20, 30]
        apsp = apsp_exact(HybridNetwork(isp_graph, ModelConfig(rng_seed=5, skeleton_xi=1.0)))
        kssp = shortest_paths_via_clique(
            HybridNetwork(isp_graph, ModelConfig(rng_seed=6, skeleton_xi=1.0)),
            sources,
            GatherShortestPaths(),
        )
        for s in sources:
            for v in range(isp_graph.node_count):
                assert kssp.estimate(v, s) >= apsp.distance(v, s) - 1e-9

    def test_diameter_estimates_upper_bound_true_diameter(self, ring_graph):
        true_diameter = ring_graph.hop_diameter()
        for plugin in (GatherDiameter(), EccentricityDiameter()):
            result = approximate_diameter(
                HybridNetwork(ring_graph, ModelConfig(rng_seed=7, skeleton_xi=1.0)), plugin
            )
            assert result.estimate >= true_diameter

    def test_local_only_and_hybrid_agree_on_distances(self, ring_graph):
        sources = [0, 5]
        hybrid = shortest_paths_via_clique(
            HybridNetwork(ring_graph, ModelConfig(rng_seed=8, skeleton_xi=1.0)),
            sources,
            GatherShortestPaths(),
        )
        local = local_only_shortest_paths(
            HybridNetwork(ring_graph, ModelConfig(rng_seed=9)), sources
        )
        truth = reference.multi_source_distances(ring_graph, sources)
        for s in sources:
            for v in range(ring_graph.node_count):
                assert local.distances[v][s] == pytest.approx(truth[s][v])
                assert hybrid.estimate(v, s) >= truth[s][v] - 1e-9

    def test_multiple_algorithms_on_one_network_accumulate_rounds(self, isp_graph):
        network = HybridNetwork(isp_graph, ModelConfig(rng_seed=10, skeleton_xi=1.0))
        tokens = make_tokens({0: [(5, "a"), (9, "b")], 3: [(7, "c")]})
        routing = route_tokens(network, tokens)
        rounds_after_routing = network.metrics.total_rounds
        sssp = sssp_exact(network, source=2)
        assert rounds_after_routing == routing.rounds
        assert network.metrics.total_rounds == routing.rounds + sssp.rounds

    def test_metrics_phase_breakdown_covers_total(self, isp_graph):
        network = HybridNetwork(isp_graph, ModelConfig(rng_seed=11, skeleton_xi=1.0))
        apsp_exact(network)
        phase_total = sum(b.total_rounds for b in network.metrics.phases.values())
        assert phase_total == network.metrics.total_rounds

    def test_weighted_and_unweighted_variants(self):
        rng = RandomSource(63)
        base = generators.connected_workload(36, rng, weighted=False)
        weighted = generators.assign_random_weights(base, 7, rng)
        for graph in (base, weighted):
            result = apsp_exact(HybridNetwork(graph, ModelConfig(rng_seed=12, skeleton_xi=1.0)))
            truth = reference.all_pairs_distances(graph)
            for u in range(0, 36, 6):
                for v, d in truth[u].items():
                    assert result.distance(u, v) == pytest.approx(d)
