"""Tests for the HybridSession serving layer and the SkeletonContext plumbing.

Covers the three guarantees the session API makes:

* the cold path of every refactored entry point is bit-identical to running
  the prologue inline (same results, same ``RoundMetrics``),
* a warm session reuses the prepared skeleton context across query kinds
  (no second ``compute_skeleton``) and warm answers equal cold answers, and
* any graph mutation invalidates the whole preprocessing cache.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.context as context_module
from repro import (
    HybridNetwork,
    HybridSession,
    ModelConfig,
    approximate_diameter,
    apsp_exact,
    make_tokens,
    prepare_skeleton_context,
    route_tokens,
    shortest_paths_via_clique,
)
from repro.baselines import apsp_broadcast_baseline
from repro.clique import GatherDiameter, GatherShortestPaths
from repro.graphs import generators, reference
from repro.graphs.graph import WeightedGraph
from repro.hybrid.metrics import RoundMetrics
from repro.util.rand import RandomSource

PROPERTY_SETTINGS = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def make_graph(seed, n=48, weighted=True):
    return generators.connected_workload(
        n, RandomSource(seed), weighted=weighted, max_weight=7
    )


def locality_graph(seed, n=60):
    return generators.random_geometric_like_graph(
        n, neighbourhood=2, rng=RandomSource(seed), extra_edge_probability=0.01
    )


def fresh_pair(graph, seed):
    """Two identical networks for a with/without-context comparison."""
    return (
        HybridNetwork(graph, ModelConfig(rng_seed=seed)),
        HybridNetwork(graph, ModelConfig(rng_seed=seed)),
    )


class CountingSkeletons:
    """Monkeypatch helper counting compute_skeleton invocations."""

    def __init__(self, monkeypatch):
        self.calls = 0
        original = context_module.compute_skeleton

        def wrapper(*args, **kwargs):
            self.calls += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(context_module, "compute_skeleton", wrapper)


class TestColdPathBitIdentity:
    """context=None and an identically-phased prepared context are one path."""

    def test_apsp_cold_equals_prepared_context(self):
        graph = make_graph(11)
        plain, prepared = fresh_pair(graph, seed=11)
        import math

        result_plain = apsp_exact(plain)
        context = prepare_skeleton_context(
            prepared,
            min(1.0, 1.0 / math.sqrt(graph.node_count)),
            phase="apsp:skeleton",
            keep_local_knowledge=True,
        )
        skeleton_rounds = context.preparation_rounds
        result_prepared = apsp_exact(prepared, context=context)
        assert (result_plain.matrix == result_prepared.matrix).all()
        # A pre-built context reports the amortized (query-only) rounds; the
        # externally-paid skeleton plus the query equals the inline cold
        # total, and the network-level metrics agree bit for bit.
        assert result_prepared.rounds + skeleton_rounds == result_plain.rounds
        assert plain.metrics == prepared.metrics

    def test_kssp_cold_equals_prepared_context(self):
        from repro.core.skeleton import framework_sampling_probability

        graph = make_graph(12)
        plain, prepared = fresh_pair(graph, seed=12)
        algorithm = GatherShortestPaths()
        sources = [0, 5, 20]
        result_plain = shortest_paths_via_clique(plain, sources, algorithm)
        context = prepare_skeleton_context(
            prepared,
            framework_sampling_probability(graph.node_count, algorithm.spec.delta),
            phase="kssp:skeleton",
            keep_local_knowledge=True,
        )
        skeleton_rounds = context.preparation_rounds
        result_prepared = shortest_paths_via_clique(
            prepared, sources, GatherShortestPaths(), context=context
        )
        assert result_plain.estimates == result_prepared.estimates
        assert result_prepared.rounds + skeleton_rounds == result_plain.rounds
        assert result_plain.clique_rounds == result_prepared.clique_rounds
        assert plain.metrics == prepared.metrics

    def test_diameter_cold_equals_prepared_context(self):
        from repro.core.skeleton import framework_sampling_probability

        graph = locality_graph(13)
        plain, prepared = fresh_pair(graph, seed=13)
        algorithm = GatherDiameter()
        result_plain = approximate_diameter(plain, algorithm)
        context = prepare_skeleton_context(
            prepared,
            framework_sampling_probability(graph.node_count, algorithm.spec.delta),
            phase="diameter:skeleton",
            keep_local_knowledge=False,
        )
        skeleton_rounds = context.preparation_rounds
        result_prepared = approximate_diameter(prepared, GatherDiameter(), context=context)
        assert result_plain.estimate == result_prepared.estimate
        assert result_prepared.rounds + skeleton_rounds == result_plain.rounds
        assert plain.metrics == prepared.metrics

    def test_baseline_cold_equals_prepared_context(self):
        graph = make_graph(14, n=40)
        plain, prepared = fresh_pair(graph, seed=14)
        result_plain = apsp_broadcast_baseline(plain)
        context = prepare_skeleton_context(
            prepared,
            min(1.0, graph.node_count ** (-2.0 / 3.0)),
            phase="apsp-baseline:skeleton",
            keep_local_knowledge=True,
        )
        result_prepared = apsp_broadcast_baseline(prepared, context=context)
        assert (result_plain.matrix == result_prepared.matrix).all()
        assert plain.metrics == prepared.metrics


class TestSessionReuse:
    def test_warm_queries_reuse_the_skeleton(self, monkeypatch):
        """Acceptance: sssp/diameter after apsp build no second skeleton."""
        counter = CountingSkeletons(monkeypatch)
        graph = locality_graph(21)
        session = HybridSession(graph, ModelConfig(rng_seed=21))
        session.apsp()
        assert counter.calls == 1
        session.sssp(0)
        session.diameter()
        session.shortest_paths([3, 9])
        session.apsp()
        assert counter.calls == 1

    def test_warm_apsp_charges_no_new_preparation(self):
        graph = locality_graph(22)
        session = HybridSession(graph, ModelConfig(rng_seed=22))
        session.apsp()
        first = session.last_query
        assert first.preparation_rounds > 0
        session.apsp()
        second = session.last_query
        assert second.preparation_rounds == 0
        assert second.amortized_rounds < second.cold_rounds
        assert second.amortized_rounds == first.amortized_rounds

    def test_results_independent_of_query_order(self):
        graph = locality_graph(23)
        forward = HybridSession(graph, ModelConfig(rng_seed=23))
        apsp_a = forward.apsp()
        sssp_a = forward.sssp(4)
        diameter_a = forward.diameter()

        backward = HybridSession(graph, ModelConfig(rng_seed=23))
        diameter_b = backward.diameter()
        sssp_b = backward.sssp(4)
        apsp_b = backward.apsp()

        assert (apsp_a.matrix == apsp_b.matrix).all()
        assert sssp_a.distances == sssp_b.distances
        assert diameter_a.estimate == diameter_b.estimate
        assert diameter_a.used_local_estimate == diameter_b.used_local_estimate

    def test_session_answers_match_one_shot_functions(self):
        graph = locality_graph(24)
        n = graph.node_count
        session = HybridSession(graph, ModelConfig(rng_seed=24))
        apsp = session.apsp()
        sssp = session.sssp(7)
        diameter = session.diameter()

        truth = reference.all_pairs_distances(graph)
        for u in range(n):
            for v, d in truth[u].items():
                assert apsp.distance(u, v) == pytest.approx(d)
        for v, d in reference.single_source_distances(graph, 7).items():
            assert sssp.distance(v) == pytest.approx(d)
        assert diameter.estimate >= graph.hop_diameter() - 1e-9

    def test_route_tokens_reuses_router(self):
        graph = make_graph(25)
        session = HybridSession(graph, ModelConfig(rng_seed=25))
        rng = RandomSource(7)
        assignments = {
            s: [(rng.randrange(graph.node_count), ("p", s, i)) for i in range(4)]
            for s in range(0, graph.node_count, 5)
        }
        first = session.route_tokens(make_tokens(assignments))
        assert session.last_query.preparation_rounds > 0
        second = session.route_tokens(make_tokens(assignments))
        assert session.last_query.preparation_rounds == 0
        assert first.rounds == second.rounds

        def payloads(result):
            return {
                receiver: sorted(token.payload for token in tokens)
                for receiver, tokens in result.delivered.items()
            }

        assert payloads(first) == payloads(second)

    def test_route_tokens_rounds_independent_of_workload_order(self):
        """Router phases are key-derived, so arrival order cannot change them."""
        graph = make_graph(30)
        workload_x = make_tokens({0: [(9, ("x", i)) for i in range(3)]})
        workload_y = make_tokens({5: [(14, ("y", i)) for i in range(2)]})

        forward = HybridSession(graph, ModelConfig(rng_seed=30))
        forward.route_tokens(workload_x)
        y_after_x = forward.route_tokens(workload_y)
        backward = HybridSession(graph, ModelConfig(rng_seed=30))
        y_first = backward.route_tokens(workload_y)
        assert y_after_x.rounds == y_first.rounds
        assert forward.last_query.cold_rounds == backward.queries[0].cold_rounds

    def test_route_tokens_deliveries_match_one_shot(self):
        graph = make_graph(26)
        session = HybridSession(graph, ModelConfig(rng_seed=26))
        rng = RandomSource(9)
        tokens = make_tokens(
            {
                s: [(rng.randrange(graph.node_count), ("q", s, i)) for i in range(3)]
                for s in [0, 8, 16]
            }
        )
        warm = session.route_tokens(tokens)
        cold_network = HybridNetwork(graph, ModelConfig(rng_seed=26))
        cold = route_tokens(cold_network, tokens)
        as_sets = lambda result: {
            receiver: {token.label for token in tokens_}
            for receiver, tokens_ in result.delivered.items()
        }
        assert as_sets(warm) == as_sets(cold)

    def test_cold_equivalent_accounting_is_order_independent(self):
        """cold_rounds charges only the pieces the query kind consumes.

        A warm SSSP after an APSP must report the same cold-equivalent as an
        SSSP asked first on a fresh session -- the APSP edge publication and
        token router are not part of what a cold SSSP would have paid.
        """
        graph = locality_graph(28)
        warmed = HybridSession(graph, ModelConfig(rng_seed=28))
        warmed.apsp()
        warmed.sssp(4)
        warm_record = warmed.last_query

        fresh = HybridSession(graph, ModelConfig(rng_seed=28))
        fresh.sssp(4)
        fresh_record = fresh.last_query

        assert warm_record.amortized_rounds == fresh_record.amortized_rounds
        assert warm_record.cold_rounds == fresh_record.cold_rounds

    def test_per_query_metrics_partition_the_network_totals(self):
        graph = locality_graph(27)
        session = HybridSession(graph, ModelConfig(rng_seed=27))
        session.apsp()
        session.sssp(3)
        session.diameter()
        query_rounds = sum(record.amortized_rounds for record in session.queries)
        assert query_rounds + session.preprocessing_rounds == session.metrics.total_rounds
        query_messages = sum(record.metrics.global_messages for record in session.queries)
        assert (
            query_messages + session.preprocessing.global_messages
            == session.metrics.global_messages
        )


class TestSessionValidation:
    def test_invalid_source_rejected_before_any_charge(self):
        graph = locality_graph(29)
        session = HybridSession(graph, ModelConfig(rng_seed=29))
        session.apsp()
        for bad in (-1, graph.node_count):
            with pytest.raises(ValueError):
                session.sssp(bad)
            with pytest.raises(ValueError):
                session.shortest_paths([0, bad])
        # The rejected queries left no trace: the accounting invariant holds
        # and the extension cache carries no poisoned entries.
        session.sssp(0)
        query_rounds = sum(record.amortized_rounds for record in session.queries)
        assert query_rounds + session.preprocessing_rounds == session.metrics.total_rounds

    def test_repeat_flag_validated_by_query_command(self, capsys):
        from repro.cli import main

        assert main(["query", "--n", "48", "--repeat", "0"]) == 2


class TestSessionInvalidation:
    def test_mutation_invalidates_contexts(self, monkeypatch):
        # The cold-rebuild pin: repair is switched off so a mutation must
        # re-run the skeleton computation (TestDeltaRepair covers the warm
        # path).
        counter = CountingSkeletons(monkeypatch)
        graph = locality_graph(31)
        session = HybridSession(graph, ModelConfig(rng_seed=31), enable_repair=False)
        session.apsp()
        assert counter.calls == 1
        session.add_edge(0, graph.node_count // 2, 1)
        result = session.apsp()
        assert counter.calls == 2
        assert session.last_query.preparation_rounds > 0
        truth = reference.all_pairs_distances(graph)
        for u in range(graph.node_count):
            for v, d in truth[u].items():
                assert result.distance(u, v) == pytest.approx(d)

    def test_explicit_invalidate_forces_cold_restart(self, monkeypatch):
        counter = CountingSkeletons(monkeypatch)
        graph = locality_graph(32)
        session = HybridSession(graph, ModelConfig(rng_seed=32))
        session.sssp(1)
        session.invalidate()
        session.sssp(1)
        assert counter.calls == 2

    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=50),
        source=st.integers(min_value=0, max_value=23),
        remove=st.booleans(),
    )
    def test_warm_and_post_mutation_results_stay_exact(self, seed, source, remove):
        """Property: after any warm-up and any mutation, answers match the oracle."""
        graph = generators.connected_workload(24, RandomSource(seed), weighted=True, max_weight=5)
        session = HybridSession(graph, ModelConfig(rng_seed=seed))
        warm_before = session.sssp(source)
        for v, d in reference.single_source_distances(graph, source).items():
            assert warm_before.distance(v) == pytest.approx(d)

        rng = RandomSource(seed + 1)
        if remove:
            # Remove one non-bridge edge (keep the graph connected) if any.
            for u, v, w in list(graph.edges()):
                graph.remove_edge(u, v)
                if graph.is_connected():
                    break
                # Put the bridge back and try the next edge.
                graph.add_edge(u, v, w)
        else:
            u = rng.randrange(24)
            v = (u + 1 + rng.randrange(22)) % 24
            if not graph.has_edge(u, v) and u != v:
                graph.add_edge(u, v, 1 + rng.randrange(5))

        warm_after = session.sssp(source)
        for v, d in reference.single_source_distances(graph, source).items():
            assert warm_after.distance(v) == pytest.approx(d)
        # The cache was rebuilt against the mutated graph.
        assert session._graph_version == graph.version

    @PROPERTY_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_mutation_drops_every_cached_context(self, seed):
        graph = generators.connected_workload(20, RandomSource(seed), weighted=False)
        session = HybridSession(graph, ModelConfig(rng_seed=seed))
        session.apsp()
        session.diameter()
        assert session._contexts
        session.add_edge(0, 10, 1) if not graph.has_edge(0, 10) else session.remove_edge(0, 10)
        session.diameter()
        # Only the state rebuilt after the mutation survives.
        assert all(
            context.graph_version == graph.version for context in session._contexts.values()
        )
        assert session._graph_version == graph.version


class TestScopedMetrics:
    def test_scope_sees_only_charges_within_it(self):
        metrics = RoundMetrics()
        metrics.charge_local(5, "before")
        with metrics.scoped() as scope:
            metrics.charge_local(3, "inside")
            metrics.charge_global(2, "inside")
            metrics.record_global_traffic(messages=10, bits=640, max_sent=4, max_received=6)
        metrics.charge_local(7, "after")
        assert scope.total_rounds == 5
        assert scope.local_rounds == 3 and scope.global_rounds == 2
        assert scope.global_messages == 10
        assert scope.max_sent_per_round == 4 and scope.max_received_per_round == 6
        assert set(scope.phases) == {"inside"}
        assert metrics.total_rounds == 17

    def test_scopes_nest_and_equal_scopes_unwind_correctly(self):
        metrics = RoundMetrics()
        with metrics.scoped() as outer:
            with metrics.scoped() as inner:
                metrics.charge_global(1, "x")
            # outer and inner saw identical charges (compare equal) -- the
            # inner exit must still have removed the *inner* scope only.
            metrics.charge_local(2, "y")
        assert inner.total_rounds == 1
        assert outer.total_rounds == 3
        assert metrics._scopes == []

    def test_scope_max_counters_are_per_scope(self):
        metrics = RoundMetrics()
        metrics.record_global_traffic(messages=1, bits=64, max_sent=100, max_received=100)
        with metrics.scoped() as scope:
            metrics.record_global_traffic(messages=1, bits=64, max_sent=2, max_received=3)
        assert scope.max_sent_per_round == 2
        assert scope.max_received_per_round == 3
        assert metrics.max_sent_per_round == 100

    def test_scope_observes_merge(self):
        metrics = RoundMetrics()
        other = RoundMetrics()
        other.charge_local(4, "nested")
        with metrics.scoped() as scope:
            metrics.merge(other)
        assert scope.total_rounds == 4
        assert scope.phases["nested"].local_rounds == 4


class TestNetworkDiameterCache:
    def test_hop_diameter_cache_tracks_graph_version(self):
        graph = WeightedGraph(4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        network = HybridNetwork(graph, ModelConfig(rng_seed=1))
        assert network.hop_diameter() == 3
        graph.add_edge(0, 3)
        assert network.hop_diameter() == 2


def repairable_edge(session):
    """The heaviest edge away from the warm skeleton (repair-friendly)."""
    skeleton_nodes = set(session.context().skeleton.nodes)
    return max(
        (
            (u, v, w)
            for u, v, w in session.graph.edges()
            if u not in skeleton_nodes and v not in skeleton_nodes
        ),
        key=lambda edge: (edge[2], edge[0], edge[1]),
    )


class TestDeltaRepair:
    """Delta repair of warm contexts over evolving graphs (DESIGN.md §12)."""

    def test_weight_update_repairs_without_recomputing_skeleton(self, monkeypatch):
        counter = CountingSkeletons(monkeypatch)
        graph = make_graph(33)
        session = HybridSession(graph, ModelConfig(rng_seed=33))
        session.apsp()
        assert counter.calls == 1
        u, v, weight = repairable_edge(session)
        session.update_weight(u, v, weight + 3)
        result = session.apsp()
        assert counter.calls == 1  # repaired in place, never re-sampled
        assert [record.action for record in session.repairs] == ["repaired"]
        assert session.repairs[0].rounds > 0
        truth = reference.all_pairs_distances(graph)
        for a in range(graph.node_count):
            for b, d in truth[a].items():
                assert result.distance(a, b) == pytest.approx(d)

    def test_repaired_context_bit_identical_to_cold_rebuild(self):
        warm = HybridSession(make_graph(34), ModelConfig(rng_seed=34))
        warm.apsp()
        u, v, weight = repairable_edge(warm)
        warm.update_weight(u, v, weight + 3)
        warm_result = warm.apsp()
        assert [record.action for record in warm.repairs] == ["repaired"]

        cold_graph = make_graph(34)
        cold_graph.update_weight(u, v, weight + 3)
        cold = HybridSession(cold_graph, ModelConfig(rng_seed=34))
        cold_result = cold.apsp()

        warm_context = warm.context()
        cold_context = cold.context()
        assert warm_context.label == cold_context.label
        assert warm_context.skeleton.nodes == cold_context.skeleton.nodes
        assert (
            warm_context.skeleton.knowledge_matrix
            == cold_context.skeleton.knowledge_matrix
        ).all()
        assert sorted(warm_context.skeleton.graph.edges()) == sorted(
            cold_context.skeleton.graph.edges()
        )
        assert (warm_result.matrix == cold_result.matrix).all()

    def test_weight_only_delta_keeps_routers_topology_drops_them(self):
        session = HybridSession(make_graph(35), ModelConfig(rng_seed=35))
        tokens = make_tokens({0: [(1, ("p", 0))], 2: [(3, ("p", 2))]})
        session.route_tokens(tokens)
        assert session._routers
        u, v, weight = repairable_edge(session)
        session.update_weight(u, v, weight + 2)
        session.context()
        assert session._routers  # weight-only: routing plans survive
        session.remove_edge(u, v)
        session.context()
        assert not session._routers  # topology: plans are rebuilt lazily

    def test_enable_repair_false_always_rebuilds(self, monkeypatch):
        counter = CountingSkeletons(monkeypatch)
        session = HybridSession(
            make_graph(36), ModelConfig(rng_seed=36), enable_repair=False
        )
        session.apsp()
        u, v, weight = repairable_edge(session)
        session.update_weight(u, v, weight + 3)
        session.apsp()
        assert counter.calls == 2
        assert session.repairs == []

    def test_repair_threshold_validated(self):
        with pytest.raises(ValueError):
            HybridSession(make_graph(37), ModelConfig(rng_seed=37), repair_threshold=1.5)

    def test_extended_raises_on_stale_context(self):
        from repro.hybrid import StaleContextError

        session = HybridSession(make_graph(38), ModelConfig(rng_seed=38))
        context = session.context()
        session.graph.add_edge(*next(
            (u, v)
            for u in range(session.graph.node_count)
            for v in range(u + 1, session.graph.node_count)
            if not session.graph.has_edge(u, v)
        ), 2)
        with pytest.raises(StaleContextError):
            context.extended([0])

    def test_context_cache_hit_rechecks_staleness(self):
        # Mutate the graph directly (outside the session's own mutators):
        # the next context() call must still notice and resolve staleness.
        session = HybridSession(make_graph(39), ModelConfig(rng_seed=39))
        session.apsp()
        u, v, weight = repairable_edge(session)
        session.graph.update_weight(u, v, weight + 3)
        context = session.context()
        assert context.is_current()
        assert session._graph_version == session.graph.version

    def test_out_of_band_stale_entry_rebuilds_instead_of_spinning(self):
        session = HybridSession(make_graph(40), ModelConfig(rng_seed=40))
        stale = session.context()
        object.__setattr__(stale, "graph_version", stale.graph_version - 1)
        refreshed = session.context()
        assert refreshed is not stale
        assert refreshed.is_current()

    def test_repair_rounds_keep_session_accounting_invariant(self):
        session = HybridSession(make_graph(41), ModelConfig(rng_seed=41))
        session.apsp()
        u, v, weight = repairable_edge(session)
        session.update_weight(u, v, weight + 3)
        session.apsp()
        amortized = sum(record.amortized_rounds for record in session.queries)
        assert (
            amortized + session.preprocessing_rounds
            == session.network.metrics.total_rounds
        )

    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=40),
        kind=st.sampled_from(["update", "add", "remove"]),
        pick=st.integers(min_value=0, max_value=10_000),
    )
    def test_any_single_mutation_repaired_or_rebuilt_identical_to_cold(
        self, seed, kind, pick
    ):
        """Property: after one random mutation, the warm session's answers and
        context state are bit-identical to a cold session on the mutated
        graph -- whether the delta was repaired or refused (DESIGN.md §12)."""
        graph = generators.connected_workload(
            24, RandomSource(seed), weighted=True, max_weight=6
        )
        warm = HybridSession(graph, ModelConfig(rng_seed=seed))
        warm.apsp()

        edges = sorted((u, v, w) for u, v, w in graph.edges())
        if kind == "update":
            u, v, weight = edges[pick % len(edges)]
            mutation = ("update", u, v, 1 + (weight + 1 + pick) % 6)
        elif kind == "add":
            missing = sorted(
                (u, v)
                for u in range(24)
                for v in range(u + 1, 24)
                if not graph.has_edge(u, v)
            )
            u, v = missing[pick % len(missing)]
            mutation = ("add", u, v, 1 + pick % 6)
        else:
            for u, v, w in edges[pick % len(edges):] + edges[: pick % len(edges)]:
                graph.remove_edge(u, v)
                if graph.is_connected():
                    break
                graph.add_edge(u, v, w)
            else:
                return  # every edge is a bridge; nothing to remove
            mutation = None

        if mutation is not None:
            action, u, v, weight = mutation
            if action == "update":
                warm.update_weight(u, v, weight)
            else:
                warm.add_edge(u, v, weight)
        warm_result = warm.apsp()

        cold_graph = WeightedGraph(24)
        for u, v, w in graph.edges():
            cold_graph.add_edge(u, v, w)
        cold = HybridSession(cold_graph, ModelConfig(rng_seed=seed))
        cold_result = cold.apsp()

        assert (warm_result.matrix == cold_result.matrix).all()
        warm_context, cold_context = warm.context(), cold.context()
        assert warm_context.skeleton.nodes == cold_context.skeleton.nodes
        assert (
            warm_context.skeleton.knowledge_matrix
            == cold_context.skeleton.knowledge_matrix
        ).all()
        assert sorted(warm_context.skeleton.graph.edges()) == sorted(
            cold_context.skeleton.graph.edges()
        )


@pytest.mark.slow
class TestE17Smoke:
    def test_repair_beats_rebuild_and_stays_identical(self):
        from repro.experiments import run_experiment

        table = run_experiment("E17", scale="small")
        index = {header: position for position, header in enumerate(table.headers)}
        rows = {row[index["family"]]: row for row in table.rows}
        assert set(rows) == {"random", "locality"}
        # Answers never depend on the repair-vs-rebuild decision...
        assert all(row[index["identical"]] for row in table.rows)
        # ...and on the repair-friendly family the warm session both repairs
        # and strictly beats the cold-rebuild baseline on amortized rounds.
        random_row = rows["random"]
        assert random_row[index["repaired"]] > 0
        assert (
            random_row[index["repair tail rounds"]]
            < random_row[index["rebuild tail rounds"]]
        )
