"""Tests for the experiment registry and the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import SCALES, available_experiments, run_experiment
from repro.experiments.runner import ExperimentTable, register


class TestRegistry:
    def test_all_experiments_registered(self):
        assert available_experiments() == [
            "E1",
            "E2",
            "E3",
            "E4",
            "E5",
            "E6",
            "E7",
            "E8",
            "E9",
            "E10",
            "E11",
            "E12",
            "E13",
            "E14",
            "E15",
            "E16",
            "E17",
        ]

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("E1", scale="huge")

    def test_scales_constant_is_the_single_source_of_truth(self):
        assert SCALES == ("small", "medium", "large")
        parser = build_parser()
        assert parser.parse_args(["run", "E1", "--scale", "large"]).scale == "large"
        assert parser.parse_args(["run-all", "--scale", "large"]).scale == "large"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("E1")(lambda scale: None)

    def test_case_insensitive_lookup(self):
        table = run_experiment("e12", scale="small")
        assert table.experiment_id == "E12"


class TestExperimentTables:
    def test_table_markdown_contains_header_and_rows(self):
        table = ExperimentTable("EX", "demo", ["a", "b"], [[1, 2], [3, 4]], notes=["note"])
        markdown = table.to_markdown()
        assert "### EX — demo" in markdown
        assert "| a | b |" in markdown
        assert "| 3 | 4 |" in markdown
        assert "- note" in markdown

    @pytest.mark.parametrize("experiment_id", ["E1", "E9", "E10", "E12", "E13", "E14", "E15"])
    def test_small_scale_experiments_run(self, experiment_id):
        table = run_experiment(experiment_id, scale="small")
        assert table.experiment_id == experiment_id
        assert table.rows
        assert len(table.headers) == len(table.rows[0])

    def test_lower_bound_experiments_verify_lemmas(self):
        table = run_experiment("E7", scale="small")
        # columns: ..., classification correct, partition ok, ...
        correct_column = table.headers.index("classification correct")
        partition_column = table.headers.index("Lemma 7.3 partition ok")
        assert all(row[correct_column] for row in table.rows)
        assert all(row[partition_column] for row in table.rows)

    def test_skeleton_experiment_reports_preservation(self):
        table = run_experiment("E9", scale="small")
        preserving = table.headers.index("distance preserving")
        assert all(row[preserving] for row in table.rows)

    def test_scenario_families_stay_exact(self):
        table = run_experiment("E13", scale="small")
        exact = table.headers.index("exact")
        scenarios = {row[0] for row in table.rows}
        assert {"power-law", "grid+highways", "hierarchical-isp"} <= scenarios
        assert all(row[exact] for row in table.rows)

    def test_robustness_sweep_stays_exact_and_pins_fault_free_rows(self):
        table = run_experiment("E15", scale="small")
        exact = table.headers.index("exact")
        delivered = table.headers.index("delivered")
        rate = table.headers.index("drop rate")
        overhead = table.headers.index("overhead")
        dropped = table.headers.index("dropped")
        assert all(row[exact] and row[delivered] for row in table.rows)
        # drop_rate=0 rows are the pinned fault-free identity: overhead
        # exactly 1 and not a single message dropped.
        zero_rows = [row for row in table.rows if row[rate] == 0.0]
        assert zero_rows
        assert all(row[overhead] == 1.0 and row[dropped] == 0 for row in zero_rows)
        # Lossy rows really injected faults.
        lossy = [row for row in table.rows if row[rate] > 0.0]
        assert lossy and all(row[dropped] > 0 for row in lossy)

    def test_session_amortization_agrees_and_amortizes(self):
        table = run_experiment("E14", scale="small")
        agree = table.headers.index("answers agree")
        assert all(row[agree] for row in table.rows)
        amortized = table.headers.index("amortized rounds")
        cold = table.headers.index("cold-equivalent rounds")
        totals = [row for row in table.rows if row[0] == "TOTAL"]
        assert totals and totals[0][amortized] < totals[0][cold]


class TestCLI:
    def test_parser_covers_every_command(self):
        parser = build_parser()
        assert parser.parse_args(["list"]).command == "list"
        assert parser.parse_args(["run", "E1"]).experiment == "E1"
        assert parser.parse_args(["run-all", "--scale", "small"]).scale == "small"
        query_args = parser.parse_args(["query", "--n", "64", "--seed", "2", "--repeat", "1"])
        assert (query_args.command, query_args.n, query_args.repeat) == ("query", 64, 1)
        assert query_args.mutate == 0
        assert parser.parse_args(["query", "--mutate", "2"]).mutate == 2
        sweep_args = parser.parse_args(
            ["sweep", "--jobs", "4", "--resume", "--only", "E3,E14", "--scale", "medium"]
        )
        assert (sweep_args.command, sweep_args.jobs, sweep_args.resume) == ("sweep", 4, True)
        assert sweep_args.only == "E3,E14"
        regress_args = parser.parse_args(
            ["regress", "--baseline", "benchmarks/BENCH_baseline.json", "--wall-tolerance", "0.5"]
        )
        assert (regress_args.command, regress_args.wall_tolerance) == ("regress", 0.5)
        assert regress_args.current == "BENCH_core.json"

    def test_sweep_command_runs_resumes_and_writes_report(self, tmp_path, capsys):
        store = tmp_path / "artifacts"
        output = tmp_path / "report.md"
        argv = [
            "sweep", "--only", "E6", "--scale", "small", "--jobs", "1",
            "--artifacts", str(store), "--output", str(output),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 shard(s)" in first and "0 skipped" in first
        assert (store / "manifest.json").exists()
        assert "### E6" in output.read_text()
        # Second run with --resume skips everything but still renders the report.
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 shard(s) executed, 2 skipped" in second

    def test_sweep_rejects_unknown_experiment_and_bad_jobs(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        assert main(["sweep", "--only", "E99", "--artifacts", store]) == 2
        assert main(["sweep", "--only", "E6", "--jobs", "0", "--artifacts", store]) == 2

    def test_sweep_deduplicates_only_list(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        assert main(["sweep", "--only", "E6,e6,E6", "--artifacts", store]) == 0
        out = capsys.readouterr().out
        assert "2 shard(s) across 1 experiment(s)" in out

    def test_regress_command_gates_on_violations(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        report_path = tmp_path / "report.json"
        records = [{"name": "b", "wall_time_seconds": 1.0, "measured_rounds": 10}]
        baseline.write_text(json.dumps(records))
        current.write_text(json.dumps(records))
        argv = ["regress", "--baseline", str(baseline), "--current", str(current)]
        assert main(argv + ["--report", str(report_path)]) == 0
        assert json.loads(report_path.read_text())["status"] == "pass"
        capsys.readouterr()
        # A round-count deviation must fail the gate.
        bad = [{"name": "b", "wall_time_seconds": 1.0, "measured_rounds": 11}]
        current.write_text(json.dumps(bad))
        assert main(argv) == 1
        assert "round-count" in capsys.readouterr().out
        # Unreadable baseline is a usage error, not a crash.
        assert main(["regress", "--baseline", str(tmp_path / "missing.json")]) == 2

    def test_query_command_serves_a_session(self, capsys):
        assert main(["query", "--n", "48", "--seed", "2", "--repeat", "2"]) == 0
        output = capsys.readouterr().out
        assert "amortized" in output and "cold-equiv" in output
        assert "preprocessing rounds (paid once)" in output
        # 2 repeats x 4 queries per pass.
        assert "8 queries:" in output

    def test_query_command_rejects_tiny_n(self, capsys):
        assert main(["query", "--n", "1"]) == 2

    def test_query_command_with_mutations_repairs_between_passes(self, capsys):
        assert main(["query", "--n", "56", "--seed", "3", "--repeat", "2", "--mutate", "1"]) == 0
        output = capsys.readouterr().out
        assert "mutate edge" in output
        assert "context repairs after mutations:" in output

    def test_query_command_rejects_negative_mutate(self, capsys):
        assert main(["query", "--n", "48", "--mutate", "-1"]) == 2

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E12" in output

    def test_run_command_prints_table(self, capsys):
        assert main(["run", "E12", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "E12" in output and "|" in output

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 2

    def test_run_all_writes_file(self, tmp_path, capsys):
        # Monkeypatch run_all to a cheap subset via the E12 experiment only is
        # not possible without touching the registry, so use the real thing at
        # small scale but only assert on the output file structure.
        output = tmp_path / "report.md"
        assert main(["run-all", "--scale", "small", "--output", str(output)]) == 0
        text = output.read_text()
        assert text.startswith("# Regenerated experiment tables")
        assert "### E1" in text and "### E12" in text
