"""Tests for the CLIQUE model simulator and the plug-in CLIQUE algorithms."""

import pytest

from repro.clique import (
    BroadcastBellmanFordSSSP,
    BroadcastKSourceBellmanFord,
    CliqueAlgorithmSpec,
    CliqueNetwork,
    EccentricityDiameter,
    GatherDiameter,
    GatherShortestPaths,
)
from repro.graphs import generators, reference
from repro.hybrid.errors import CapacityExceededError
from repro.util.rand import RandomSource


def incident_edges_of(graph):
    edges = [dict() for _ in range(graph.node_count)]
    for u, v, w in graph.edges():
        edges[u][v] = w
        edges[v][u] = w
    return edges


@pytest.fixture
def clique_graph():
    return generators.connected_workload(18, RandomSource(23), weighted=True, max_weight=7)


class TestCliqueNetwork:
    def test_exchange_delivers(self):
        clique = CliqueNetwork(4)
        inboxes = clique.exchange({0: [(1, "a"), (2, "b")], 3: [(1, "c")]})
        assert sorted(p for _, p in inboxes[1]) == ["a", "c"]
        assert clique.rounds_used == 1
        assert clique.messages_sent == 3

    def test_send_cap(self):
        clique = CliqueNetwork(3)
        with pytest.raises(CapacityExceededError):
            clique.exchange({0: [(1, i) for i in range(4)]})

    def test_receive_cap(self):
        clique = CliqueNetwork(3, strict=True)
        outboxes = {s: [(0, "x")] * 3 for s in range(3)}
        with pytest.raises(CapacityExceededError):
            clique.exchange(outboxes)

    def test_non_strict_allows_overload(self):
        clique = CliqueNetwork(2, strict=False)
        inboxes = clique.exchange({0: [(1, i) for i in range(5)]})
        assert len(inboxes[1]) == 5

    def test_invalid_target(self):
        clique = CliqueNetwork(3)
        with pytest.raises(ValueError):
            clique.exchange({0: [(7, "x")]})

    def test_needs_positive_size(self):
        with pytest.raises(ValueError):
            CliqueNetwork(0)


class TestSpec:
    def test_exact_flag(self):
        exact = CliqueAlgorithmSpec(1, 0, 1, 1.0, 0.0)
        approx = CliqueAlgorithmSpec(1, 0, 1, 2.0, 0.0)
        assert exact.exact and not approx.exact

    def test_hybrid_exponent(self):
        assert CliqueAlgorithmSpec(1, 0, 1, 1, 0).hybrid_exponent() == pytest.approx(1 / 3)
        assert CliqueAlgorithmSpec(1, 1, 1, 1, 0).hybrid_exponent() == pytest.approx(0.6)

    def test_transformed_factors(self):
        spec = CliqueAlgorithmSpec(1, 0, 2, 1.5, 0.0)
        assert spec.hybrid_weighted_alpha() == pytest.approx(4.0)
        assert spec.hybrid_unweighted_alpha() == pytest.approx(2.5)


class TestGatherShortestPaths:
    def test_exact_on_all_sources(self, clique_graph):
        clique = CliqueNetwork(clique_graph.node_count)
        algorithm = GatherShortestPaths()
        sources = list(range(clique_graph.node_count))
        estimates = algorithm.run(clique, incident_edges_of(clique_graph), sources)
        truth = reference.all_pairs_distances(clique_graph)
        for v in range(clique_graph.node_count):
            for s in sources:
                assert estimates[v][s] == pytest.approx(truth[s][v])

    def test_round_count_is_max_degree(self, clique_graph):
        clique = CliqueNetwork(clique_graph.node_count)
        GatherShortestPaths().run(clique, incident_edges_of(clique_graph), [0])
        assert clique.rounds_used == clique_graph.max_degree()

    def test_spec_is_exact(self):
        assert GatherShortestPaths().spec.exact


class TestBellmanFordAlgorithms:
    def test_sssp_exact(self, clique_graph):
        clique = CliqueNetwork(clique_graph.node_count)
        estimates = BroadcastBellmanFordSSSP().run(clique, incident_edges_of(clique_graph), [3])
        truth = reference.single_source_distances(clique_graph, 3)
        for v in range(clique_graph.node_count):
            assert estimates[v][3] == pytest.approx(truth[v])

    def test_sssp_requires_single_source(self, clique_graph):
        clique = CliqueNetwork(clique_graph.node_count)
        with pytest.raises(ValueError):
            BroadcastBellmanFordSSSP().run(clique, incident_edges_of(clique_graph), [0, 1])

    def test_kssp_exact(self, clique_graph):
        clique = CliqueNetwork(clique_graph.node_count)
        sources = [0, 4, 9]
        estimates = BroadcastKSourceBellmanFord().run(
            clique, incident_edges_of(clique_graph), sources
        )
        truth = reference.multi_source_distances(clique_graph, sources)
        for v in range(clique_graph.node_count):
            for s in sources:
                assert estimates[v][s] == pytest.approx(truth[s][v])

    def test_bellman_ford_rounds_bounded_by_size(self, clique_graph):
        clique = CliqueNetwork(clique_graph.node_count)
        BroadcastBellmanFordSSSP().run(clique, incident_edges_of(clique_graph), [0])
        assert clique.rounds_used <= clique_graph.node_count + 1


class TestDiameterAlgorithms:
    def test_gather_diameter_exact(self, clique_graph):
        clique = CliqueNetwork(clique_graph.node_count)
        estimate = GatherDiameter().run(clique, incident_edges_of(clique_graph))
        assert estimate == pytest.approx(reference.weighted_diameter(clique_graph))

    def test_eccentricity_diameter_within_factor_two(self, clique_graph):
        clique = CliqueNetwork(clique_graph.node_count)
        estimate = EccentricityDiameter().run(clique, incident_edges_of(clique_graph))
        true_diameter = reference.weighted_diameter(clique_graph)
        assert true_diameter <= estimate <= 2 * true_diameter + 1e-9

    def test_eccentricity_spec(self):
        spec = EccentricityDiameter().spec
        assert spec.alpha == 2.0 and spec.beta == 0.0

    def test_disconnected_instance_gives_infinity(self):
        graph = generators.path_graph(4)
        graph.remove_edge(1, 2)
        clique = CliqueNetwork(4)
        assert GatherDiameter().run(clique, incident_edges_of(graph)) == float("inf")
