"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import fit_power_law
from repro.core.helper_sets import helper_parameter
from repro.core.skeleton import framework_exponent, framework_sampling_probability
from repro.core.token_routing import make_tokens
from repro.graphs import generators
from repro.hybrid import HybridNetwork, ModelConfig
from repro.util.hashing import KWiseHashFamily
from repro.util.rand import RandomSource, split_evenly

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# --------------------------------------------------------------------------- graphs
@st.composite
def random_graph(draw):
    n = draw(st.integers(min_value=2, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    max_weight = draw(st.sampled_from([1, 5, 12]))
    rng = RandomSource(seed)
    return generators.random_connected_graph(n, 3.0, rng, max_weight=max_weight)


@common_settings
@given(random_graph())
def test_dijkstra_satisfies_triangle_inequality(graph):
    source = 0
    distances = graph.dijkstra(source)
    for u, v, w in graph.edges():
        if u in distances and v in distances:
            assert distances[v] <= distances[u] + w + 1e-9
            assert distances[u] <= distances[v] + w + 1e-9


@common_settings
@given(random_graph())
def test_hop_limited_distances_monotone_in_hops(graph):
    limited_small = graph.hop_limited_distances(0, 2)
    limited_large = graph.hop_limited_distances(0, 5)
    for node, value in limited_small.items():
        assert limited_large.get(node, math.inf) <= value + 1e-9


@common_settings
@given(random_graph())
def test_fast_hop_bounded_distances_upper_bound_dijkstra(graph):
    exact = graph.dijkstra(0)
    fast = graph.shortest_distances_within_hops(0, 4)
    for node, value in fast.items():
        assert value >= exact[node] - 1e-9


@common_settings
@given(random_graph())
def test_bfs_hops_bounded_by_node_count(graph):
    hops = graph.bfs_hops(0)
    assert all(0 <= h < graph.node_count for h in hops.values())


@common_settings
@given(random_graph(), st.integers(min_value=0, max_value=6))
def test_ball_grows_with_radius(graph, radius):
    smaller = set(graph.ball(0, radius))
    larger = set(graph.ball(0, radius + 1))
    assert smaller <= larger


# ----------------------------------------------------------------------- utilities
@common_settings
@given(st.lists(st.integers(), min_size=0, max_size=200), st.integers(min_value=1, max_value=20))
def test_split_evenly_is_balanced_partition(items, buckets):
    result = split_evenly(items, buckets)
    assert sum(len(b) for b in result) == len(items)
    sizes = [len(b) for b in result]
    assert max(sizes) - min(sizes) <= 1
    flattened = sorted(x for b in result for x in b)
    assert flattened == sorted(items)


@common_settings
@given(
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
def test_helper_parameter_bounds(n, members, tokens):
    mu = helper_parameter(n, members, tokens)
    assert mu >= 1
    assert mu <= max(1, math.isqrt(max(tokens, 1)))
    assert mu <= max(1, n // members) if members > 0 else True


@common_settings
@given(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
def test_framework_exponent_in_unit_interval(delta):
    x = framework_exponent(delta)
    assert 0 < x <= 2.0 / 3.0 + 1e-12


@common_settings
@given(st.integers(min_value=2, max_value=10**6), st.floats(min_value=0.0, max_value=3.0))
def test_framework_sampling_probability_valid(n, delta):
    p = framework_sampling_probability(n, delta)
    assert 0 < p <= 1


@common_settings
@given(st.integers(min_value=2, max_value=64), st.integers(min_value=1, max_value=500))
def test_kwise_hash_stays_in_range(independence, output_range):
    function = KWiseHashFamily(independence, output_range).sample(RandomSource(7))
    for key in range(50):
        assert 0 <= function((key, key + 1)) < output_range


@common_settings
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=20),
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=20), st.integers()),
            max_size=5,
        ),
        max_size=8,
    )
)
def test_make_tokens_labels_are_unique(assignments):
    tokens = make_tokens(assignments)
    labels = [t.label for t in tokens]
    assert len(labels) == len(set(labels))
    assert len(tokens) == sum(len(v) for v in assignments.values())


@common_settings
@given(
    st.floats(min_value=0.1, max_value=3.0),
    st.floats(min_value=0.5, max_value=50.0),
)
def test_power_law_fit_recovers_generated_exponent(exponent, coefficient):
    xs = [8, 16, 32, 64, 128]
    ys = [coefficient * x ** exponent for x in xs]
    fit = fit_power_law(xs, ys)
    assert abs(fit.exponent - exponent) < 1e-6


# ----------------------------------------------------------------- engine invariants
@common_settings
@given(st.integers(min_value=0, max_value=3000), st.integers(min_value=2, max_value=30))
def test_local_charge_never_exceeds_diameter_cap(rounds, n):
    graph = generators.path_graph(n)
    network = HybridNetwork(graph, ModelConfig())
    network.charge_local_rounds(rounds, "test")
    assert network.metrics.local_rounds <= min(rounds, n - 1)


@common_settings
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=19), st.integers(min_value=0, max_value=19)),
        min_size=0,
        max_size=120,
    )
)
def test_global_exchange_delivers_everything_within_caps(pairs):
    graph = generators.cycle_graph(20)
    network = HybridNetwork(graph, ModelConfig(rng_seed=1))
    outboxes = {}
    for index, (sender, target) in enumerate(pairs):
        outboxes.setdefault(sender, []).append((target, index))
    inboxes, rounds = network.run_global_exchange(outboxes)
    delivered = sorted(payload for messages in inboxes.values() for _, payload in messages)
    assert delivered == sorted(range(len(pairs)))
    assert network.metrics.max_sent_per_round <= network.send_cap
    assert network.metrics.max_received_per_round <= network.receive_cap
