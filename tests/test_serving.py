"""Tests for the async multi-tenant serving layer (DESIGN.md §11).

Pins the contracts the serving surface documents:

* protocol validation rejects malformed requests with the documented codes,
* ``HybridSession.sssp_batch`` -- the coalescing core -- is bit-identical to
  sequential single-source queries (including singletons and duplicates),
* a coalescing server returns answers bit-identical to one-query-per-pass
  while executing strictly fewer simulation passes,
* per-tenant scoped accounting is deterministic and charges every
  participant the full pass,
* admission control (queue overflow, tenant quota) and graceful shutdown
  behave as §11 specifies, end to end over TCP too, and
* the E16 benchmark emits the documented summary schema with a
  deterministic payload hash and byte-identical manifests.
"""

import asyncio
import json

import pytest

from repro import HybridSession, ModelConfig
from repro.graphs import generators
from repro.serving import (
    ProtocolError,
    QueryServer,
    ServerConfig,
    batch_key,
    parse_request,
    plan_batches,
    query_tcp,
    serve_tcp,
)
from repro.serving import benchmark
from repro.util.rand import RandomSource


def make_graph(seed=3, n=56):
    return generators.connected_workload(n, RandomSource(seed), weighted=True, max_weight=9)


def make_session(graph, seed=1):
    return HybridSession(graph, ModelConfig(rng_seed=seed))


def sssp_request(index, source, tenant="acme"):
    return {"id": f"sssp-{index}", "tenant": tenant, "op": "sssp", "source": source}


def serve(requests, session, config):
    """Run ``requests`` concurrently against a fresh server; return responses + server."""

    async def _run():
        async with QueryServer(session, config) as server:
            tasks = [asyncio.ensure_future(server.submit(req)) for req in requests]
            responses = await asyncio.gather(*tasks)
        return responses, server

    return asyncio.run(_run())


class TestProtocol:
    def test_parse_valid_sssp(self):
        query = parse_request('{"id": "a", "op": "sssp", "source": 3}')
        assert query.op == "sssp"
        assert query.tenant == "default"
        assert query.params["source"] == 3

    @pytest.mark.parametrize(
        "raw",
        [
            "not json",
            '["a", "list"]',
            '{"id": "a", "op": "teleport"}',
            '{"op": "sssp", "source": 1}',
            '{"id": "", "op": "sssp", "source": 1}',
            '{"id": "a", "tenant": 7, "op": "sssp", "source": 1}',
            '{"id": "a", "op": "sssp"}',
            '{"id": "a", "op": "sssp", "source": "zero"}',
            '{"id": "a", "op": "apsp", "probability": 1.5}',
            '{"id": "a", "op": "shortest-paths", "sources": []}',
            '{"id": "a", "op": "route-tokens", "tokens": [[1, 2]]}',
        ],
    )
    def test_parse_rejects_bad_requests(self, raw):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(raw)
        assert excinfo.value.code == "bad-request"

    def test_shortest_paths_sources_sorted_deduped(self):
        query = parse_request(
            '{"id": "a", "op": "shortest-paths", "sources": [5, 1, 5, 3]}'
        )
        assert query.params["sources"] == (1, 3, 5)

    def test_bad_request_response_echoes_id_when_parseable(self):
        graph = make_graph(n=16)
        responses, server = serve(
            [{"id": "bad", "op": "teleport"}],
            make_session(graph),
            ServerConfig(batch_window=0),
        )
        assert responses[0] == {
            "id": "bad",
            "ok": False,
            "error": {
                "code": "bad-request",
                "message": responses[0]["error"]["message"],
            },
        }
        assert server.stats.rejected == 1


class TestBatchPlanning:
    def test_sssp_always_coalesces(self):
        queries = [parse_request(sssp_request(i, i)) for i in range(4)]
        assert len({batch_key(q, i) for i, q in enumerate(queries)}) == 1
        assert plan_batches(queries, max_batch=8) == [[0, 1, 2, 3]]

    def test_route_tokens_never_coalesces(self):
        raw = {"id": "r", "op": "route-tokens", "tokens": [[0, 1, 7]]}
        queries = [parse_request({**raw, "id": f"r{i}"}) for i in range(3)]
        assert plan_batches(queries, max_batch=8) == [[0], [1], [2]]

    def test_max_batch_chunks_groups(self):
        queries = [parse_request(sssp_request(i, i)) for i in range(5)]
        assert plan_batches(queries, max_batch=2) == [[0, 1], [2, 3], [4]]

    def test_coalesce_off_is_one_query_per_pass(self):
        queries = [parse_request(sssp_request(i, i)) for i in range(3)]
        assert plan_batches(queries, max_batch=8, coalesce=False) == [[0], [1], [2]]


class TestSsspBatchIdentity:
    def test_batch_bit_identical_to_sequential(self):
        graph = make_graph()
        sources = [0, 7, 13, 13, 41]  # includes a duplicate
        batched = make_session(graph).sssp_batch(sources)
        sequential_session = make_session(graph)
        for source, result in zip(sources, batched):
            assert result.source == source
            solo = sequential_session.sssp(source)
            assert result.distances == solo.distances

    def test_singleton_batch_matches_sssp(self):
        graph = make_graph(n=40)
        batched = make_session(graph).sssp_batch([5])
        solo = make_session(graph).sssp(5)
        assert batched[0].distances == solo.distances

    def test_batch_validates_sources(self):
        session = make_session(make_graph(n=24), seed=2)
        with pytest.raises(ValueError):
            session.sssp_batch([])
        with pytest.raises(ValueError):
            session.sssp_batch([999])


class TestServerCoalescing:
    def test_batched_answers_identical_to_sequential_with_fewer_passes(self):
        graph = make_graph()
        requests = [sssp_request(i, s, tenant=("acme", "globex")[i % 2])
                    for i, s in enumerate([0, 9, 17, 25, 33])]
        requests.append({"id": "apsp-a", "tenant": "acme", "op": "apsp"})
        requests.append({"id": "apsp-b", "tenant": "globex", "op": "apsp"})
        config = dict(batch_window=0, max_pending=16, max_batch=16)

        batched, batched_server = serve(
            requests, make_session(graph), ServerConfig(**config)
        )
        sequential, sequential_server = serve(
            requests, make_session(graph), ServerConfig(**config, coalesce=False)
        )

        def answers(responses):
            out = []
            for response in responses:
                stripped = {k: v for k, v in response.items() if k != "batch_size"}
                stripped["result"] = {
                    k: v for k, v in stripped["result"].items() if k != "cost"
                }
                out.append(stripped)
            return sorted(json.dumps(entry, sort_keys=True) for entry in out)

        assert all(response["ok"] for response in batched + sequential)
        assert answers(batched) == answers(sequential)
        assert batched_server.stats.passes == 2  # one sssp pass + one apsp pass
        assert sequential_server.stats.passes == len(requests)
        assert batched_server.stats.coalesced_queries == len(requests)

    def test_tenant_accounting_deterministic_and_charges_full_pass(self):
        graph = make_graph(n=48)
        requests = [sssp_request(i, 3 * i, tenant=("acme", "globex")[i % 2])
                    for i in range(4)]

        def run_once():
            _, server = serve(
                requests,
                make_session(graph),
                ServerConfig(batch_window=0, max_pending=8),
            )
            return server.tenant_summary(), server.stats.passes

        first, passes = run_once()
        second, _ = run_once()
        assert first == second  # deterministic at a fixed seed
        assert passes == 1
        assert set(first) == {"acme", "globex"}
        # Both tenants took part in the single shared pass, so each ledger
        # carries the full pass cost (the honest amortized view, §11).
        assert first["acme"]["amortized_rounds"] == first["globex"]["amortized_rounds"]
        assert first["acme"]["amortized_rounds"] > 0
        assert first["acme"]["queries"] == first["globex"]["queries"] == 2


class TestAdmissionControl:
    def test_queue_overflow_rejected(self):
        graph = make_graph(n=32)
        requests = [sssp_request(i, i) for i in range(5)]
        responses, server = serve(
            requests,
            make_session(graph),
            ServerConfig(batch_window=0.02, max_pending=2),
        )
        codes = [r.get("error", {}).get("code") for r in responses if not r["ok"]]
        assert codes == ["queue-full"] * 3
        assert server.stats.rejected == 3
        assert sum(1 for r in responses if r["ok"]) == 2
        assert server.tenant_summary()["acme"]["rejected"] == 3

    def test_tenant_quota_rejects_only_the_greedy_tenant(self):
        graph = make_graph(n=32)
        requests = [sssp_request(i, i, tenant="acme") for i in range(3)]
        requests.append(sssp_request(9, 9, tenant="globex"))
        responses, server = serve(
            requests,
            make_session(graph),
            ServerConfig(batch_window=0.02, max_pending=8, tenant_quota=2),
        )
        by_id = {r["id"]: r for r in responses}
        assert not by_id["sssp-2"]["ok"]
        assert by_id["sssp-2"]["error"]["code"] == "tenant-quota"
        assert by_id["sssp-9"]["ok"]  # the other tenant is unaffected
        assert server.tenant_summary()["acme"]["rejected"] == 1

    def test_graceful_shutdown_drains_then_rejects(self):
        graph = make_graph(n=32)

        async def _run():
            session = make_session(graph)
            server = QueryServer(session, ServerConfig(batch_window=0.05))
            server.start()
            tasks = [
                asyncio.ensure_future(server.submit(sssp_request(i, i)))
                for i in range(3)
            ]
            await asyncio.sleep(0)  # let every submit run to admission
            await server.close()  # drain: everything admitted is answered
            drained = await asyncio.gather(*tasks)
            late = await server.submit(sssp_request(99, 0))
            return drained, late

        drained, late = asyncio.run(_run())
        assert all(response["ok"] for response in drained)
        assert not late["ok"]
        assert late["error"]["code"] == "shutting-down"


class TestTcpRoundtrip:
    def test_line_protocol_over_tcp(self):
        # Unweighted: the workload includes a diameter query (Theorem 5.1).
        graph = generators.connected_workload(
            40, RandomSource(3), weighted=False
        )

        async def _run():
            session = make_session(graph)
            async with QueryServer(session, ServerConfig(batch_window=0.01)) as server:
                listener = await serve_tcp(server, port=0)
                port = listener.sockets[0].getsockname()[1]
                requests = [
                    sssp_request(0, 0),
                    sssp_request(1, 11, tenant="globex"),
                    {"id": "d", "op": "diameter"},
                ]
                responses = await query_tcp("127.0.0.1", port, requests)
                listener.close()
                await listener.wait_closed()
            return responses

        responses = asyncio.run(_run())
        assert len(responses) == 3
        assert all(response["ok"] for response in responses)
        by_id = {response["id"]: response for response in responses}
        assert by_id["sssp-0"]["result"]["distances"][0] == 0
        assert by_id["d"]["result"]["estimate"] >= 1


class TestMutationMidServe:
    """Mutations between batch windows keep the warm session honest (§12)."""

    @staticmethod
    def _sssp_over(server_requests, graph, seed=1):
        """Cold-serve ``server_requests`` on a fresh session over ``graph``."""
        responses, _ = serve(
            server_requests, make_session(graph, seed=seed), ServerConfig(batch_window=0)
        )
        return [response["result"]["distances"] for response in responses]

    def test_mutation_between_windows_repairs_and_charges_tenants(self):
        graph = make_graph(seed=3, n=56)
        session = make_session(graph)
        sources = [4, 9]

        def requests(tenant):
            return [sssp_request(i, s, tenant=tenant) for i, s in enumerate(sources)]

        async def _run():
            async with QueryServer(session, ServerConfig(batch_window=0)) as server:
                first = await asyncio.gather(
                    *[server.submit(req) for req in requests("alpha")]
                )
                base = session.context()
                outside = (
                    set(range(graph.node_count))
                    - set(base.skeleton.nodes)
                    - set(sources)
                )
                # The heaviest off-skeleton edge: rarely on a shortest path,
                # so raising it further stays under the damage threshold and
                # exercises the repair path (a rebuild would also be correct,
                # but this test pins the cheap path).
                u, v, weight = max(
                    (
                        (a, b, w)
                        for a, b, w in graph.edges()
                        if a in outside and b in outside
                    ),
                    key=lambda edge: (edge[2], edge[0], edge[1]),
                )
                ack = await server.mutate("update", u, v, weight + 4)
                second = await asyncio.gather(
                    *[server.submit(req) for req in requests("beta")]
                )
                third = await asyncio.gather(
                    *[server.submit(req) for req in requests("gamma")]
                )
                return server, first, ack, second, third, (u, v, weight)

        server, first, ack, second, third, (u, v, weight) = asyncio.run(_run())
        assert all(r["ok"] for r in first + second + third)
        assert ack == {
            "kind": "update",
            "u": u,
            "v": v,
            "weight": weight + 4,
            "version": session.graph.version,
        }

        # The pass that ran before the mutation answered for the old graph;
        # every later pass answers for the new one -- each bit-identical to a
        # cold server over the respective graph.
        old_graph = make_graph(seed=3, n=56)
        new_graph = make_graph(seed=3, n=56)
        new_graph.update_weight(u, v, weight + 4)
        assert [r["result"]["distances"] for r in first] == self._sssp_over(
            requests("alpha"), old_graph
        )
        new_oracle = self._sssp_over(requests("beta"), new_graph)
        assert [r["result"]["distances"] for r in second] == new_oracle
        assert [r["result"]["distances"] for r in third] == new_oracle

        # The warm context was repaired in place (not rebuilt), inside the
        # first post-mutation pass.
        assert [(rec.action, rec.deltas) for rec in session.repairs] == [("repaired", 1)]
        repair_rounds = session.repairs[0].rounds
        assert repair_rounds > 0

        # Tenant ledgers: the repair ran inside the pass that triggered it,
        # so "beta" paid at least the repair rounds (plus re-deriving the
        # batch extension, which a cold rebuild would also pay) on top of
        # what "gamma" paid for the identical already-current pass -- and no
        # more than "alpha", whose pass funded the cold build.  (The round
        # *win* of repair over rebuild is an E17 concern; at this diameter
        # the sssp exploration is diameter-capped either way.)
        summary = server.tenant_summary()
        assert summary["beta"]["amortized_rounds"] >= (
            summary["gamma"]["amortized_rounds"] + repair_rounds
        )
        assert (
            summary["beta"]["amortized_rounds"] <= summary["alpha"]["amortized_rounds"]
        )
        assert summary["alpha"]["queries"] == len(sources)

    def test_mutate_rejects_bad_kind_missing_weight_and_draining(self):
        graph = make_graph(seed=5, n=24)
        session = make_session(graph)

        async def _run():
            async with QueryServer(session, ServerConfig(batch_window=0)) as server:
                with pytest.raises(ProtocolError) as no_weight:
                    await server.mutate("update", 0, 1)
                with pytest.raises(ProtocolError) as bad_kind:
                    await server.mutate("teleport", 0, 1, 2)
            with pytest.raises(ProtocolError) as draining:
                await server.mutate("update", 0, 1, 2)
            return no_weight.value.code, bad_kind.value.code, draining.value.code

        assert asyncio.run(_run()) == ("bad-request", "bad-request", "shutting-down")


@pytest.mark.slow
class TestE16Smoke:
    def test_summary_schema_identity_and_manifest_determinism(self, tmp_path):
        summary = benchmark.run_comparison(48, 6, seed=7, batch_window=0.005)
        assert tuple(sorted(summary)) == tuple(sorted(benchmark.SUMMARY_SCHEMA))
        assert summary["responses_identical"] is True
        # Coalescing must win on simulated rounds even at smoke scale.
        assert summary["round_throughput_ratio"] > 1.3
        assert summary["modes"]["batched"]["passes"] < summary["modes"]["sequential"]["passes"]

        repeat = benchmark.run_comparison(48, 6, seed=7, batch_window=0.005)
        assert repeat["payload_hash"] == summary["payload_hash"]

        paths_a = benchmark.write_run_artifacts(tmp_path / "a", summary)
        paths_b = benchmark.write_run_artifacts(tmp_path / "b", repeat)
        assert paths_a["manifest"].read_bytes() == paths_b["manifest"].read_bytes()
        assert len(paths_a["metrics"].read_text().splitlines()) > 0
        written = json.loads(paths_a["summary"].read_text())
        assert written["payload_hash"] == summary["payload_hash"]
