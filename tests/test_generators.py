"""Unit tests for the workload graph generators (repro.graphs.generators)."""

import pytest

from repro.graphs import generators
from repro.util.rand import RandomSource


@pytest.fixture
def rng():
    return RandomSource(42)


class TestSimpleFamilies:
    def test_path_graph(self):
        graph = generators.path_graph(6)
        assert graph.edge_count == 5
        assert graph.hop_diameter() == 5

    def test_cycle_graph(self):
        graph = generators.cycle_graph(8)
        assert graph.edge_count == 8
        assert graph.hop_diameter() == 4

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_star_graph(self):
        graph = generators.star_graph(7)
        assert graph.degree(0) == 6
        assert graph.hop_diameter() == 2

    def test_complete_graph(self):
        graph = generators.complete_graph(6)
        assert graph.edge_count == 15
        assert graph.hop_diameter() == 1

    def test_grid_graph(self):
        graph = generators.grid_graph(3, 4)
        assert graph.node_count == 12
        assert graph.hop_diameter() == 5

    def test_torus_graph_is_regular(self):
        graph = generators.torus_graph(4, 4)
        assert all(graph.degree(v) == 4 for v in graph.nodes())

    def test_torus_too_small(self):
        with pytest.raises(ValueError):
            generators.torus_graph(2, 5)

    def test_barbell_graph(self):
        graph = generators.barbell_graph(4, 3)
        assert graph.is_connected()
        assert graph.hop_diameter() == 3 + 2

    def test_caterpillar_graph(self):
        graph = generators.caterpillar_graph(5, 2)
        assert graph.node_count == 15
        assert graph.is_connected()


class TestRandomFamilies:
    def test_random_tree_is_tree(self, rng):
        graph = generators.random_tree(20, rng)
        assert graph.edge_count == 19
        assert graph.is_connected()

    def test_random_connected_graph_connected(self, rng):
        graph = generators.random_connected_graph(40, 4.0, rng)
        assert graph.is_connected()

    def test_random_connected_graph_degree(self, rng):
        graph = generators.random_connected_graph(60, 5.0, rng)
        average_degree = 2 * graph.edge_count / graph.node_count
        assert 3.0 <= average_degree <= 6.0

    def test_random_connected_graph_weighted(self, rng):
        graph = generators.random_connected_graph(30, 3.0, rng, max_weight=10)
        weights = {w for _, _, w in graph.edges()}
        assert max(weights) <= 10
        assert min(weights) >= 1

    def test_random_connected_graph_rejects_low_degree(self, rng):
        with pytest.raises(ValueError):
            generators.random_connected_graph(10, 0.5, rng)

    def test_geometric_like_graph_connected_and_local(self, rng):
        graph = generators.random_geometric_like_graph(50, 2, rng, extra_edge_probability=0.0)
        assert graph.is_connected()
        assert graph.hop_diameter() >= 50 // (2 * 2) - 1

    def test_clustered_isp_graph(self, rng):
        graph = generators.clustered_isp_graph(5, 8, rng)
        assert graph.node_count == 40
        assert graph.is_connected()

    def test_datacenter_pod_graph(self):
        graph = generators.datacenter_pod_graph(3, 2, 4)
        assert graph.is_connected()
        # core + agg + racks + servers
        assert graph.node_count == 3 + 3 + 6 + 24

    def test_connected_workload_unweighted(self, rng):
        graph = generators.connected_workload(30, rng, weighted=False)
        assert graph.is_unweighted()
        assert graph.is_connected()

    def test_connected_workload_weighted(self, rng):
        graph = generators.connected_workload(30, rng, weighted=True, max_weight=12)
        assert not graph.is_unweighted() or graph.max_weight() == 1
        assert graph.is_connected()

    def test_assign_random_weights_bounds(self, rng):
        graph = generators.path_graph(10)
        weighted = generators.assign_random_weights(graph, 6, rng)
        assert all(1 <= w <= 6 for _, _, w in weighted.edges())
        assert weighted.edge_count == graph.edge_count

    def test_suggested_hop_diameter_upper_bounds_real_one(self, rng):
        graph = generators.random_connected_graph(40, 4.0, rng)
        assert generators.suggested_hop_diameter(graph) >= graph.hop_diameter()


class TestScenarioFamilies:
    def test_power_law_graph_connected_with_hubs(self, rng):
        graph = generators.power_law_graph(150, rng, attachment=2)
        assert graph.is_connected()
        # Preferential attachment concentrates degree: the busiest node sees
        # many times the average degree.
        average = 2.0 * graph.edge_count / graph.node_count
        assert graph.max_degree() >= 3 * average

    def test_power_law_graph_weighted(self, rng):
        graph = generators.power_law_graph(60, rng, attachment=3, max_weight=9)
        assert graph.is_connected()
        assert 1 <= graph.max_weight() <= 9

    def test_power_law_graph_pinned_edges(self):
        # Regression pin for the RL002 fix: attachment targets are drawn from
        # a set whose iteration order used to leak hash-table internals into
        # the endpoint multiset (and hence into every later degree-
        # proportional draw).  The generator now iterates sorted(chosen), so
        # this exact edge list is a pure function of the seed on every
        # interpreter.
        graph = generators.power_law_graph(12, RandomSource(7), attachment=2)
        edges = sorted((min(u, v), max(u, v), w) for u, v, w in graph.edges())
        expected_pairs = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 7),
            (0, 8),
            (0, 9),
            (1, 2),
            (1, 4),
            (1, 5),
            (1, 6),
            (1, 7),
            (2, 3),
            (2, 5),
            (2, 6),
            (2, 10),
            (2, 11),
            (3, 9),
            (3, 11),
            (4, 8),
            (8, 10),
        ]
        assert edges == [(u, v, 1) for u, v in expected_pairs]

    def test_power_law_rejects_bad_parameters(self, rng):
        with pytest.raises(ValueError):
            generators.power_law_graph(1, rng)
        with pytest.raises(ValueError):
            generators.power_law_graph(10, rng, attachment=0)

    def test_grid_with_highways(self, rng):
        graph = generators.grid_with_highways_graph(8, 12, 10, rng)
        base_edges = 8 * 11 + 7 * 12
        assert graph.is_connected()
        assert graph.edge_count > base_edges
        # Highways are cheaper than streets, so weighted distances can
        # undercut street-only paths.
        assert graph.max_weight() == 4
        assert not graph.is_unweighted()

    def test_grid_with_highways_rejects_negative_count(self, rng):
        with pytest.raises(ValueError):
            generators.grid_with_highways_graph(4, 4, -1, rng)

    def test_hierarchical_isp_graph(self, rng):
        graph = generators.hierarchical_isp_graph(5, 3, 4, rng)
        assert graph.node_count == 5 + 15 + 60
        assert graph.is_connected()
        # Leaves are degree-1 access nodes hanging off regionals.
        leaf_base = 5 + 15
        assert all(graph.degree(node) == 1 for node in range(leaf_base, graph.node_count))

    def test_hierarchical_isp_rejects_bad_dimensions(self, rng):
        with pytest.raises(ValueError):
            generators.hierarchical_isp_graph(1, 3, 4, rng)
