"""Multi-query serving on one HYBRID network: the :class:`HybridSession` facade.

Every algorithm in this library pays the same ``Õ(√n)``-shaped preprocessing
-- skeleton construction, edge dissemination, helper sets, the shared routing
hash -- before answering a query.  The one-shot entry points
(:func:`~repro.core.apsp.apsp_exact` and friends) rebuild that state on every
call; a :class:`HybridSession` owns the :class:`HybridNetwork` and a keyed
cache of prepared :class:`~repro.core.context.SkeletonContext` objects and
:class:`~repro.core.token_routing.TokenRouter` endpoints, so a stream of
queries against the same graph pays the preprocessing once.

Accounting (see DESIGN.md §6): preprocessing charges accumulate in
:attr:`HybridSession.preprocessing`; every query runs inside a metrics scope
(:meth:`RoundMetrics.scoped`) and leaves a :class:`QueryRecord` with its
*amortized* per-query :class:`RoundMetrics` next to the *cold-equivalent*
round count (amortized + the preparation cost of the reused state).  All
cached state is keyed by the graph's mutation counter
(:attr:`WeightedGraph.version`, the CSR freeze/invalidate pattern).  When the
graph mutates under the session, the next query resolves the version
mismatch through *delta repair* (DESIGN.md §12): every cached context is
patched in place via :meth:`SkeletonContext.repair` using the graph's delta
log, falling back to a cold rebuild per key when the damage rule says so;
each decision is recorded in :attr:`HybridSession.repairs` and the repair
rounds land in the preprocessing ledger, so the amortized-vs-cold invariant
("amortized + preprocessing = network total") keeps holding.  Repaired
answers are bit-identical to cold rebuilds.  ``enable_repair=False`` restores
the old drop-everything behaviour (the E17 baseline).

By default every query of a session shares one canonical skeleton sampled
with probability ``1/√n`` (the Theorem 1.1 optimum; exact for APSP and, with
the source force-added via Lemma 4.5, for SSSP).  Query results are therefore
a deterministic function of the session configuration alone -- independent of
the order queries arrive in -- which is what makes warm and cold answers
comparable bit for bit.  Per-query ``probability=`` overrides prepare (and
cache) additional skeletons keyed by their sampling probability.

Sessions serialize: every public query method holds an internal re-entrant
lock for the duration of the simulation, so a session shared between threads
(the serving layer runs all simulation on one executor thread, DESIGN.md §11)
answers queries one at a time with consistent caches and accounting.

Quick start::

    from repro import HybridSession, ModelConfig, generators
    from repro.util.rand import RandomSource

    graph = generators.connected_workload(200, RandomSource(1))
    session = HybridSession(graph, ModelConfig(rng_seed=1))
    apsp = session.apsp()              # pays the preprocessing
    sssp = session.sssp(0)             # reuses it: amortized cost only
    diam = session.diameter()
    for record in session.queries:
        print(record.kind, record.amortized_rounds, record.cold_rounds)
"""

from __future__ import annotations

import dataclasses
import math
import threading
import zlib
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass

from repro.clique import BroadcastBellmanFordSSSP, GatherDiameter, GatherShortestPaths
from repro.clique.interfaces import CliqueDiameterAlgorithm, CliqueShortestPathAlgorithm
from repro.core.apsp import APSPResult, apsp_exact
from repro.core.context import (
    DEFAULT_DAMAGE_THRESHOLD,
    SkeletonContext,
    prepare_skeleton_context,
)
from repro.core.diameter import DiameterResult, approximate_diameter
from repro.core.kssp import ShortestPathsResult, shortest_paths_via_clique
from repro.core.sssp import SSSPResult, sssp_exact
from repro.core.token_routing import RoutingToken, TokenRouter, TokenRoutingResult
from repro.graphs.graph import INFINITY, WeightedGraph
from repro.hybrid.config import ModelConfig
from repro.hybrid.faults import FaultModel
from repro.hybrid.metrics import RoundMetrics
from repro.hybrid.network import HybridNetwork

#: Cache key of one prepared skeleton: (sampling probability, forced members).
ContextKey = tuple[float, frozenset[int]]

#: Cache key of one reusable token-routing endpoint:
#: (senders, receivers, max tokens per sender, max tokens per receiver).
RouterKey = tuple[frozenset[int], frozenset[int], int, int]


@dataclass
class QueryRecord:
    """Accounting for one query answered by a session.

    Attributes
    ----------
    kind:
        ``"apsp"``, ``"sssp"``, ``"shortest-paths"``, ``"diameter"`` or
        ``"route-tokens"``.
    metrics:
        The query's own charges (rounds, messages, bits, per-round maxima),
        captured by a metrics scope -- the *amortized* cost, excluding all
        shared preprocessing.
    preparation_rounds:
        Preprocessing rounds newly charged *by this query* (non-zero when the
        query was the first to need some cached piece; zero on a fully warm
        cache).
    shared_preparation_rounds:
        Preparation cost of exactly the cached pieces this query kind
        consumes (e.g. skeleton + CLIQUE transport for SSSP; never the APSP
        edge publication) -- what the query would additionally have paid had
        it been asked cold on this session.
    result:
        The underlying result object the query returned, or None unless the
        session was opened with ``keep_results=True`` -- a serving session
        answers an unbounded stream of queries, and pinning every APSP matrix
        in the query log would grow memory without bound.
    """

    kind: str
    metrics: RoundMetrics
    preparation_rounds: int
    shared_preparation_rounds: int
    result: object

    @property
    def amortized_rounds(self) -> int:
        """Rounds this query actually cost on the warm session."""
        return self.metrics.total_rounds

    @property
    def cold_rounds(self) -> int:
        """Rounds a cold run on this query's prepared state would have cost."""
        return self.metrics.total_rounds + self.shared_preparation_rounds


@dataclass(frozen=True)
class RepairRecord:
    """One per-key resolution of a graph-version mismatch (DESIGN.md §12).

    Attributes
    ----------
    key_tag:
        The context cache key the decision was made for (the same tag that
        names the key's preparation phases).
    action:
        ``"repaired"`` when :meth:`SkeletonContext.repair` patched the cached
        context, ``"rebuilt"`` when the damage rule refused and the key was
        dropped (the next query needing it re-prepares cold).
    deltas:
        Number of graph mutations the decision covered.
    rounds:
        Network rounds charged by the repair attempt (0 for an uncharged
        refusal); accounted in the session's preprocessing ledger.
    """

    key_tag: str
    action: str
    deltas: int
    rounds: int


class HybridSession:
    """A serving session over one graph: shared preprocessing, many queries.

    Parameters
    ----------
    graph:
        The local communication graph (owned by the session's network).
    config:
        Model constants; defaults to :class:`ModelConfig()`.
    skeleton_probability:
        Sampling probability of the session's canonical skeleton; defaults to
        the Theorem 1.1 optimum ``1/√n``.  Every query uses this skeleton
        unless it passes its own ``probability=``.
    keep_results:
        When True, each :class:`QueryRecord` retains the query's result
        object; off by default so the query log holds only the accounting.
    enable_repair:
        When True (default), a graph-version mismatch is resolved by delta
        repair of every cached context (DESIGN.md §12); when False the
        session falls back to the drop-everything :meth:`invalidate`, which
        is the cold-rebuild baseline E17 measures against.
    repair_threshold:
        Damage threshold passed to :meth:`SkeletonContext.repair`: the
        fraction of exploration rows a delta batch may touch before the
        session prefers a cold rebuild for that key.
    fault_model:
        Optional :class:`~repro.hybrid.faults.FaultModel` the session's
        network runs under; it overrides ``config.faults``.  With faults
        active, ``apsp()/sssp()/diameter()`` and the other queries execute
        the loss-tolerant retransmitting protocols (and raise
        :class:`~repro.hybrid.errors.FaultToleranceExceededError` when a
        schedule beats the retry budget); without it -- or with a model whose
        ``enabled`` is False -- every query is bit-identical to the
        fault-free path (pinned by tests/test_faults.py).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        config: ModelConfig | None = None,
        *,
        skeleton_probability: float | None = None,
        keep_results: bool = False,
        fault_model: FaultModel | None = None,
        enable_repair: bool = True,
        repair_threshold: float = DEFAULT_DAMAGE_THRESHOLD,
    ) -> None:
        if fault_model is not None:
            config = dataclasses.replace(config or ModelConfig(), faults=fault_model)
        self.network = HybridNetwork(graph, config)
        if skeleton_probability is None:
            skeleton_probability = min(1.0, 1.0 / math.sqrt(max(1, self.network.n)))
        if not 0 < skeleton_probability <= 1:
            raise ValueError("skeleton_probability must be in (0, 1]")
        self.skeleton_probability = skeleton_probability
        self.keep_results = keep_results
        self.enable_repair = enable_repair
        if not 0 <= repair_threshold <= 1:
            raise ValueError("repair_threshold must be in [0, 1]")
        self.repair_threshold = repair_threshold
        #: Rounds (and traffic) charged preparing shared state, across all keys.
        self.preprocessing = RoundMetrics()
        #: One record per answered query, in order.
        self.queries: list[QueryRecord] = []
        #: One :class:`RepairRecord` per (mutation batch, cached key) decision.
        self.repairs: list[RepairRecord] = []
        self._contexts: dict[ContextKey, SkeletonContext] = {}
        self._routers: dict[RouterKey, tuple[TokenRouter, int]] = {}
        self._graph_version = graph.version
        self._active_preparation: RoundMetrics | None = None
        # Serializes the public query surface: the network, the caches and
        # the accounting are single-writer state, so concurrent callers (the
        # serving layer's executor thread plus anything else) take turns.
        # Re-entrant because queries call back into context()/_preparing().
        self._lock = threading.RLock()

    # ------------------------------------------------------------- properties
    @property
    def graph(self) -> WeightedGraph:
        """The session's graph (mutations invalidate all cached state)."""
        return self.network.graph

    @property
    def metrics(self) -> RoundMetrics:
        """The network's cumulative counters (preprocessing + all queries)."""
        return self.network.metrics

    @property
    def last_query(self) -> QueryRecord | None:
        """The most recent query's accounting record (None before any query)."""
        return self.queries[-1] if self.queries else None

    @property
    def preprocessing_rounds(self) -> int:
        """Total rounds spent on shared preprocessing so far."""
        return self.preprocessing.total_rounds

    def acceleration(self) -> dict[str, object]:
        """Which execution planes this session resolved to (diagnostics).

        Combines the graph backend (``dict`` / ``csr`` / ``csr-njit``), the
        per-kernel implementation report of :mod:`repro.graphs.compiled`, and
        the message plane of the network (``scalar`` / ``vectorized`` /
        ``compiled``), so experiment logs can record exactly what ran --
        results are plane-independent (DESIGN.md §9), wall-clock is not.
        """
        from repro.graphs import compiled as graph_compiled

        if self.network.compiled_plane:
            message_plane = "compiled"
        elif self.network.vectorized_plane:
            message_plane = "vectorized"
        else:
            message_plane = "scalar"
        return {
            "graph_backend": self.graph.backend,
            "message_plane": message_plane,
            "kernels": graph_compiled.kernel_report(),
        }

    # ------------------------------------------------------------ invalidation
    def invalidate(self) -> None:
        """Drop every cached context and router (forced cold restart).

        The next query of any kind re-prepares from scratch, exactly as on a
        fresh session (DESIGN.md §6).
        """
        with self._lock:
            self._contexts.clear()
            self._routers.clear()
            self.network.clear_states()
            self._graph_version = self.graph.version

    def _check_version(self) -> None:
        """Resolve a graph-version mismatch by delta repair (DESIGN.md §12).

        With repair enabled and the delta log covering the gap, every cached
        context is offered the delta batch: a successful repair keeps the key
        warm (bit-identical to a cold rebuild), a refusal drops the key so
        the next query needing it re-prepares cold.  Routers survive
        weight-only batches (helper sets are hop-topology functions) and are
        dropped otherwise.  Without usable deltas, everything is invalidated
        as before.  Each per-key decision is appended to :attr:`repairs` and
        repair rounds are charged to the preprocessing ledger.
        """
        with self._lock:
            if self.graph.version == self._graph_version:
                return
            deltas = self.graph.deltas_since(self._graph_version) if self.enable_repair else None
            if not deltas:
                self.invalidate()
                return
            surviving: dict[ContextKey, SkeletonContext] = {}
            with self._preparing():
                for key in sorted(self._contexts, key=self._key_tag):
                    context = self._contexts[key]
                    rounds_before = self.network.metrics.total_rounds
                    repaired = context.repair(
                        deltas, damage_threshold=self.repair_threshold
                    )
                    rounds = self.network.metrics.total_rounds - rounds_before
                    if repaired is None:
                        action = "rebuilt"
                    else:
                        action = "repaired"
                        surviving[key] = repaired
                    self.repairs.append(
                        RepairRecord(self._key_tag(key), action, len(deltas), rounds)
                    )
            self._contexts = surviving
            if any(delta.topological for delta in deltas):
                self._routers.clear()
            self._graph_version = self.graph.version

    def add_edge(self, u: int, v: int, weight: int = 1) -> None:
        """Mutate the graph; cached preprocessing is delta-repaired lazily."""
        with self._lock:
            self.graph.add_edge(u, v, weight)

    def update_weight(self, u: int, v: int, weight: int) -> None:
        """Re-weight an existing edge; the cheapest mutation to repair after.

        A weight-only delta keeps the hop topology, so the next query's
        repair pass retains the CLIQUE transport, the APSP router and the
        token routers, and only patches distances (DESIGN.md §12).
        """
        with self._lock:
            self.graph.update_weight(u, v, weight)

    def remove_edge(self, u: int, v: int) -> None:
        """Mutate the graph; cached preprocessing is delta-repaired lazily."""
        with self._lock:
            self.graph.remove_edge(u, v)

    # ------------------------------------------------------------ preparation
    @contextmanager
    def _preparing(self) -> Iterator[RoundMetrics]:
        """Scope whose charges count as shared preprocessing.

        Re-entrant: a nested ``_preparing`` (a query's preparation step
        calling :meth:`context`, which opens its own) joins the active outer
        scope instead of double-counting its charges.
        """
        if self._active_preparation is not None:
            yield self._active_preparation
            return
        with self.network.metrics.scoped() as scope:
            self._active_preparation = scope
            try:
                yield scope
            finally:
                # Merge even when preparation raises, so a failed build can
                # never leave rounds charged to the network but missing from
                # the session's preprocessing ledger (the "amortized +
                # preprocessing = total" invariant).
                self._active_preparation = None
                self.preprocessing.merge(scope)

    @staticmethod
    def _key_tag(key: ContextKey) -> str:
        probability, forced = key
        tag = f"p{probability:.6g}"
        if forced:
            tag += "+" + ",".join(str(node) for node in sorted(forced))
        return tag

    def context(
        self, probability: float | None = None, forced_members: Sequence[int] = ()
    ) -> SkeletonContext:
        """The prepared context for one cache key, building it if needed.

        Preparation phases are named after the key alone (not after the query
        that happened to trigger the build), so the skeleton a key yields is
        the same no matter which query arrives first -- warm answers equal
        cold ones by construction.

        Staleness is re-checked on *every* cache hit, not only in the
        version sync: a mutation racing in from outside the session lock
        between the sync and the cache read would otherwise serve a context
        for a graph that no longer exists (DESIGN.md §12).  A stale hit
        loops back through :meth:`_check_version` (repair or rebuild) until
        the returned context is current.
        """
        with self._lock:
            key: ContextKey = (
                self.skeleton_probability if probability is None else probability,
                frozenset(forced_members),
            )
            while True:
                self._check_version()
                context = self._contexts.get(key)
                if context is None:
                    tag = self._key_tag(key)
                    with self._preparing():
                        context = prepare_skeleton_context(
                            self.network,
                            key[0],
                            forced_members=sorted(key[1]),
                            phase=f"session:{tag}:skeleton",
                            keep_local_knowledge=True,
                            label=f"session:{tag}",
                        )
                    self._contexts[key] = context
                if context.is_current():
                    return context
                if self.graph.version == self._graph_version:
                    # The session-level version is in step but this entry is
                    # not (possible only if the entry was planted out of
                    # band): drop it so the loop rebuilds rather than spins.
                    del self._contexts[key]

    def _context_with_members(self, members: Sequence[int]) -> SkeletonContext:
        """The canonical context extended to contain ``members`` (Lemma 4.5).

        The extension reuses the base exploration, so it costs no extra
        rounds; if the enlarged skeleton would be disconnected at the base
        hop length (rare at simulation scale), a dedicated context with the
        members forced in is prepared and cached instead.
        """
        base = self.context()
        extended = base.extended(members)
        if extended is not None:
            return extended
        return self.context(forced_members=sorted(members))

    # ----------------------------------------------------------------- queries
    def _record(
        self,
        kind: str,
        scope: RoundMetrics,
        preparation_rounds: int,
        shared_preparation_rounds: int,
        result: object,
    ) -> QueryRecord:
        record = QueryRecord(
            kind=kind,
            metrics=scope,
            preparation_rounds=preparation_rounds,
            shared_preparation_rounds=shared_preparation_rounds,
            result=result if self.keep_results else None,
        )
        self.queries.append(record)
        return record

    def _query_phase(self, kind: str) -> str:
        return f"query{len(self.queries)}:{kind}"

    def apsp(self, probability: float | None = None) -> APSPResult:
        """Exact APSP (Theorem 1.1) on the session's prepared skeleton.

        Args:
            probability: Optional skeleton sampling probability override; the
                default is the session's canonical ``1/√n`` skeleton.

        Returns:
            :class:`~repro.core.apsp.APSPResult` with the exact ``n×n``
            distance matrix (``inf`` entries for unreachable pairs).

        Raises:
            ValueError: if ``probability`` is outside ``(0, 1]``.

        Accounting follows DESIGN.md §6; the serving layer (DESIGN.md §11)
        coalesces identical concurrent APSP queries onto one call.
        """
        with self._lock:
            with self._preparing() as prep:
                context = self.context(probability)
                context.published_skeleton_distances(context.label + ":publish-skeleton")
                context.apsp_router(context.label + ":routing")
            with self.network.metrics.scoped() as scope:
                result = apsp_exact(
                    self.network, phase=self._query_phase("apsp"), context=context
                )
            self._record(
                "apsp", scope, prep.total_rounds, context.apsp_preparation_rounds, result
            )
            return result

    def sssp(
        self,
        source: int,
        algorithm: CliqueShortestPathAlgorithm | None = None,
    ) -> SSSPResult:
        """Exact SSSP (Theorem 1.3); the source joins the shared skeleton.

        Args:
            source: The source node (``0 <= source < n``).
            algorithm: Exact CLIQUE SSSP algorithm to simulate; defaults to
                :class:`~repro.clique.BroadcastBellmanFordSSSP`.

        Returns:
            :class:`~repro.core.sssp.SSSPResult` with one exact distance per
            node (``inf`` for unreachable nodes).

        Raises:
            ValueError: if ``source`` is outside the network or the algorithm
                is not exact.

        Accounting follows DESIGN.md §6.  Many concurrent SSSP queries can be
        answered bit-identically in one coalesced pass by
        :meth:`sssp_batch` (DESIGN.md §11).
        """
        if not 0 <= source < self.network.n:
            raise ValueError(f"source {source} outside the network")
        algorithm = algorithm or BroadcastBellmanFordSSSP()
        with self._lock:
            with self._preparing() as prep:
                context = self._context_with_members([source])
                context.transport(context.label + ":simulation")
            with self.network.metrics.scoped() as scope:
                result = sssp_exact(
                    self.network,
                    source,
                    algorithm,
                    phase=self._query_phase("sssp"),
                    context=context,
                )
            self._record(
                "sssp", scope, prep.total_rounds, context.simulation_preparation_rounds, result
            )
            return result

    def sssp_batch(
        self,
        sources: Sequence[int],
        algorithm: CliqueShortestPathAlgorithm | None = None,
    ) -> list[SSSPResult]:
        """Answer many SSSP queries in one coalesced simulation pass.

        Every source is force-added to the shared skeleton (Lemma 4.5 applied
        per source, DESIGN.md §11), so the single multi-source run of the
        Theorem 4.1 framework stays *exact* for each of them: the returned
        distances are bit-identical to asking :meth:`sssp` once per source,
        while the skeleton exploration, CLIQUE transport and simulation are
        paid once for the whole batch (the cross-query batching plane of the
        serving layer).

        Args:
            sources: The query sources; duplicates are allowed and answered
                from the same lane.
            algorithm: Exact CLIQUE algorithm able to handle ``len(set(
                sources))`` sources; defaults to
                :class:`~repro.clique.BroadcastBellmanFordSSSP` for a single
                distinct source (matching :meth:`sssp`) and
                :class:`~repro.clique.GatherShortestPaths` otherwise.

        Returns:
            One :class:`~repro.core.sssp.SSSPResult` per entry of
            ``sources``, in input order.  Each carries the full batch's
            ``rounds`` -- the pass is shared, so per-query attribution is the
            batch cost (shared-cost accounting, DESIGN.md §11).

        Raises:
            ValueError: if ``sources`` is empty, any source is outside the
                network, or the algorithm is not exact.
        """
        if not sources:
            raise ValueError("at least one source is required")
        for source in sources:
            if not 0 <= source < self.network.n:
                raise ValueError(f"source {source} outside the network")
        unique = sorted(set(sources))
        if algorithm is None:
            algorithm = (
                BroadcastBellmanFordSSSP() if len(unique) == 1 else GatherShortestPaths()
            )
        if not algorithm.spec.exact:
            raise ValueError("sssp_batch requires an exact CLIQUE algorithm")
        with self._lock:
            with self._preparing() as prep:
                context = self._context_with_members(unique)
                context.transport(context.label + ":simulation")
            with self.network.metrics.scoped() as scope:
                batch = shortest_paths_via_clique(
                    self.network,
                    unique,
                    algorithm,
                    phase=self._query_phase("sssp-batch"),
                    context=context,
                )
            self._record(
                "sssp-batch",
                scope,
                prep.total_rounds,
                context.simulation_preparation_rounds,
                batch,
            )
        n = self.network.n
        per_source: dict[int, SSSPResult] = {}
        for source in unique:
            distances = {
                node: batch.estimates[node].get(source, INFINITY) for node in range(n)
            }
            per_source[source] = SSSPResult(
                source=source,
                distances=distances,
                rounds=batch.rounds,
                skeleton_size=batch.skeleton_size,
                hop_length=batch.hop_length,
                clique_rounds=batch.clique_rounds,
            )
        return [per_source[source] for source in sources]

    def shortest_paths(
        self,
        sources: Sequence[int],
        algorithm: CliqueShortestPathAlgorithm | None = None,
    ) -> ShortestPathsResult:
        """The k-SSP framework (Theorem 4.1) on the session's skeleton.

        Args:
            sources: The query sources.  A single (possibly repeated) source
                is forced into the skeleton and answered exactly; several
                distinct sources run through representatives and inherit the
                Theorem 4.1 approximation guarantee (use :meth:`sssp_batch`
                for exact multi-source answers).
            algorithm: CLIQUE algorithm to simulate; defaults to
                :class:`~repro.clique.GatherShortestPaths`.

        Returns:
            :class:`~repro.core.kssp.ShortestPathsResult` with per-node
            estimate maps and the framework's run statistics.

        Raises:
            ValueError: if ``sources`` is empty or any source is outside the
                network.

        Accounting follows DESIGN.md §6; batching semantics DESIGN.md §11.
        """
        for source in sources:
            if not 0 <= source < self.network.n:
                raise ValueError(f"source {source} outside the network")
        algorithm = algorithm or GatherShortestPaths()
        with self._lock:
            with self._preparing() as prep:
                if len(set(sources)) == 1:
                    context = self._context_with_members(list(sources))
                else:
                    context = self.context()
                context.transport(context.label + ":simulation")
            with self.network.metrics.scoped() as scope:
                result = shortest_paths_via_clique(
                    self.network,
                    sources,
                    algorithm,
                    phase=self._query_phase("kssp"),
                    context=context,
                )
            self._record(
                "shortest-paths",
                scope,
                prep.total_rounds,
                context.simulation_preparation_rounds,
                result,
            )
            return result

    def diameter(self, algorithm: CliqueDiameterAlgorithm | None = None) -> DiameterResult:
        """Diameter approximation (Theorem 5.1) on the session's skeleton.

        Args:
            algorithm: CLIQUE diameter algorithm to simulate; defaults to
                :class:`~repro.clique.GatherDiameter`.

        Returns:
            :class:`~repro.core.diameter.DiameterResult` whose ``estimate``
            satisfies the declared ``(α, β)`` guarantee.

        Accounting follows DESIGN.md §6; identical concurrent diameter
        queries coalesce onto one call in the serving layer (DESIGN.md §11).
        """
        algorithm = algorithm or GatherDiameter()
        with self._lock:
            with self._preparing() as prep:
                context = self.context()
                context.transport(context.label + ":simulation")
            with self.network.metrics.scoped() as scope:
                result = approximate_diameter(
                    self.network,
                    algorithm,
                    phase=self._query_phase("diameter"),
                    context=context,
                )
            self._record(
                "diameter",
                scope,
                prep.total_rounds,
                context.simulation_preparation_rounds,
                result,
            )
            return result

    def route_tokens(self, tokens: Sequence[RoutingToken]) -> TokenRoutingResult:
        """Token routing (Theorem 2.2) with cached helper sets per population.

        The :class:`TokenRouter` (helper sets + shared hash) is keyed by the
        token list's endpoint populations and per-endpoint maxima; repeated
        workloads over the same populations skip the setup entirely.

        Args:
            tokens: The :class:`~repro.core.token_routing.RoutingToken` batch
                to deliver.  An empty batch is answered locally in 0 rounds.

        Returns:
            :class:`~repro.core.token_routing.TokenRoutingResult` whose
            ``rounds`` cover this routing instance only (the amortized cost);
            the query record's ``cold_rounds`` adds the router setup.

        Raises:
            RuntimeError: if the network topology changed under the session
                (stale version, see :meth:`invalidate`).

        Accounting follows DESIGN.md §6; the serving layer never coalesces
        token-routing requests (DESIGN.md §11).
        """
        with self._lock:
            self._check_version()
            if not tokens:
                result = TokenRoutingResult(
                    delivered={}, rounds=0, mu_senders=1, mu_receivers=1, token_count=0
                )
                with self.network.metrics.scoped() as scope:
                    pass
                self._record("route-tokens", scope, 0, 0, result)
                return result
            per_sender: dict[int, int] = {}
            per_receiver: dict[int, int] = {}
            for token in tokens:
                per_sender[token.sender] = per_sender.get(token.sender, 0) + 1
                per_receiver[token.receiver] = per_receiver.get(token.receiver, 0) + 1
            key: RouterKey = (
                frozenset(per_sender),
                frozenset(per_receiver),
                max(per_sender.values()),
                max(per_receiver.values()),
            )
            cached = self._routers.get(key)
            if cached is None:
                # The phase (and with it the router's hash-seed RNG fork) is
                # named after the cache key, like the contexts, so identical
                # workloads get identical routers regardless of arrival order.
                digest = zlib.crc32(
                    repr((sorted(key[0]), sorted(key[1]), key[2], key[3])).encode()
                )
                with self._preparing() as prep:
                    router = TokenRouter(
                        self.network,
                        senders=list(per_sender),
                        receivers=list(per_receiver),
                        max_tokens_per_sender=key[2],
                        max_tokens_per_receiver=key[3],
                        phase=f"session:routing:{digest:08x}",
                    )
                cached = (router, prep.total_rounds)
                self._routers[key] = cached
                preparation_rounds = prep.total_rounds
            else:
                preparation_rounds = 0
            router, setup_rounds = cached
            with self.network.metrics.scoped() as scope:
                result = router.route(tokens)
            self._record("route-tokens", scope, preparation_rounds, setup_rounds, result)
            return result
