"""Global-mode aggregation and broadcast (Lemma B.2, from Augustine et al. NCC'19).

The aggregation problem: a subset of nodes hold input values; all nodes must
learn ``f(values)`` for an aggregate distributive function ``f`` (max, min,
sum, ...).  Lemma B.2 states this takes ``O(log n)`` rounds in the NCC model.

We implement the classic recursive-doubling scheme on the node-ID ring: in
round ``i`` every node sends its current partial aggregate to the node
``2^i`` positions ahead.  After ``⌈log2 n⌉`` rounds every node has combined the
inputs of all ``n`` nodes.  Each node sends exactly one message per round, so
the send budget is never stressed.  A single-value broadcast uses the same
doubling pattern seeded at the source.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, TypeVar

from repro.hybrid.network import HybridNetwork

T = TypeVar("T")


def aggregate(
    network: HybridNetwork,
    values: Dict[int, T],
    combine: Callable[[T, T], T],
    phase: str = "aggregation",
) -> Optional[T]:
    """All nodes learn ``combine`` folded over ``values`` in ``O(log n)`` rounds.

    ``combine`` must be associative and commutative (max, min, +, set union...).
    Returns the aggregate (``None`` when ``values`` is empty), which after the
    protocol is known to every node.
    """
    if not values:
        return None
    n = network.n
    partial: List[Optional[T]] = [None] * n
    for node, value in values.items():
        partial[node] = value

    rounds = max(1, math.ceil(math.log2(n))) if n > 1 else 1
    for i in range(rounds):
        step = 1 << i
        outboxes = {}
        for node in range(n):
            if partial[node] is not None:
                outboxes[node] = [((node + step) % n, partial[node])]
        inboxes = network.global_round(outboxes, phase)
        for receiver, messages in inboxes.items():
            for _, value in messages:
                if partial[receiver] is None:
                    partial[receiver] = value
                else:
                    partial[receiver] = combine(partial[receiver], value)

    # After ⌈log n⌉ doubling rounds on a ring every position has folded every
    # input at least once (values may be folded multiple times, which is why
    # combine must be idempotent-friendly for exact counts -- see aggregate_sum
    # for the sum case, which uses a tree instead).
    result = None
    for value in partial:
        if value is None:
            continue
        result = value if result is None else combine(result, value)
    # Make the aggregate part of every node's knowledge.
    for node in range(n):
        network.state(node)["aggregate:" + phase] = result
    return result


def aggregate_max(network: HybridNetwork, values: Dict[int, float], phase: str = "aggregation-max") -> Optional[float]:
    """All nodes learn ``max(values)`` in ``O(log n)`` global rounds."""
    return aggregate(network, values, max, phase)


def aggregate_min(network: HybridNetwork, values: Dict[int, float], phase: str = "aggregation-min") -> Optional[float]:
    """All nodes learn ``min(values)`` in ``O(log n)`` global rounds."""
    return aggregate(network, values, min, phase)


def aggregate_sum(network: HybridNetwork, values: Dict[int, float], phase: str = "aggregation-sum") -> float:
    """All nodes learn ``sum(values)`` in ``O(log n)`` global rounds.

    Sums are not idempotent, so instead of ring doubling we aggregate up an
    implicit binary tree over node IDs (child ``2i+1, 2i+2`` -> parent ``i``)
    and then broadcast the root's total back down; both directions take
    ``O(log n)`` rounds and one message per node per round.
    """
    n = network.n
    totals = [0.0] * n
    for node, value in values.items():
        totals[node] += value
    depth = max(1, math.ceil(math.log2(n + 1)))
    # Convergecast: deepest levels first.
    for level in range(depth, 0, -1):
        outboxes = {}
        low = (1 << level) - 1
        high = min(n, (1 << (level + 1)) - 1)
        for node in range(low, high):
            parent = (node - 1) // 2
            outboxes[node] = [(parent, totals[node])]
        if outboxes:
            inboxes = network.global_round(outboxes, phase)
            for receiver, messages in inboxes.items():
                for _, value in messages:
                    totals[receiver] += value
        else:
            network.metrics.charge_global(1, phase)
    total = totals[0]
    broadcast_value(network, total, source=0, phase=phase)
    for node in range(n):
        network.state(node)["aggregate:" + phase] = total
    return total


def broadcast_value(
    network: HybridNetwork, value: T, source: int = 0, phase: str = "broadcast"
) -> T:
    """The source makes one ``O(log n)``-bit value known to all nodes.

    Binomial-tree doubling over node IDs: the set of informed nodes doubles
    every round, so ``⌈log2 n⌉`` rounds suffice and each informed node sends a
    single message per round.
    """
    n = network.n
    informed = {source}
    rounds = max(1, math.ceil(math.log2(n))) if n > 1 else 1
    for i in range(rounds):
        step = 1 << i
        outboxes = {}
        for node in informed:
            outboxes[node] = [((node + step) % n, value)]
        inboxes = network.global_round(outboxes, phase)
        for receiver in inboxes:
            informed.add(receiver)
    for node in range(n):
        network.state(node)["broadcast:" + phase] = value
    return value
