"""Global-mode aggregation and broadcast (Lemma B.2, from Augustine et al. NCC'19).

The aggregation problem: a subset of nodes hold input values; all nodes must
learn ``f(values)`` for an aggregate distributive function ``f`` (max, min,
sum, ...).  Lemma B.2 states this takes ``O(log n)`` rounds in the NCC model.

We implement the classic recursive-doubling scheme on the node-ID ring: in
round ``i`` every node sends its current partial aggregate to the node
``2^i`` positions ahead.  After ``⌈log2 n⌉`` rounds every node has combined the
inputs of all ``n`` nodes.  Each node sends exactly one message per round, so
the send budget is never stressed.  A single-value broadcast uses the same
doubling pattern seeded at the source.

All message traffic is built as :class:`~repro.hybrid.batch.MessageBatch`
columns (``np.arange``-shifted sender/target arrays, one slice per round)
rather than per-node tuple loops; a single node already knows every input, so
``n = 1`` never charges a round.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from typing import TypeVar

from repro.hybrid.batch import MessageBatch
from repro.hybrid.network import HybridNetwork

try:  # Outbox columns are numpy arrays when available, Python lists otherwise.
    import numpy as _np

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only in stripped environments
    _np = None
    _HAS_NUMPY = False

T = TypeVar("T")


def _node_range(low: int, high: int):
    """The sender column ``[low, high)`` as an array (or list without numpy)."""
    if _HAS_NUMPY:
        return _np.arange(low, high, dtype=_np.int64)
    return list(range(low, high))


def aggregate(
    network: HybridNetwork,
    values: dict[int, T],
    combine: Callable[[T, T], T],
    phase: str = "aggregation",
) -> T | None:
    """All nodes learn ``combine`` folded over ``values`` in ``O(log n)`` rounds.

    ``combine`` must be associative and commutative (max, min, +, set union...).
    Returns the aggregate (``None`` when ``values`` is empty), which after the
    protocol is known to every node.
    """
    if not values:
        return None
    n = network.n
    partial: list[T | None] = [None] * n
    for node, value in values.items():
        partial[node] = value

    if n > 1:
        for i in range(max(1, math.ceil(math.log2(n)))):
            step = 1 << i
            senders = [node for node in range(n) if partial[node] is not None]
            targets = [(node + step) % n for node in senders]
            batch = MessageBatch(senders, targets, [partial[node] for node in senders])
            delivered = network.global_round(batch, phase)
            # Ring-doubling targets are distinct (sender -> sender + step is a
            # bijection mod n), so each receiver folds at most one message.
            for receiver, payload in zip(delivered.targets, delivered.payloads, strict=True):
                receiver = int(receiver)
                if partial[receiver] is None:
                    partial[receiver] = payload
                else:
                    partial[receiver] = combine(partial[receiver], payload)

    # After ⌈log n⌉ doubling rounds on a ring every position has folded every
    # input at least once (values may be folded multiple times, which is why
    # combine must be idempotent-friendly for exact counts -- see aggregate_sum
    # for the sum case, which uses a tree instead).
    result = None
    for value in partial:
        if value is None:
            continue
        result = value if result is None else combine(result, value)
    # Make the aggregate part of every node's knowledge.
    for node in range(n):
        network.state(node)["aggregate:" + phase] = result
    return result


def aggregate_max(
    network: HybridNetwork, values: dict[int, float], phase: str = "aggregation-max"
) -> float | None:
    """All nodes learn ``max(values)`` in ``O(log n)`` global rounds."""
    return aggregate(network, values, max, phase)


def aggregate_min(
    network: HybridNetwork, values: dict[int, float], phase: str = "aggregation-min"
) -> float | None:
    """All nodes learn ``min(values)`` in ``O(log n)`` global rounds."""
    return aggregate(network, values, min, phase)


def aggregate_sum(
    network: HybridNetwork, values: dict[int, float], phase: str = "aggregation-sum"
) -> float:
    """All nodes learn ``sum(values)`` in ``O(log n)`` global rounds.

    Sums are not idempotent, so instead of ring doubling we aggregate up an
    implicit binary tree over node IDs (child ``2i+1, 2i+2`` -> parent ``i``)
    and then broadcast the root's total back down; both directions take
    ``O(log n)`` rounds and one message per node per round.  Because a lost
    partial sum is unrecoverable (unlike the idempotent ring primitives,
    where every input keeps folding), the convergecast levels travel as
    *reliable* exchanges: on the ideal model that is exactly one global
    round per level, under an active fault model dropped subtree totals
    retransmit -- so the returned sum is exact or the exchange raises.

    The convergecast starts at the deepest *occupied* level
    ``⌊log2 n⌋`` (node ``i`` lives at level ``⌊log2(i+1)⌋``, so that is the
    level of node ``n-1``); every level down to the root is then non-empty
    and charges exactly one global round -- ``⌊log2 n⌋`` rounds in total.
    """
    n = network.n
    totals = [0.0] * n
    for node, value in values.items():
        totals[node] += value
    # Convergecast: deepest occupied level first.  (Levels are never empty:
    # level ℓ holds nodes [2^ℓ - 1, 2^{ℓ+1} - 1) and 2^ℓ - 1 < n for every
    # ℓ ≤ ⌊log2 n⌋.)
    depth = int(math.log2(n)) if n > 1 else 0
    for level in range(depth, 0, -1):
        low = (1 << level) - 1
        high = min(n, (1 << (level + 1)) - 1)
        senders = _node_range(low, high)
        if _HAS_NUMPY:
            targets = (senders - 1) // 2
        else:
            targets = [(node - 1) // 2 for node in senders]
        payloads = [totals[node] for node in range(low, high)]
        delivered, _ = network.run_reliable_exchange(
            MessageBatch(senders, targets, payloads), phase
        )
        for parent, value in zip(delivered.targets, delivered.payloads, strict=True):
            totals[int(parent)] += value
    total = totals[0]
    broadcast_value(network, total, source=0, phase=phase)
    for node in range(n):
        network.state(node)["aggregate:" + phase] = total
    return total


def broadcast_value(
    network: HybridNetwork, value: T, source: int = 0, phase: str = "broadcast"
) -> T:
    """The source makes one ``O(log n)``-bit value known to all nodes.

    Binomial-tree doubling over node IDs: the set of informed nodes doubles
    every round, so ``⌈log2 n⌉`` rounds suffice and each informed node sends a
    single message per round.  A single node is already informed and charges
    no rounds.
    """
    n = network.n
    if n > 1:
        informed = {source}
        for i in range(max(1, math.ceil(math.log2(n)))):
            step = 1 << i
            senders = sorted(informed)
            targets = [(node + step) % n for node in senders]
            delivered = network.global_round(
                MessageBatch(senders, targets, [value] * len(senders)), phase
            )
            informed.update(int(target) for target in delivered.targets)
    for node in range(n):
        network.state(node)["broadcast:" + phase] = value
    return value
