"""Local-mode exploration primitives ("flood for d rounds").

Every algorithm in the paper contains loops of the form *"for d rounds: v
forwards all information it knows via its incident local edges"*.  After such a
loop each node knows everything initially known by nodes within ``d`` hops.
The helpers here compute those outcomes directly from the graph and charge the
``d`` rounds, per the fidelity policy in DESIGN.md.

All helpers are *batched*: one call computes the outcome for every node at
once through the multi-source kernels of
:class:`~repro.graphs.graph.WeightedGraph`, which under the CSR backend
advance all sources together one synchronous round at a time (exactly the
structure of the flooding loops being simulated).
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from typing import TypeVar

from repro.hybrid.network import HybridNetwork

T = TypeVar("T")


def explore_hop_distances(
    network: HybridNetwork, depth: int, phase: str = "local-exploration"
) -> list[dict[int, int]]:
    """Every node learns the hop distance to every node within ``depth`` hops.

    Charges ``depth`` local rounds and returns, per node, the mapping
    ``other -> hop(node, other)`` restricted to the ``depth``-hop ball.
    """
    network.charge_local_rounds(depth, phase)
    return network.local_graph.bfs_hops_many(range(network.n), depth)


def explore_limited_distances(
    network: HybridNetwork, depth: int, phase: str = "local-exploration", exact: bool = True
) -> list[dict[int, float]]:
    """Every node learns its ``depth``-hop-limited distances (Section 1.3).

    Charges ``depth`` local rounds.  This is the outcome of flooding all graph
    information for ``depth`` rounds and locally computing hop-limited
    distances, which is what Compute-Skeleton (Algorithm 6) and the local
    exploration steps of Algorithms 5 and 9 do.

    The returned values are the paper's *literal* ``d_h``: ``depth``
    synchronous Bellman-Ford rounds per source, batched over all sources.
    Earlier revisions defaulted to a pruned-Dijkstra approximation
    (``exact=False``) because the literal computation was too slow one Python
    traversal at a time; the batched kernels made the faithful quantity the
    fast path, so the approximation was removed.  ``exact`` remains accepted
    for backwards compatibility; requesting the removed approximation warns.
    """
    if not exact:
        warnings.warn(
            "explore_limited_distances(exact=False) is deprecated: the pruned "
            "approximation was removed and the literal d_h is returned instead",
            DeprecationWarning,
            stacklevel=2,
        )
    network.charge_local_rounds(depth, phase)
    return network.local_graph.hop_limited_distances_many(range(network.n), depth)


def explore_limited_distance_matrix(
    network: HybridNetwork, depth: int, phase: str = "local-exploration"
):
    """Matrix form of :func:`explore_limited_distances` (``inf`` outside balls).

    Charges ``depth`` local rounds and returns the dense ``(n, n)`` numpy
    array ``M[v, u] = d_depth(v, u)``.  Used by consumers that immediately
    combine the exploration with other matrices (skeleton construction, APSP).
    """
    network.charge_local_rounds(depth, phase)
    return network.local_graph.hop_limited_distance_matrix(range(network.n), depth)


def flood_values(
    network: HybridNetwork,
    depth: int,
    initial: dict[int, T],
    phase: str = "local-flood",
) -> list[dict[int, T]]:
    """Flood per-node values for ``depth`` rounds.

    ``initial`` maps an origin node to the value it floods.  After the charged
    ``depth`` rounds, each node knows the values of all origins within
    ``depth`` hops; the result is one ``origin -> value`` dict per node.
    """
    network.charge_local_rounds(depth, phase)
    result: list[dict[int, T]] = [dict() for _ in range(network.n)]
    origins = list(initial)
    balls = network.local_graph.balls_many(origins, depth)
    for origin, ball in zip(origins, balls, strict=True):
        value = initial[origin]
        for reached in ball:
            result[reached][origin] = value
    return result


def flood_token_sets(
    network: HybridNetwork,
    depth: int,
    initial: dict[int, Sequence[T]],
    phase: str = "local-flood",
) -> list[list[T]]:
    """Flood *collections* of tokens for ``depth`` rounds.

    Like :func:`flood_values` but each origin contributes a list of tokens and
    each node receives the concatenation over all origins in its ball.  Used
    when helpers flood the tokens they hold back to their sender/receiver.
    """
    network.charge_local_rounds(depth, phase)
    result: list[list[T]] = [list() for _ in range(network.n)]
    origins = [origin for origin, tokens in initial.items() if tokens]
    balls = network.local_graph.balls_many(origins, depth)
    for origin, ball in zip(origins, balls, strict=True):
        tokens = initial[origin]
        for reached in ball:
            result[reached].extend(tokens)
    return result


def multi_source_hop_distances(
    network: HybridNetwork,
    sources: Sequence[int],
    depth: int | None = None,
) -> dict[int, tuple]:
    """Closest source (by hops, ties by smaller source ID) for every node.

    Returns ``node -> (hop_distance, source)`` for every node reached within
    ``depth`` hops (or anywhere, when ``depth`` is None).  No rounds are
    charged -- callers charge the surrounding protocol loop themselves.
    This is the "join the cluster of the closest ruler" step of Algorithm 1.
    """
    graph = network.local_graph  # hoisted: the view cannot change mid-call
    assignment: dict[int, tuple] = {}
    frontier: list[int] = []
    for source in sorted(sources):
        if source not in assignment:
            assignment[source] = (0, source)
            frontier.append(source)
    hops = 0
    while frontier and (depth is None or hops < depth):
        hops += 1
        next_frontier: list[int] = []
        for node in frontier:
            _, source = assignment[node]
            for neighbour in graph.neighbors(node):
                candidate = (hops, source)
                if neighbour not in assignment or candidate < assignment[neighbour]:
                    if neighbour not in assignment:
                        next_frontier.append(neighbour)
                    assignment[neighbour] = candidate
        frontier = next_frontier
    return assignment


def converge_cast_max(
    network: HybridNetwork,
    values: dict[int, float],
    depth: int,
    phase: str = "local-max",
) -> list[float]:
    """Each node learns the maximum of ``values`` over its ``depth``-hop ball.

    Charges ``depth`` local rounds.  Used by the diameter algorithm where each
    node computes the largest hop distance it "sees" locally (Algorithm 9).
    """
    network.charge_local_rounds(depth, phase)
    result: list[float] = [float("-inf")] * network.n
    origins = list(values)
    balls = network.local_graph.balls_many(origins, depth)
    for origin, ball in zip(origins, balls, strict=True):
        value = values[origin]
        for reached in ball:
            if value > result[reached]:
                result[reached] = value
    return result
