"""Local-mode exploration primitives ("flood for d rounds").

Every algorithm in the paper contains loops of the form *"for d rounds: v
forwards all information it knows via its incident local edges"*.  After such a
loop each node knows everything initially known by nodes within ``d`` hops.
The helpers here compute those outcomes directly from the graph and charge the
``d`` rounds, per the fidelity policy in DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.hybrid.network import HybridNetwork

T = TypeVar("T")


def explore_hop_distances(
    network: HybridNetwork, depth: int, phase: str = "local-exploration"
) -> List[Dict[int, int]]:
    """Every node learns the hop distance to every node within ``depth`` hops.

    Charges ``depth`` local rounds and returns, per node, the mapping
    ``other -> hop(node, other)`` restricted to the ``depth``-hop ball.
    """
    network.charge_local_rounds(depth, phase)
    return [network.graph.bfs_hops(node, depth) for node in range(network.n)]


def explore_limited_distances(
    network: HybridNetwork, depth: int, phase: str = "local-exploration", exact: bool = False
) -> List[Dict[int, float]]:
    """Every node learns its ``depth``-hop-limited distances (Section 1.3).

    Charges ``depth`` local rounds.  This is the outcome of flooding all graph
    information for ``depth`` rounds and locally computing hop-limited
    distances, which is what Compute-Skeleton (Algorithm 6) and the local
    exploration steps of Algorithms 5 and 9 do.

    By default the fast simulation path
    (:meth:`~repro.graphs.graph.WeightedGraph.shortest_distances_within_hops`)
    is used; pass ``exact=True`` to compute the literal ``d_h`` of the paper
    (noticeably slower on large or high-diameter graphs, identical wherever the
    algorithms' correctness arguments rely on the value).
    """
    network.charge_local_rounds(depth, phase)
    if exact:
        return [network.graph.hop_limited_distances(node, depth) for node in range(network.n)]
    return [
        network.graph.shortest_distances_within_hops(node, depth) for node in range(network.n)
    ]


def flood_values(
    network: HybridNetwork,
    depth: int,
    initial: Dict[int, T],
    phase: str = "local-flood",
) -> List[Dict[int, T]]:
    """Flood per-node values for ``depth`` rounds.

    ``initial`` maps an origin node to the value it floods.  After the charged
    ``depth`` rounds, each node knows the values of all origins within
    ``depth`` hops; the result is one ``origin -> value`` dict per node.
    """
    network.charge_local_rounds(depth, phase)
    result: List[Dict[int, T]] = [dict() for _ in range(network.n)]
    for origin, value in initial.items():
        for reached in network.graph.ball(origin, depth):
            result[reached][origin] = value
    return result


def flood_token_sets(
    network: HybridNetwork,
    depth: int,
    initial: Dict[int, Sequence[T]],
    phase: str = "local-flood",
) -> List[List[T]]:
    """Flood *collections* of tokens for ``depth`` rounds.

    Like :func:`flood_values` but each origin contributes a list of tokens and
    each node receives the concatenation over all origins in its ball.  Used
    when helpers flood the tokens they hold back to their sender/receiver.
    """
    network.charge_local_rounds(depth, phase)
    result: List[List[T]] = [list() for _ in range(network.n)]
    for origin, tokens in initial.items():
        if not tokens:
            continue
        for reached in network.graph.ball(origin, depth):
            result[reached].extend(tokens)
    return result


def multi_source_hop_distances(
    network: HybridNetwork,
    sources: Sequence[int],
    depth: Optional[int] = None,
) -> Dict[int, tuple]:
    """Closest source (by hops, ties by smaller source ID) for every node.

    Returns ``node -> (hop_distance, source)`` for every node reached within
    ``depth`` hops (or anywhere, when ``depth`` is None).  No rounds are
    charged -- callers charge the surrounding protocol loop themselves.
    This is the "join the cluster of the closest ruler" step of Algorithm 1.
    """
    assignment: Dict[int, tuple] = {}
    frontier: List[int] = []
    for source in sorted(sources):
        if source not in assignment:
            assignment[source] = (0, source)
            frontier.append(source)
    hops = 0
    while frontier and (depth is None or hops < depth):
        hops += 1
        next_frontier: List[int] = []
        for node in frontier:
            _, source = assignment[node]
            for neighbour in network.graph.neighbors(node):
                candidate = (hops, source)
                if neighbour not in assignment or candidate < assignment[neighbour]:
                    if neighbour not in assignment:
                        next_frontier.append(neighbour)
                    assignment[neighbour] = candidate
        frontier = next_frontier
    return assignment


def converge_cast_max(
    network: HybridNetwork,
    values: Dict[int, float],
    depth: int,
    phase: str = "local-max",
) -> List[float]:
    """Each node learns the maximum of ``values`` over its ``depth``-hop ball.

    Charges ``depth`` local rounds.  Used by the diameter algorithm where each
    node computes the largest hop distance it "sees" locally (Algorithm 9).
    """
    network.charge_local_rounds(depth, phase)
    result: List[float] = [float("-inf")] * network.n
    for origin, value in values.items():
        for reached in network.graph.ball(origin, depth):
            if value > result[reached]:
                result[reached] = value
    return result
