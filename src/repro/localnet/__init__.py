"""LOCAL / CONGEST / NCC primitives the paper builds on.

* :mod:`repro.localnet.flooding` -- bounded-depth local exploration loops.
* :mod:`repro.localnet.ruling_set` -- ``(2µ+1, 2µ⌈log n⌉)``-ruling sets (Lemma 2.1).
* :mod:`repro.localnet.clustering` -- clusters around rulers (Algorithm 1, first half).
* :mod:`repro.localnet.aggregation` -- NCC aggregation and broadcast (Lemma B.2).
* :mod:`repro.localnet.token_dissemination` -- the ``Õ(√k + ℓ)`` broadcast of Lemma B.1.
"""

from repro.localnet.aggregation import (
    aggregate,
    aggregate_max,
    aggregate_min,
    aggregate_sum,
    broadcast_value,
)
from repro.localnet.clustering import Clustering, cluster_around_rulers
from repro.localnet.flooding import (
    converge_cast_max,
    explore_hop_distances,
    explore_limited_distances,
    flood_token_sets,
    flood_values,
    multi_source_hop_distances,
)
from repro.localnet.ruling_set import RulingSetResult, compute_ruling_set
from repro.localnet.token_dissemination import DisseminationResult, disseminate_tokens

__all__ = [
    "aggregate",
    "aggregate_max",
    "aggregate_min",
    "aggregate_sum",
    "broadcast_value",
    "Clustering",
    "cluster_around_rulers",
    "converge_cast_max",
    "explore_hop_distances",
    "explore_limited_distances",
    "flood_token_sets",
    "flood_values",
    "multi_source_hop_distances",
    "RulingSetResult",
    "compute_ruling_set",
    "DisseminationResult",
    "disseminate_tokens",
]
