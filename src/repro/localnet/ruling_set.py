"""Ruling sets (Definition 2.3 / Lemma 2.1).

A ``(α, β)``-ruling set is a set ``R ⊆ V`` such that rulers are pairwise at
hop distance at least ``α`` and every node has a ruler within ``β`` hops.  The
paper uses a ``(2µ+1, 2µ⌈log n⌉)``-ruling set, computable in ``O(µ log n)``
rounds in the CONGEST model (Lemma 2.1, citing Kuhn-Maus-Weidner / Awerbuch et
al.), as the backbone of the helper-set construction (Algorithm 1).

Our construction is the greedy maximal independent set of the ``2µ``-power
graph, processed in increasing node-ID order.  Its output is a
``(2µ+1, 2µ)``-ruling set -- strictly stronger than required -- and only the
output properties plus the charged ``O(µ log n)`` rounds are used downstream
(see the substitution table in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hybrid.network import HybridNetwork


@dataclass
class RulingSetResult:
    """Output of :func:`compute_ruling_set`.

    Attributes
    ----------
    rulers:
        The ruling set ``R``, sorted by node ID.
    min_separation:
        The guaranteed pairwise hop distance ``α = 2µ + 1``.
    max_covering_radius:
        The guaranteed covering radius ``β`` charged for (``2µ⌈log n⌉``); the
        greedy construction actually achieves ``2µ``.
    rounds_charged:
        Local rounds charged for the computation.
    """

    rulers: list[int]
    min_separation: int
    max_covering_radius: int
    rounds_charged: int


def compute_ruling_set(
    network: HybridNetwork, mu: int, phase: str = "ruling-set"
) -> RulingSetResult:
    """Compute a ``(2µ+1, 2µ⌈log n⌉)``-ruling set of the local graph.

    Charges ``O(µ log n)`` local rounds (Lemma 2.1).  ``µ`` must be positive;
    ``µ = 1`` degenerates to an ordinary maximal independent set.
    """
    if mu < 1:
        raise ValueError("mu must be at least 1")
    graph = network.local_graph
    separation_radius = 2 * mu
    covered = [False] * network.n
    rulers: list[int] = []
    for node in range(network.n):
        if covered[node]:
            continue
        rulers.append(node)
        # Mark the ball of radius 2µ as covered so no later node inside it
        # becomes a ruler; this enforces pairwise distance >= 2µ + 1.
        for reached in graph.ball(node, separation_radius):
            covered[reached] = True

    log_factor = network.config.log_rounds(network.n)
    rounds = max(1, 2 * mu * log_factor)
    network.charge_local_rounds(rounds, phase)
    return RulingSetResult(
        rulers=rulers,
        min_separation=separation_radius + 1,
        max_covering_radius=separation_radius * log_factor,
        rounds_charged=rounds,
    )
