"""Token dissemination: make k tokens known to every node (Lemma B.1).

The paper reuses the ``Õ(√k + ℓ)``-round token dissemination protocol of
Augustine et al. SODA'20 as a black box (Lemma B.1): ``k`` tokens of
``O(log n)`` bits, each node initially holding at most ``ℓ`` of them, must
become known to all nodes.

We implement an equivalent-complexity protocol built from the primitives of
this library (see the substitution table in DESIGN.md):

1. **Count** the tokens with an NCC aggregation -- ``O(log n)`` rounds.
2. **Relay.**  Every token is sent to a pseudo-random relay node (hash of its
   identity), ``O(log n)`` tokens per sender per round -- ``Õ(ℓ + k/n)``
   rounds, after which every relay holds ``Õ(k/n)`` tokens.
3. **Cluster.**  Build a ``(2µ+1, ·)``-ruling set with ``µ = ⌊√k⌋`` (clamped)
   and cluster every node around its closest ruler -- clusters have ``≥ µ``
   members and hop radius ``Õ(µ)``; costs ``Õ(µ)`` = ``Õ(√k)`` rounds.
4. **Fetch.**  Cluster member number ``i`` requests the contents of every
   relay ``r`` with ``r ≡ i (mod cluster size)``.  Each relay answers each
   requesting cluster once, so it sends ``Õ((k/n) · n/µ) = Õ(k/µ) = Õ(√k)``
   tokens and each member receives ``Õ(k/µ) = Õ(√k)`` tokens -- ``Õ(√k)``
   global rounds.
5. **Spread.**  Every member floods what it fetched through its cluster
   (radius ``Õ(µ)`` = ``Õ(√k)`` local rounds); collectively a cluster fetched
   every relay, so afterwards every node knows every token.

Total: ``Õ(√k + k/n + ℓ)`` rounds, matching Lemma B.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.hybrid.network import HybridNetwork
from repro.localnet.aggregation import aggregate_sum
from repro.localnet.clustering import Clustering, cluster_around_rulers
from repro.localnet.ruling_set import compute_ruling_set
from repro.util.hashing import hash_family_for_network

Token = Hashable


@dataclass
class DisseminationResult:
    """Outcome of one token-dissemination run.

    Attributes
    ----------
    tokens:
        The full token set, now known to every node.
    token_count:
        ``k``, the number of distinct tokens disseminated.
    rounds:
        Total rounds (local + global) consumed by this dissemination,
        measured as the difference of the network's round counter.
    """

    tokens: List[Token]
    token_count: int
    rounds: int


def disseminate_tokens(
    network: HybridNetwork,
    tokens_per_node: Dict[int, Sequence[Token]],
    phase: str = "token-dissemination",
    store_key: str | None = None,
) -> DisseminationResult:
    """Make every token known to every node (Lemma B.1).

    Parameters
    ----------
    network:
        The HYBRID network to run on.
    tokens_per_node:
        Initial token placement; a token held by several nodes is disseminated
        once (tokens are identified by equality).
    phase:
        Accounting label for the rounds this protocol consumes.
    store_key:
        When given, the resulting token list is additionally stored in every
        node's state under this key.
    """
    rounds_before = network.metrics.total_rounds
    n = network.n

    all_tokens: List[Token] = []
    seen = set()
    holder_of: Dict[Token, int] = {}
    max_per_node = 0
    for node, tokens in tokens_per_node.items():
        max_per_node = max(max_per_node, len(tokens))
        for token in tokens:
            if token not in seen:
                seen.add(token)
                all_tokens.append(token)
                holder_of[token] = node
    k = len(all_tokens)

    # Step 1: every node learns k (needed to agree on the cluster radius µ).
    aggregate_sum(
        network,
        {node: float(len(tokens)) for node, tokens in tokens_per_node.items()},
        phase=phase + ":count",
    )

    if k == 0:
        rounds = network.metrics.total_rounds - rounds_before
        return DisseminationResult(tokens=[], token_count=0, rounds=rounds)

    # Step 2: relay every token to a pseudo-random node.
    hash_function = hash_family_for_network(n, network.fork_rng(phase + ":hash"))
    relay_outboxes: Dict[int, List[Tuple[int, Token]]] = {}
    for index, token in enumerate(all_tokens):
        relay = hash_function((index, 1))
        holder = holder_of[token]
        relay_outboxes.setdefault(holder, []).append((relay, token))
    relay_inboxes, _ = network.run_global_exchange(relay_outboxes, phase + ":relay")
    relay_tokens: Dict[int, List[Token]] = {
        relay: [token for _, token in messages] for relay, messages in relay_inboxes.items()
    }

    # Step 3: clusters of >= µ members with hop radius Õ(µ).
    mu = max(1, min(int(math.isqrt(k)), n))
    ruling = compute_ruling_set(network, mu, phase=phase + ":ruling-set")
    clustering = cluster_around_rulers(network, ruling.rulers, mu, phase=phase + ":clustering")

    # Step 4: members fetch disjoint relay shares.  A request is one message
    # (relay, requester); a response ships one token per message.
    request_outboxes: Dict[int, List[Tuple[int, Tuple[str, int]]]] = {}
    for members in clustering.members.values():
        size = len(members)
        for index, member in enumerate(members):
            for relay in range(index, n, size):
                if relay in relay_tokens:
                    request_outboxes.setdefault(member, []).append((relay, ("fetch", member)))
    request_inboxes, _ = network.run_global_exchange(request_outboxes, phase + ":requests")

    response_outboxes: Dict[int, List[Tuple[int, Token]]] = {}
    for relay, requests in request_inboxes.items():
        tokens_here = relay_tokens.get(relay, [])
        if not tokens_here:
            continue
        for _, (_, requester) in requests:
            response_outboxes.setdefault(relay, []).extend(
                (requester, token) for token in tokens_here
            )
    response_inboxes, _ = network.run_global_exchange(response_outboxes, phase + ":responses")

    fetched: Dict[int, List[Token]] = {
        member: [token for _, token in messages] for member, messages in response_inboxes.items()
    }
    # Original holders keep their own tokens as well.
    for node, tokens in tokens_per_node.items():
        if tokens:
            fetched.setdefault(node, []).extend(tokens)

    # Step 5: flood the fetched tokens within each cluster.  The flood depth is
    # the cluster radius (every member reaches every other member).
    spread_depth = max(1, 2 * clustering.radius)
    network.charge_local_rounds(spread_depth, phase + ":spread")

    if store_key is not None:
        for node in range(n):
            network.state(node)[store_key] = all_tokens

    rounds = network.metrics.total_rounds - rounds_before
    return DisseminationResult(tokens=list(all_tokens), token_count=k, rounds=rounds)
