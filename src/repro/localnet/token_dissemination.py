"""Token dissemination: make k tokens known to every node (Lemma B.1).

The paper reuses the ``Õ(√k + ℓ)``-round token dissemination protocol of
Augustine et al. SODA'20 as a black box (Lemma B.1): ``k`` tokens of
``O(log n)`` bits, each node initially holding at most ``ℓ`` of them, must
become known to all nodes.

We implement an equivalent-complexity protocol built from the primitives of
this library (see the substitution table in DESIGN.md):

1. **Count** the tokens with an NCC aggregation -- ``O(log n)`` rounds.
2. **Relay.**  Every token is sent to a pseudo-random relay node (hash of its
   identity), ``O(log n)`` tokens per sender per round -- ``Õ(ℓ + k/n)``
   rounds, after which every relay holds ``Õ(k/n)`` tokens.
3. **Cluster.**  Build a ``(2µ+1, ·)``-ruling set with ``µ = ⌊√k⌋`` (clamped)
   and cluster every node around its closest ruler -- clusters have ``≥ µ``
   members and hop radius ``Õ(µ)``; costs ``Õ(µ)`` = ``Õ(√k)`` rounds.
4. **Fetch.**  Cluster member number ``i`` requests the contents of every
   relay ``r`` with ``r ≡ i (mod cluster size)``.  Each relay answers each
   requesting cluster once, so it sends ``Õ((k/n) · n/µ) = Õ(k/µ) = Õ(√k)``
   tokens and each member receives ``Õ(k/µ) = Õ(√k)`` tokens -- ``Õ(√k)``
   global rounds.
5. **Spread.**  Every member floods what it fetched through its cluster
   (radius ``Õ(µ)`` = ``Õ(√k)`` local rounds); collectively a cluster fetched
   every relay, so afterwards every node knows every token.

Total: ``Õ(√k + k/n + ℓ)`` rounds, matching Lemma B.1.

Relay placement hashes a *canonical* per-token key (a stable digest of the
token itself), not the token's discovery-order index, so the relay
assignment -- and therefore the measured round count -- is independent of the
order in which ``tokens_per_node`` was populated.  All three global phases
build their traffic as :class:`~repro.hybrid.batch.MessageBatch` columns and
the whole relay batch is hashed with one ``KWiseHashFunction.many`` call.

All three global phases go through
:meth:`~repro.hybrid.network.HybridNetwork.run_reliable_exchange`: on the
ideal model that is exactly ``run_global_exchange`` (bit-identical rounds and
phases), while under an active :class:`~repro.hybrid.faults.FaultModel` each
phase retransmits unacknowledged messages within the model's retry budget --
the dissemination either completes exactly or raises
:class:`~repro.hybrid.errors.FaultToleranceExceededError` (DESIGN.md §8).
"""

from __future__ import annotations

import math
import zlib
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.hybrid.batch import MessageBatch
from repro.hybrid.network import HybridNetwork
from repro.localnet.aggregation import aggregate_sum
from repro.localnet.clustering import cluster_around_rulers
from repro.localnet.ruling_set import compute_ruling_set
from repro.util.hashing import hash_family_for_network

try:
    import numpy as _np

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only in stripped environments
    _np = None
    _HAS_NUMPY = False

Token = Hashable


def _canonical_token_key(token: Token) -> int:
    """A stable integer key identifying ``token`` regardless of discovery order.

    Equal tokens repr identically, so the digest only depends on the token
    itself; a (harmless) digest collision merely makes two tokens share a
    relay.
    """
    return zlib.crc32(repr(token).encode("utf-8", "backslashreplace"))


def _canonical_token_keys(tokens: Sequence[Token]):
    """Canonical keys for a whole batch.

    Integer tokens are their own canonical key (clipped into the hash field's
    key range), skipping the digest entirely; anything else goes through
    :func:`_canonical_token_key`.  Either way the key depends only on the
    token's value, never on discovery order.
    """
    if _HAS_NUMPY and all(
        type(token) is int and token.bit_length() < 63 for token in tokens
    ):
        return _np.asarray(tokens, dtype=_np.int64) & ((1 << 62) - 1)
    crc32 = zlib.crc32
    return [crc32(text.encode("utf-8", "backslashreplace")) for text in map(repr, tokens)]


@dataclass
class DisseminationResult:
    """Outcome of one token-dissemination run.

    Attributes
    ----------
    tokens:
        The full token set, now known to every node.
    token_count:
        ``k``, the number of distinct tokens disseminated.
    rounds:
        Total rounds (local + global) consumed by this dissemination,
        measured as the difference of the network's round counter.
    """

    tokens: list[Token]
    token_count: int
    rounds: int


def disseminate_tokens(
    network: HybridNetwork,
    tokens_per_node: dict[int, Sequence[Token]],
    phase: str = "token-dissemination",
    store_key: str | None = None,
) -> DisseminationResult:
    """Make every token known to every node (Lemma B.1).

    Parameters
    ----------
    network:
        The HYBRID network to run on.
    tokens_per_node:
        Initial token placement; a token held by several nodes is disseminated
        once (tokens are identified by equality).
    phase:
        Accounting label for the rounds this protocol consumes.
    store_key:
        When given, the resulting token list is additionally stored in every
        node's state under this key.
    """
    rounds_before = network.metrics.total_rounds
    n = network.n

    all_tokens: list[Token] = []
    seen = set()
    holders: list[int] = []
    for node, tokens in tokens_per_node.items():
        for token in tokens:
            if token not in seen:
                seen.add(token)
                all_tokens.append(token)
                holders.append(node)
    k = len(all_tokens)

    # Step 1: every node learns k (needed to agree on the cluster radius µ).
    aggregate_sum(
        network,
        {node: float(len(tokens)) for node, tokens in tokens_per_node.items()},
        phase=phase + ":count",
    )

    if k == 0:
        rounds = network.metrics.total_rounds - rounds_before
        return DisseminationResult(tokens=[], token_count=0, rounds=rounds)

    # Step 2: relay every token to a pseudo-random node.  The whole batch is
    # hashed in one vectorised field evaluation over canonical token keys.
    hash_function = hash_family_for_network(n, network.fork_rng(phase + ":hash"))
    relays = hash_function.many((_canonical_token_keys(all_tokens), [1] * k))
    relay_batch = MessageBatch(holders, relays, list(all_tokens))
    relay_inboxes, _ = network.run_reliable_exchange(relay_batch, phase + ":relay")
    relay_tokens: dict[int, list[Token]] = {
        relay: tokens for relay, _, tokens in relay_inboxes.groupby_target()
    }

    # Step 3: clusters of >= µ members with hop radius Õ(µ).
    mu = max(1, min(int(math.isqrt(k)), n))
    ruling = compute_ruling_set(network, mu, phase=phase + ":ruling-set")
    clustering = cluster_around_rulers(network, ruling.rulers, mu, phase=phase + ":clustering")

    # Step 4: members fetch disjoint relay shares.  A request is one message
    # (relay, requester); a response ships one token per message.
    if _HAS_NUMPY:
        occupied_relays = _np.array(sorted(relay_tokens), dtype=_np.int64)
    else:
        occupied_relays = sorted(relay_tokens)
    request_senders: list[int] = []
    request_targets: list[int] = []
    request_payloads: list[int] = []
    for members in clustering.members.values():
        size = len(members)
        if _HAS_NUMPY:
            shares = occupied_relays % size
            for index, member in enumerate(members):
                share = occupied_relays[shares == index]
                request_senders.extend([member] * share.size)
                request_targets.extend(share.tolist())
                request_payloads.extend([member] * share.size)
        else:
            for index, member in enumerate(members):
                share = [relay for relay in occupied_relays if relay % size == index]
                request_senders.extend([member] * len(share))
                request_targets.extend(share)
                request_payloads.extend([member] * len(share))
    request_inboxes, _ = network.run_reliable_exchange(
        MessageBatch(request_senders, request_targets, request_payloads),
        phase + ":requests",
    )

    # Each relay answers every requester with its full token list, one token
    # per message, in request-arrival order.
    response_senders: list[int] = []
    response_targets: list[int] = []
    response_payloads: list[Token] = []
    for relay, _, requesters in request_inboxes.groupby_target():
        tokens_here = relay_tokens.get(relay, [])
        if not tokens_here:
            continue
        response_senders.extend([relay] * (len(requesters) * len(tokens_here)))
        for requester in requesters:
            response_targets.extend([requester] * len(tokens_here))
            response_payloads.extend(tokens_here)
    response_inboxes, _ = network.run_reliable_exchange(
        MessageBatch(response_senders, response_targets, response_payloads),
        phase + ":responses",
    )

    fetched: dict[int, list[Token]] = {
        member: tokens for member, _, tokens in response_inboxes.groupby_target()
    }
    # Original holders keep their own tokens as well.
    for node, tokens in tokens_per_node.items():
        if tokens:
            fetched.setdefault(node, []).extend(tokens)

    # Step 5: flood the fetched tokens within each cluster.  The flood depth is
    # the cluster radius (every member reaches every other member).
    spread_depth = max(1, 2 * clustering.radius)
    network.charge_local_rounds(spread_depth, phase + ":spread")

    if store_key is not None:
        for node in range(n):
            network.state(node)[store_key] = all_tokens

    rounds = network.metrics.total_rounds - rounds_before
    return DisseminationResult(tokens=list(all_tokens), token_count=k, rounds=rounds)
