"""Clustering the graph around a ruling set (the first half of Algorithm 1).

Given a ``(2µ+1, β)``-ruling set, every node joins the cluster of its closest
ruler (ties broken towards the smaller ruler ID).  The resulting clustering
has two properties the helper-set construction relies on:

* every cluster contains at least ``µ`` nodes, because any ball of radius ``µ``
  around a ruler is disjoint from other rulers' balls (rulers are ``≥ 2µ+1``
  apart) and all of it joins that ruler, and
* the hop radius of a cluster is at most the covering radius ``β`` of the
  ruling set, so any two members are within ``2β`` hops of each other.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.hybrid.network import HybridNetwork
from repro.localnet.flooding import multi_source_hop_distances


@dataclass
class Clustering:
    """A partition of the nodes into clusters around rulers.

    Attributes
    ----------
    node_to_ruler:
        For each node, the ruler of the cluster it joined.
    members:
        ``ruler -> sorted list of member nodes`` (every ruler appears, and
        every node appears in exactly one cluster).
    radius:
        The maximum hop distance from any node to its ruler.
    rounds_charged:
        Local rounds charged for establishing the clustering and for letting
        every member learn its whole cluster (the two loops of Algorithm 1).
    """

    node_to_ruler: list[int]
    members: dict[int, list[int]]
    radius: int
    rounds_charged: int

    def cluster_of(self, node: int) -> list[int]:
        """The member list of the cluster containing ``node``."""
        return self.members[self.node_to_ruler[node]]

    def cluster_sizes(self) -> list[int]:
        """Sizes of all clusters."""
        return [len(members) for members in self.members.values()]


def cluster_around_rulers(
    network: HybridNetwork,
    rulers: Sequence[int],
    mu: int,
    phase: str = "clustering",
) -> Clustering:
    """Assign every node to its closest ruler and let clusters learn themselves.

    The two exploration loops of Algorithm 1 are bounded by ``2µ⌈log n⌉`` and
    ``4µ⌈log n⌉`` rounds in the paper (the covering radius of the ruling set of
    Lemma 2.1).  Our greedy ruling set has covering radius at most ``2µ``, so
    the loops only need to flood to the *actual* cluster radius; we charge
    ``3 · radius`` rounds (discover the closest ruler, then learn the cluster),
    capped from above by the paper's bound -- charging what the protocol
    actually needed keeps small-scale round counts meaningful.
    """
    if not rulers:
        raise ValueError("at least one ruler is required")
    assignment = multi_source_hop_distances(network, rulers)
    if len(assignment) != network.n:
        raise ValueError("graph must be connected for the clustering to cover all nodes")

    node_to_ruler: list[int] = [0] * network.n
    members: dict[int, list[int]] = {ruler: [] for ruler in rulers}
    radius = 0
    for node in range(network.n):
        hops, ruler = assignment[node]
        node_to_ruler[node] = ruler
        members[ruler].append(node)
        radius = max(radius, hops)
    for ruler in members:
        members[ruler].sort()

    log_factor = network.config.log_rounds(network.n)
    paper_bound = max(1, 6 * mu * log_factor)
    rounds = max(1, min(3 * radius, paper_bound))
    network.charge_local_rounds(rounds, phase)
    return Clustering(
        node_to_ruler=node_to_ruler,
        members=members,
        radius=radius,
        rounds_charged=rounds,
    )
