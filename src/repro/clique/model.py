"""Standalone CLIQUE (congested clique) model simulator.

The CLIQUE model (footnote 4 of the paper): in every synchronous round every
node may send one ``O(log n)``-bit message to every other node; with Lenzen's
routing scheme this is equivalent to every node sending and receiving up to
``n`` messages with arbitrary targets per round.

:class:`CliqueNetwork` simulates this directly.  It exists so the plug-in
algorithms of :mod:`repro.clique` can be unit-tested in their native model
(with their declared round complexity checked) before they are simulated
inside a HYBRID network via Corollary 4.1.
"""

from __future__ import annotations


from repro.hybrid.errors import CapacityExceededError


class CliqueNetwork:
    """A congested clique on ``size`` nodes with per-round accounting."""

    def __init__(self, size: int, strict: bool = True) -> None:
        if size < 1:
            raise ValueError("a clique needs at least one node")
        self.size = size
        self.strict = strict
        self._rounds = 0
        self._messages = 0

    @property
    def rounds_used(self) -> int:
        """CLIQUE rounds executed so far."""
        return self._rounds

    @property
    def messages_sent(self) -> int:
        """Total messages moved so far."""
        return self._messages

    def exchange(
        self, outboxes: dict[int, list[tuple[int, object]]]
    ) -> dict[int, list[tuple[int, object]]]:
        """Execute one CLIQUE round.

        Each node may send at most ``size`` messages (Lenzen routing) and, in
        strict mode, receive at most ``size`` messages.  Violations raise
        :class:`~repro.hybrid.errors.CapacityExceededError`.
        """
        inboxes: dict[int, list[tuple[int, object]]] = {}
        received: dict[int, int] = {}
        for sender, messages in outboxes.items():
            if not 0 <= sender < self.size:
                raise ValueError(f"sender {sender} outside the clique")
            if self.strict and len(messages) > self.size:
                raise CapacityExceededError(
                    f"clique node {sender} sent {len(messages)} messages in one "
                    f"round (cap {self.size})"
                )
            for target, payload in messages:
                if not 0 <= target < self.size:
                    raise ValueError(f"target {target} outside the clique")
                inboxes.setdefault(target, []).append((sender, payload))
                received[target] = received.get(target, 0) + 1
                self._messages += 1
        if self.strict:
            for target, count in received.items():
                if count > self.size:
                    raise CapacityExceededError(
                        f"clique node {target} received {count} messages in one "
                        f"round (cap {self.size})"
                    )
        self._rounds += 1
        return inboxes
