"""The CLIQUE (congested clique) substrate: model simulator and plug-in algorithms.

These are the algorithms ``A`` consumed by the framework of Theorems 4.1 and
5.1.  See DESIGN.md for how they substitute the algebraic CLIQUE algorithms of
the paper's corollaries.
"""

from repro.clique.apsp import BroadcastKSourceBellmanFord, GatherShortestPaths
from repro.clique.diameter import EccentricityDiameter, GatherDiameter
from repro.clique.interfaces import (
    CliqueAlgorithmSpec,
    CliqueDiameterAlgorithm,
    CliqueShortestPathAlgorithm,
    CliqueTransport,
)
from repro.clique.model import CliqueNetwork
from repro.clique.sssp import BroadcastBellmanFordSSSP

__all__ = [
    "CliqueAlgorithmSpec",
    "CliqueDiameterAlgorithm",
    "CliqueShortestPathAlgorithm",
    "CliqueTransport",
    "CliqueNetwork",
    "GatherShortestPaths",
    "BroadcastKSourceBellmanFord",
    "BroadcastBellmanFordSSSP",
    "EccentricityDiameter",
    "GatherDiameter",
]
