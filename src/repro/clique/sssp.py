"""Single-source shortest paths in the CLIQUE model.

Theorem 1.3 of the paper plugs the exact ``Õ(n^{1/6})``-round CLIQUE SSSP
algorithm of Censor-Hillel et al. [7] into the framework of Theorem 4.1.  Our
substitute (:class:`BroadcastBellmanFordSSSP`) is an exact broadcast-based
Bellman-Ford whose declared exponent is ``δ = 1``; the framework transformation
itself (skeleton, representative handling, Equation (1)) is identical, only the
final runtime exponent differs and is reported with the substitute's ``δ`` in
EXPERIMENTS.md.
"""

from __future__ import annotations


from collections.abc import Sequence
from repro.clique.apsp import _bellman_ford_phase
from repro.clique.interfaces import (
    CliqueAlgorithmSpec,
    CliqueShortestPathAlgorithm,
    CliqueTransport,
)


class BroadcastBellmanFordSSSP(CliqueShortestPathAlgorithm):
    """Exact SSSP: every node broadcasts its tentative distance each round.

    The number of CLIQUE rounds is the shortest-path hop diameter of the
    instance plus one (the final round in which nothing changes).
    """

    def __init__(self) -> None:
        self.spec = CliqueAlgorithmSpec(
            gamma=0.0, delta=1.0, eta=1.0, alpha=1.0, beta=0.0, name="bellman-ford-sssp"
        )

    def run(
        self,
        transport: CliqueTransport,
        incident_edges: Sequence[dict[int, int]],
        sources: Sequence[int],
    ) -> list[dict[int, float]]:
        if len(sources) != 1:
            raise ValueError("an SSSP algorithm expects exactly one source")
        source = sources[0]
        distances = _bellman_ford_phase(transport, incident_edges, source)
        return [{source: distances[node]} for node in range(transport.size)]
