"""Diameter algorithms for the CLIQUE model (plugged into Theorem 5.1).

The paper uses the ``(3/2 + ε, W)``-approximation and the ``(1 + o(1))``
algebraic APSP of Censor-Hillel et al. on the skeleton.  Our substitutes (see
DESIGN.md):

* :class:`GatherDiameter` -- exact weighted diameter (``α = 1, β = 0, δ = 1``)
  by gathering the whole skeleton everywhere.
* :class:`EccentricityDiameter` -- a ``(2, 0)``-approximation from a single
  Bellman-Ford sweep: the eccentricity ``e(v)`` of any node satisfies
  ``D/2 <= e(v) <= D`` (footnote 6 of the paper), so ``2 e(v)`` is a one-sided
  2-approximation computed in ``SPD(S) + 1`` CLIQUE rounds.
"""

from __future__ import annotations


from collections.abc import Sequence
from repro.clique.apsp import _bellman_ford_phase, _gather_graph
from repro.clique.interfaces import (
    CliqueAlgorithmSpec,
    CliqueDiameterAlgorithm,
    CliqueTransport,
)
from repro.graphs.graph import INFINITY


class GatherDiameter(CliqueDiameterAlgorithm):
    """Exact weighted diameter of the CLIQUE instance."""

    def __init__(self) -> None:
        self.spec = CliqueAlgorithmSpec(
            gamma=1.0, delta=1.0, eta=1.0, alpha=1.0, beta=0.0, name="gather-diameter"
        )

    def run(
        self, transport: CliqueTransport, incident_edges: Sequence[dict[int, int]]
    ) -> float:
        graph = _gather_graph(transport, incident_edges)
        worst = 0.0
        for node in range(transport.size):
            distances = graph.dijkstra(node)
            if len(distances) != transport.size:
                return INFINITY
            worst = max(worst, max(distances.values()))
        return worst


class EccentricityDiameter(CliqueDiameterAlgorithm):
    """A ``(2, 0)``-approximation via one eccentricity computation."""

    def __init__(self) -> None:
        self.spec = CliqueAlgorithmSpec(
            gamma=0.0, delta=1.0, eta=1.0, alpha=2.0, beta=0.0, name="eccentricity-diameter"
        )

    def run(
        self, transport: CliqueTransport, incident_edges: Sequence[dict[int, int]]
    ) -> float:
        distances = _bellman_ford_phase(transport, incident_edges, source=0)
        finite = [d for d in distances if d < INFINITY]
        if len(finite) != transport.size:
            return INFINITY
        eccentricity = max(finite)
        return 2.0 * eccentricity
