"""Multi-source shortest-path algorithms for the CLIQUE model.

The paper plugs the algebraic CLIQUE algorithms of Censor-Hillel et al.
[7, 8] into its framework.  Re-implementing distributed fast matrix
multiplication is out of scope for this reproduction (see the substitution
table in DESIGN.md); instead we provide CLIQUE algorithms with the same
interface and honest round accounting in the simulated CLIQUE:

* :class:`GatherShortestPaths` -- exact APSP / k-SSP with ``δ = 1``: every node
  broadcasts its incident edges (one edge per round to everybody), after which
  each node knows the whole graph and solves the problem locally.  This is the
  classic "learn everything" CLIQUE routine; its declared spec
  ``(γ=1, δ=1, η=1, α=1, β=0)`` is what Theorem 4.1 transforms.
* :class:`BroadcastKSourceBellmanFord` -- exact k-SSP with round complexity
  ``k · SPD(S)``: the ``k`` sources run Bellman-Ford phases one after another,
  each phase broadcasting current estimates.  Declared ``δ = 1`` as well; it
  exists to exercise the framework with a second, structurally different
  algorithm.
"""

from __future__ import annotations


from collections.abc import Sequence
from repro.clique.interfaces import (
    CliqueAlgorithmSpec,
    CliqueShortestPathAlgorithm,
    CliqueTransport,
)
from repro.graphs.graph import INFINITY, WeightedGraph


def _gather_graph(
    transport: CliqueTransport, incident_edges: Sequence[dict[int, int]]
) -> WeightedGraph:
    """Make the whole graph known to every node; return it (identical everywhere).

    Round ``r``: every node broadcasts its ``r``-th incident edge to all nodes.
    The number of CLIQUE rounds is the maximum degree (at least 1 so that even
    an edgeless instance costs a round).
    """
    size = transport.size
    edge_lists: list[list[tuple[int, int, int]]] = [
        sorted((node, neighbour, weight) for neighbour, weight in edges.items())
        for node, edges in enumerate(incident_edges)
    ]
    rounds = max(1, max((len(edges) for edges in edge_lists), default=1))
    known: list[tuple[int, int, int]] = []
    for r in range(rounds):
        outboxes: dict[int, list[tuple[int, object]]] = {}
        for node, edges in enumerate(edge_lists):
            if r < len(edges):
                outboxes[node] = [(target, edges[r]) for target in range(size)]
        inboxes = transport.exchange(outboxes)
        # Every node receives the same set of edges; record them once.
        for _, messages in sorted(inboxes.items())[:1]:
            for _, edge in messages:
                known.append(edge)
    graph = WeightedGraph(size)
    for u, v, w in known:
        if u != v and (not graph.has_edge(u, v) or graph.weight(u, v) > w):
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
            graph.add_edge(u, v, w)
    return graph


class GatherShortestPaths(CliqueShortestPathAlgorithm):
    """Exact multi-source shortest paths by gathering the graph everywhere."""

    def __init__(self) -> None:
        self.spec = CliqueAlgorithmSpec(
            gamma=1.0, delta=1.0, eta=1.0, alpha=1.0, beta=0.0, name="gather-exact"
        )

    def run(
        self,
        transport: CliqueTransport,
        incident_edges: Sequence[dict[int, int]],
        sources: Sequence[int],
    ) -> list[dict[int, float]]:
        graph = _gather_graph(transport, incident_edges)
        estimates: list[dict[int, float]] = [dict() for _ in range(transport.size)]
        for source in sources:
            distances = graph.dijkstra(source)
            for node in range(transport.size):
                estimates[node][source] = distances.get(node, INFINITY)
        return estimates


class BroadcastKSourceBellmanFord(CliqueShortestPathAlgorithm):
    """Exact k-SSP via per-source Bellman-Ford phases (one broadcast per round).

    Each source runs a Bellman-Ford computation in which every node broadcasts
    its current tentative distance once per round and relaxes against its
    incident edges.  A phase ends when no estimate changed, so the measured
    CLIQUE round count is ``Σ_s (SPD_s(S) + 1)``.
    """

    def __init__(self) -> None:
        self.spec = CliqueAlgorithmSpec(
            gamma=1.0, delta=1.0, eta=1.0, alpha=1.0, beta=0.0, name="bellman-ford-kssp"
        )

    def run(
        self,
        transport: CliqueTransport,
        incident_edges: Sequence[dict[int, int]],
        sources: Sequence[int],
    ) -> list[dict[int, float]]:
        size = transport.size
        estimates: list[dict[int, float]] = [dict() for _ in range(size)]
        for source in sources:
            distances = _bellman_ford_phase(transport, incident_edges, source)
            for node in range(size):
                estimates[node][source] = distances[node]
        return estimates


def _bellman_ford_phase(
    transport: CliqueTransport,
    incident_edges: Sequence[dict[int, int]],
    source: int,
) -> list[float]:
    """One broadcast-based Bellman-Ford run from ``source``; returns all distances."""
    size = transport.size
    distances: list[float] = [INFINITY] * size
    distances[source] = 0.0
    for _ in range(size):
        outboxes: dict[int, list[tuple[int, object]]] = {}
        for node in range(size):
            if distances[node] < INFINITY:
                outboxes[node] = [(target, (node, distances[node])) for target in range(size)]
        inboxes = transport.exchange(outboxes)
        changed = False
        for node in range(size):
            for _, (origin, estimate) in inboxes.get(node, []):
                weight = incident_edges[node].get(origin)
                if weight is None:
                    continue
                candidate = estimate + weight
                if candidate < distances[node]:
                    distances[node] = candidate
                    changed = True
        if not changed:
            break
    return distances
