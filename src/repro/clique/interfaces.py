"""Interfaces for CLIQUE-model algorithms plugged into Theorems 4.1 / 5.1.

The paper's framework (Section 4) takes *any* CLIQUE algorithm ``A`` that is
parameterised by

* ``γ`` -- it handles ``n^γ`` sources,
* ``δ, η`` -- its round complexity is ``T_A ∈ Õ(η · n^δ)``,
* ``α, β`` -- it returns ``(α, β)``-approximate distances,

and turns it into a HYBRID algorithm by simulating it on a skeleton graph.
The classes here define that contract.  Concrete algorithms live in
:mod:`repro.clique.apsp`, :mod:`repro.clique.sssp` and
:mod:`repro.clique.diameter`; the transports they run on are either the
standalone :class:`repro.clique.model.CliqueNetwork` (for unit testing the
algorithms in their native model) or the HYBRID-backed transport of
Corollary 4.1 (:mod:`repro.core.clique_simulation`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@runtime_checkable
class CliqueTransport(Protocol):
    """Message transport for one CLIQUE instance.

    ``size`` is the number of CLIQUE nodes (they are indexed ``0..size-1``).
    ``exchange`` executes exactly one CLIQUE round: every node may send up to
    ``size`` messages of ``O(log n)`` bits to arbitrary targets (Lenzen
    routing), and receives the messages addressed to it.
    """

    size: int

    def exchange(
        self, outboxes: dict[int, list[tuple[int, object]]]
    ) -> dict[int, list[tuple[int, object]]]:
        """Run one CLIQUE round; returns ``receiver -> [(sender, payload), ...]``."""
        ...

    @property
    def rounds_used(self) -> int:
        """Number of CLIQUE rounds executed so far."""
        ...


@dataclass(frozen=True)
class CliqueAlgorithmSpec:
    """The ``(γ, δ, η, α, β)`` parameters of a CLIQUE algorithm (Theorem 4.1).

    ``exact`` is a convenience flag equivalent to ``α == 1 and β == 0``.
    """

    gamma: float
    delta: float
    eta: float
    alpha: float
    beta: float
    name: str = "clique-algorithm"

    @property
    def exact(self) -> bool:
        """Whether the algorithm computes exact distances."""
        return self.alpha == 1.0 and self.beta == 0.0

    def hybrid_exponent(self) -> float:
        """The resulting HYBRID runtime exponent ``1 - x`` with ``x = 2/(3+2δ)``."""
        x = 2.0 / (3.0 + 2.0 * self.delta)
        return 1.0 - x

    def hybrid_weighted_alpha(self) -> float:
        """The transformed multiplicative factor ``2α + 1`` on weighted graphs."""
        return 2.0 * self.alpha + 1.0

    def hybrid_unweighted_alpha(self) -> float:
        """The transformed multiplicative factor ``α + 2/η`` on unweighted graphs."""
        return self.alpha + 2.0 / self.eta


class CliqueShortestPathAlgorithm(ABC):
    """A CLIQUE algorithm computing (approximate) distances to a set of sources."""

    spec: CliqueAlgorithmSpec

    @abstractmethod
    def run(
        self,
        transport: CliqueTransport,
        incident_edges: Sequence[dict[int, int]],
        sources: Sequence[int],
    ) -> list[dict[int, float]]:
        """Execute the algorithm.

        Parameters
        ----------
        transport:
            The CLIQUE round transport.
        incident_edges:
            Per node, its incident edges ``{neighbour: weight}`` -- the local
            input of the CLIQUE problem.
        sources:
            The source node indices.

        Returns
        -------
        list of dict
            ``result[v][s]`` is the node ``v``'s distance estimate to source
            ``s`` and must satisfy ``d(v,s) <= result[v][s] <= α d(v,s) + β``.
        """


class CliqueDiameterAlgorithm(ABC):
    """A CLIQUE algorithm computing an ``(α, β)``-approximation of the weighted diameter."""

    spec: CliqueAlgorithmSpec

    @abstractmethod
    def run(
        self,
        transport: CliqueTransport,
        incident_edges: Sequence[dict[int, int]],
    ) -> float:
        """Return a diameter estimate ``D̃`` with ``D <= D̃ <= α D + β``."""
