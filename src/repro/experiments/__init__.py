"""The experiment registry: programmatic re-generation of every EXPERIMENTS.md table.

``run_experiment("E2")`` reruns the corresponding sweep; ``run_all()`` rebuilds
the whole evaluation.  The command-line entry point is ``python -m repro.cli``.
"""

from repro.experiments.runner import (
    SCALES,
    ExperimentTable,
    available_experiments,
    run_all,
    run_experiment,
)
from repro.experiments import sweeps  # noqa: F401  (imports register the experiments)

__all__ = ["SCALES", "ExperimentTable", "available_experiments", "run_all", "run_experiment"]
