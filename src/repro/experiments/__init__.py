"""The experiment registry: programmatic re-generation of every EXPERIMENTS.md table.

``run_experiment("E2")`` reruns the corresponding sweep serially; ``run_all()``
rebuilds the whole evaluation.  The process-parallel, resumable path is
:mod:`repro.experiments.engine` (``plan_shards`` + ``ExperimentEngine`` +
``ArtifactStore``).  The command-line entry point is ``python -m repro.cli``.
"""

from repro.experiments import sweeps  # noqa: F401  (imports register the experiments)
from repro.experiments.engine import (
    ArtifactStore,
    EngineReport,
    ExperimentEngine,
    Shard,
    assemble_tables,
    execute_shard,
    plan_shards,
)
from repro.experiments.runner import (
    SCALES,
    ExperimentTable,
    ShardPlan,
    Sweep,
    available_experiments,
    get_sweep,
    register,
    register_sweep,
    run_all,
    run_experiment,
)

__all__ = [
    "SCALES",
    "ExperimentTable",
    "ShardPlan",
    "Sweep",
    "available_experiments",
    "get_sweep",
    "register",
    "register_sweep",
    "run_all",
    "run_experiment",
    "ArtifactStore",
    "EngineReport",
    "ExperimentEngine",
    "Shard",
    "assemble_tables",
    "execute_shard",
    "plan_shards",
]
