"""Experiment registry, shard decomposition and result containers.

An *experiment* is a named, parameterised sweep that reproduces one artefact of
the paper (a theorem's round bound, a lemma's structural property, a lower
bound construction).  Each experiment is registered as a :class:`Sweep`: a
*plan* that decomposes the sweep into independent shards (one graph family /
parameter point each), a *shard runner* that executes one shard and returns a
JSON-serialisable payload, and a *finalizer* that assembles the payloads into
an :class:`ExperimentTable`.  The CLI (``python -m repro.cli``) renders tables
as the markdown recorded in EXPERIMENTS.md, so the whole evaluation can be
regenerated with one command; the process-parallel engine
(:mod:`repro.experiments.engine`) executes the same shards across a worker
pool and persists each one to an artifact store, so serial and parallel runs
are bit-identical by construction.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.analysis.report import format_markdown_table

#: The sweep sizes every experiment supports, in increasing cost order:
#: ``small`` (seconds; the test suite and CI), ``medium`` (the scale recorded
#: in EXPERIMENTS.md) and ``large`` (offline only; used by the E14 multi-query
#: amortization sweep).  Single source of truth -- the CLI's ``--scale``
#: choices and the runner's validation both read it.
SCALES = ("small", "medium", "large")


@dataclass
class ExperimentTable:
    """One experiment's regenerated table.

    Attributes
    ----------
    experiment_id:
        Identifier from the DESIGN.md index (``E1`` ... ``E14``).
    title:
        Human-readable description including the paper artefact it reproduces.
    headers / rows:
        The tabular results.
    notes:
        Free-form remarks (what the paper predicts, how to read the columns).
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]
    notes: list[str] = field(default_factory=list)

    def to_markdown(self) -> str:
        """Render the experiment as a markdown section."""
        lines = [f"### {self.experiment_id} — {self.title}", ""]
        lines.append(format_markdown_table(self.headers, self.rows))
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        return "\n".join(lines)


@dataclass
class ShardPlan:
    """One independently executable unit of a sweep.

    Attributes
    ----------
    family:
        Graph family / parameter-point label, e.g. ``"locality-n64"``.  Unique
        within one experiment+scale; the artifact store uses it in file names.
    seed:
        The canonical seed this shard runs under (the built-in seed that
        reproduces the committed tables).  Replica trials (``--trials``)
        replace it with a ``numpy.random.SeedSequence``-spawned seed.
    params:
        JSON-serialisable keyword parameters for the sweep's shard runner.
    """

    family: str
    seed: int
    params: dict[str, object] = field(default_factory=dict)


#: ``run_shard(scale, seed, params) -> payload``.  The payload must be
#: JSON-serialisable (the artifact store round-trips it); by convention the
#: row-parallel sweeps return a list of table rows.
ShardRunner = Callable[[str, int, dict[str, object]], object]
PlanFunction = Callable[[str], list[ShardPlan]]
FinalizeFunction = Callable[[str, list[object]], ExperimentTable]


@dataclass
class Sweep:
    """A registered experiment: shard decomposition + execution + assembly."""

    experiment_id: str
    plan: PlanFunction
    run_shard: ShardRunner
    finalize: FinalizeFunction
    #: Whether replica trials with engine-spawned seeds are meaningful (the
    #: shard runner genuinely derives its randomness from the ``seed`` input).
    reseedable: bool = False

    def shard_plans(self, scale: str) -> list[ShardPlan]:
        """The shard decomposition at the given scale."""
        if scale not in SCALES:
            raise ValueError(f"scale must be one of {', '.join(repr(s) for s in SCALES)}")
        return self.plan(scale)

    def table(self, scale: str) -> ExperimentTable:
        """Run every shard serially, in plan order, and assemble the table.

        This is the serial path the CLI's ``run`` / ``run-all`` use; the
        engine's ``--jobs 1`` executes exactly the same shard functions, so
        the two are bit-identical by construction.
        """
        payloads = [
            self.run_shard(scale, plan.seed, dict(plan.params))
            for plan in self.shard_plans(scale)
        ]
        return self.finalize(scale, payloads)


_REGISTRY: dict[str, Sweep] = {}


def _add_sweep(sweep: Sweep) -> None:
    key = sweep.experiment_id
    # repro-lint: waive[RL006] -- import-time registration; workers only ever run it while importing
    if key in _REGISTRY:
        raise ValueError(f"experiment {key} registered twice")
    # repro-lint: waive[RL006] -- import-time registration; workers only ever run it while importing
    _REGISTRY[key] = sweep


def register_sweep(
    experiment_id: str,
    *,
    plan: PlanFunction,
    finalize: FinalizeFunction,
    reseedable: bool = False,
) -> Callable[[ShardRunner], ShardRunner]:
    """Decorator registering a sharded sweep under its DESIGN.md identifier.

    The decorated function is the shard runner; ``plan`` and ``finalize``
    complete the :class:`Sweep`.
    """

    def decorator(run_shard: ShardRunner) -> ShardRunner:
        _add_sweep(Sweep(experiment_id.upper(), plan, run_shard, finalize, reseedable))
        return run_shard

    return decorator


def register(experiment_id: str):
    """Decorator that registers a plain ``scale -> ExperimentTable`` function.

    Back-compat shim: the function becomes a single-shard sweep whose payload
    carries the whole rendered table, so it still runs under the parallel
    engine (at shard granularity one) and through the artifact store.
    """

    def decorator(function):
        def plan(scale: str) -> list[ShardPlan]:
            return [ShardPlan(family="all", seed=0)]

        def run_shard(scale: str, seed: int, params: dict[str, object]) -> object:
            table = function(scale)
            return {
                "table": {
                    "experiment_id": table.experiment_id,
                    "title": table.title,
                    "headers": list(table.headers),
                    "rows": [list(row) for row in table.rows],
                    "notes": list(table.notes),
                }
            }

        def finalize(scale: str, payloads: list[object]) -> ExperimentTable:
            data = payloads[0]["table"]
            return ExperimentTable(
                data["experiment_id"], data["title"], data["headers"], data["rows"], data["notes"]
            )

        _add_sweep(Sweep(experiment_id.upper(), plan, run_shard, finalize))
        return function

    return decorator


def unregister(experiment_id: str) -> None:
    """Remove a registered sweep (test support for temporary registrations)."""
    _REGISTRY.pop(experiment_id.upper(), None)


def available_experiments() -> list[str]:
    """Sorted list of registered experiment identifiers."""
    # repro-lint: waive[RL006] -- registry is frozen after import; worker access is read-only
    return sorted(_REGISTRY, key=lambda key: (len(key), key))


def get_sweep(experiment_id: str) -> Sweep:
    """The registered :class:`Sweep` for an identifier (case-insensitive)."""
    key = experiment_id.upper()
    # repro-lint: waive[RL006] -- registry is frozen after import; worker access is read-only
    if key not in _REGISTRY:
        # Worker processes started with the ``spawn`` method import this
        # module without going through ``repro.experiments``; pull in the
        # sweep definitions lazily so the registry is populated either way.
        import repro.experiments.sweeps  # noqa: F401

    # repro-lint: waive[RL006] -- registry is frozen after import; worker access is read-only
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(available_experiments())}"
        )
    # repro-lint: waive[RL006] -- registry is frozen after import; worker access is read-only
    return _REGISTRY[key]


def run_experiment(experiment_id: str, scale: str = "small") -> ExperimentTable:
    """Run one experiment serially at the given scale (one of :data:`SCALES`)."""
    return get_sweep(experiment_id).table(scale)


def run_all(scale: str = "small") -> list[ExperimentTable]:
    """Run every registered experiment serially."""
    return [run_experiment(key, scale) for key in available_experiments()]


def flatten_rows(payloads: Sequence[object]) -> list[list[object]]:
    """Concatenate per-shard row lists in plan order (the common finalizer step)."""
    rows: list[list[object]] = []
    for payload in payloads:
        rows.extend(payload)
    return rows


def plain_table(
    experiment_id: str,
    title: str,
    headers: Sequence[str],
    notes: Sequence[str],
) -> FinalizeFunction:
    """A finalizer for sweeps whose payloads are row lists and whose headers
    and notes do not depend on the measured rows."""

    def finalize(scale: str, payloads: list[object]) -> ExperimentTable:
        return ExperimentTable(experiment_id, title, headers, flatten_rows(payloads), list(notes))

    return finalize
