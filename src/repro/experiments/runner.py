"""Experiment registry and result containers.

An *experiment* is a named, parameterised sweep that reproduces one artefact of
the paper (a theorem's round bound, a lemma's structural property, a lower
bound construction).  Each experiment function returns an
:class:`ExperimentTable`; the CLI (``python -m repro.cli``) renders them as the
markdown tables recorded in EXPERIMENTS.md, so the whole evaluation can be
regenerated with one command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.analysis.report import format_markdown_table

#: The sweep sizes every experiment supports, in increasing cost order:
#: ``small`` (seconds; the test suite and CI), ``medium`` (the scale recorded
#: in EXPERIMENTS.md) and ``large`` (offline only; used by the E14 multi-query
#: amortization sweep).  Single source of truth -- the CLI's ``--scale``
#: choices and the runner's validation both read it.
SCALES = ("small", "medium", "large")


@dataclass
class ExperimentTable:
    """One experiment's regenerated table.

    Attributes
    ----------
    experiment_id:
        Identifier from the DESIGN.md index (``E1`` ... ``E12``).
    title:
        Human-readable description including the paper artefact it reproduces.
    headers / rows:
        The tabular results.
    notes:
        Free-form remarks (what the paper predicts, how to read the columns).
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: List[str] = field(default_factory=list)

    def to_markdown(self) -> str:
        """Render the experiment as a markdown section."""
        lines = [f"### {self.experiment_id} — {self.title}", ""]
        lines.append(format_markdown_table(self.headers, self.rows))
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        return "\n".join(lines)


ExperimentFunction = Callable[[str], ExperimentTable]

_REGISTRY: Dict[str, ExperimentFunction] = {}


def register(experiment_id: str) -> Callable[[ExperimentFunction], ExperimentFunction]:
    """Decorator that registers an experiment under its DESIGN.md identifier."""

    def decorator(function: ExperimentFunction) -> ExperimentFunction:
        key = experiment_id.upper()
        if key in _REGISTRY:
            raise ValueError(f"experiment {key} registered twice")
        _REGISTRY[key] = function
        return function

    return decorator


def available_experiments() -> List[str]:
    """Sorted list of registered experiment identifiers."""
    return sorted(_REGISTRY, key=lambda key: (len(key), key))


def run_experiment(experiment_id: str, scale: str = "small") -> ExperimentTable:
    """Run one experiment at the given scale (one of :data:`SCALES`)."""
    key = experiment_id.upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(available_experiments())}"
        )
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {', '.join(repr(s) for s in SCALES)}")
    return _REGISTRY[key](scale)


def run_all(scale: str = "small") -> List[ExperimentTable]:
    """Run every registered experiment."""
    return [run_experiment(key, scale) for key in available_experiments()]
