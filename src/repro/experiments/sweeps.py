"""The per-experiment sweeps (E1-E17 of the DESIGN.md index), in shard form.

Every experiment reproduces one artefact of the paper (or, for E14, of this
library's serving layer).  Each is registered via
:func:`~repro.experiments.runner.register_sweep` as three pieces:

* a **plan** that decomposes the sweep into independent
  ``(graph family, parameter point)`` shards,
* a **shard runner** that executes one shard -- rebuilding its graph and
  network from the shard's deterministic seed, so shards share no state and
  can run in any order or process -- and returns the shard's table rows, and
* a **finalizer** that assembles the rows (and any cross-row fits) into the
  :class:`~repro.experiments.runner.ExperimentTable`.

The supported scales are :data:`~repro.experiments.runner.SCALES`: ``small``
(seconds, used by the test suite and CI), ``medium`` (the scale recorded in
EXPERIMENTS.md) and ``large`` (offline; exercised by the E14 amortization
sweep).  All sweeps are deterministic given the built-in seeds, which is what
makes serial and process-parallel execution bit-identical
(tests/test_engine.py pins this).
"""

from __future__ import annotations

import math
import time

from repro.analysis.complexity import fit_power_law_with_log
from repro.analysis.report import summarize_robustness
from repro.baselines import apsp_broadcast_baseline, route_tokens_by_broadcast
from repro.clique import (
    BroadcastBellmanFordSSSP,
    EccentricityDiameter,
    GatherDiameter,
    GatherShortestPaths,
)
from repro.core.apsp import apsp_exact
from repro.core.clique_simulation import HybridCliqueTransport, predicted_simulation_rounds
from repro.core.diameter import approximate_diameter
from repro.core.helper_sets import compute_helper_sets
from repro.core.kssp import predicted_framework_rounds, shortest_paths_via_clique
from repro.core.skeleton import compute_skeleton
from repro.core.sssp import sssp_exact
from repro.core.token_routing import make_tokens, predicted_routing_rounds, route_tokens
from repro.experiments.runner import (
    ExperimentTable,
    ShardPlan,
    flatten_rows,
    plain_table,
    register_sweep,
)
from repro.graphs import generators, reference
from repro.graphs.skeleton_analysis import audit_skeleton
from repro.hybrid import FaultModel, FaultToleranceExceededError, HybridNetwork, ModelConfig
from repro.localnet import aggregate_max, disseminate_tokens
from repro.lower_bounds import (
    assignment_entropy_bits,
    build_gamma_gadget,
    build_kssp_gadget,
    classify_disjointness_from_diameter,
    distance_gap_factor,
    measure_cut_traffic,
    random_disjointness_instance,
    verify_simulation_partition,
)
from repro.lower_bounds import kssp_gadget as kssp_lb
from repro.session import HybridSession
from repro.util.rand import RandomSource, sample_nodes


def _network(graph, seed: int = 1) -> HybridNetwork:
    return HybridNetwork(graph, ModelConfig(rng_seed=seed))


def _locality_graph(n: int, seed: int = 1):
    return generators.random_geometric_like_graph(
        n, neighbourhood=2, rng=RandomSource(seed), extra_edge_probability=0.01
    )


def _random_graph(n: int, seed: int = 1, weighted: bool = True):
    return generators.connected_workload(
        n, RandomSource(seed), weighted=weighted, max_weight=8
    )


# --------------------------------------------------------------------------- E1
def _e1_workloads(scale: str):
    n = 150 if scale == "small" else 400
    workloads = [2, 8, 32] if scale == "small" else [2, 8, 32, 128]
    return n, workloads


def _e1_plan(scale: str) -> list[ShardPlan]:
    n, workloads = _e1_workloads(scale)
    return [
        ShardPlan(family=f"locality-k{k}", seed=k, params={"n": n, "tokens_per_sender": k})
        for k in workloads
    ]


@register_sweep(
    "E1",
    plan=_e1_plan,
    finalize=plain_table(
        "E1",
        "Token routing (Theorem 2.2)",
        [
            "n",
            "senders",
            "k per sender",
            "K total",
            "measured rounds",
            "K/n+√kS+√kR",
            "max recv/round",
            "recv cap",
        ],
        [
            "The protocol keeps the per-round receive load within the O(log n) budget "
            "(last two columns) while the rounds grow with the Theorem 2.2 shape.",
        ],
    ),
    reseedable=True,
)
def token_routing_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """Theorem 2.2: token-routing rounds vs the ``K/n + √k_S + √k_R`` shape."""
    n = params["n"]
    tokens_per_sender = params["tokens_per_sender"]
    graph = _locality_graph(n, seed=1)
    rng = RandomSource(seed)
    senders = rng.sample(list(range(n)), max(4, n // 5))
    tokens = make_tokens(
        {
            s: [(rng.randrange(n), ("p", s, i)) for i in range(tokens_per_sender)]
            for s in senders
        }
    )
    network = _network(graph, seed=seed)
    result = route_tokens(network, tokens)
    receivers = len(result.delivered)
    shape = predicted_routing_rounds(
        n, len(senders), receivers, tokens_per_sender, max(1, len(tokens) // max(1, receivers))
    )
    return [
        [
            n,
            len(senders),
            tokens_per_sender,
            len(tokens),
            result.rounds,
            round(shape, 1),
            network.metrics.max_received_per_round,
            network.receive_cap,
        ]
    ]


# --------------------------------------------------------------------------- E2
def _e2_sizes(scale: str) -> list[int]:
    return [64, 100, 160] if scale == "small" else [100, 200, 400, 800]


def _e2_plan(scale: str) -> list[ShardPlan]:
    return [
        ShardPlan(family=f"locality-n{n}", seed=n, params={"n": n}) for n in _e2_sizes(scale)
    ]


def _e2_finalize(scale: str, payloads: list[object]) -> ExperimentTable:
    rows = flatten_rows(payloads)
    sizes = [row[0] for row in rows]
    fit_new = fit_power_law_with_log(sizes, [row[2] for row in rows])
    fit_base = fit_power_law_with_log(sizes, [row[3] for row in rows])
    bottleneck_fit_new = fit_power_law_with_log(sizes, [row[4] for row in rows])
    bottleneck_fit_base = fit_power_law_with_log(sizes, [row[5] for row in rows])
    return ExperimentTable(
        "E2",
        "Exact APSP: Theorem 1.1 (Õ(√n)) vs Augustine et al. baseline (Õ(n^2/3))",
        [
            "n",
            "D",
            "rounds (Thm 1.1)",
            "rounds (baseline)",
            "last-step rounds (routing)",
            "last-step rounds (label broadcast)",
            "√n",
            "n^2/3",
            "both exact",
        ],
        rows,
        notes=[
            f"fitted exponent of total rounds (with log factor): new {fit_new.exponent:.2f}, "
            f"baseline {fit_base.exponent:.2f}; paper: 0.5 vs 0.667.",
            "fitted exponent of the differing last step: routing "
            f"{bottleneck_fit_new.exponent:.2f} "
            f"vs label broadcast {bottleneck_fit_base.exponent:.2f} -- this is the step whose "
            "cost separates √n from n^2/3 in the paper.",
            "At simulation scale total rounds are dominated by local phases capped at D "
            "(the paper's min(D, ·) reading), so the separation is visible in the "
            "last-step columns rather than in the totals (discussion in EXPERIMENTS.md).",
        ],
    )


@register_sweep("E2", plan=_e2_plan, finalize=_e2_finalize)
def apsp_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """Theorem 1.1 vs the SODA'20 baseline on the same instance (one size)."""
    n = params["n"]
    graph = _locality_graph(n, seed=n)
    truth = reference.all_pairs_distances(graph)

    network = _network(graph, seed=n)
    new = apsp_exact(network)
    new_exact = all(
        abs(new.distance(u, v) - d) <= 1e-9 for u in range(n) for v, d in truth[u].items()
    )

    baseline_network = _network(graph, seed=n)
    baseline = apsp_broadcast_baseline(baseline_network)
    base_exact = all(
        abs(baseline.distance(u, v) - d) <= 1e-9
        for u in range(n)
        for v, d in truth[u].items()
    )
    # The step the two algorithms differ in: Theorem 1.1 replaces the
    # baseline's broadcast of all |V|·|V_S| labels with one token-routing
    # instance.  Its cost is read off the phase accounting.
    new_bottleneck = network.metrics.rounds_for_phase_prefix("apsp:routing")
    baseline_bottleneck = baseline_network.metrics.rounds_for_phase_prefix(
        "apsp-baseline:label-broadcast"
    )
    return [
        [
            n,
            int(graph.hop_diameter()),
            new.rounds,
            baseline.rounds,
            new_bottleneck,
            baseline_bottleneck,
            round(n ** 0.5, 1),
            round(n ** (2 / 3), 1),
            new_exact and base_exact,
        ]
    ]


# --------------------------------------------------------------------------- E3
def _e3_plan(scale: str) -> list[ShardPlan]:
    n = 120 if scale == "small" else 300
    ks = [2, 8] if scale == "small" else [2, 8, 32]
    return [
        ShardPlan(
            family=f"random-k{k}-{'weighted' if weighted else 'unweighted'}",
            seed=k + (1 if weighted else 0),
            params={"n": n, "k": k, "weighted": weighted},
        )
        for k in ks
        for weighted in (True, False)
    ]


@register_sweep(
    "E3",
    plan=_e3_plan,
    finalize=plain_table(
        "E3",
        "k-SSP framework (Theorem 4.1) with the gather-exact CLIQUE plug-in",
        [
            "n",
            "k",
            "weights",
            "measured rounds",
            "η·n^(1-x)",
            "measured stretch",
            "guaranteed α",
            "one-sided",
            "skeleton size",
        ],
        [
            "Measured stretch is far below the transformed guarantee (the guarantee is "
            "worst-case over the representative detour); estimates never undershoot.",
        ],
    ),
)
def kssp_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """Theorem 4.1 framework: rounds and stretch for one (k, weights) point."""
    n, k, weighted = params["n"], params["k"], params["weighted"]
    graph = _random_graph(n, seed=k + (1 if weighted else 0), weighted=weighted)
    sources = RandomSource(k).sample(list(range(n)), k)
    network = _network(graph, seed=k)
    result = shortest_paths_via_clique(network, sources, GatherShortestPaths())
    truth = reference.multi_source_distances(graph, sources)
    stretch = 1.0
    undershoot = False
    for s in sources:
        for v in range(n):
            true_value = truth[s][v]
            estimate = result.estimate(v, s)
            if estimate < true_value - 1e-9:
                undershoot = True
            if true_value > 0:
                stretch = max(stretch, estimate / true_value)
    return [
        [
            n,
            k,
            "weighted" if weighted else "unweighted",
            result.rounds,
            round(predicted_framework_rounds(n, result.spec), 1),
            round(stretch, 3),
            round(result.guaranteed_alpha(weighted), 2),
            not undershoot,
            result.skeleton_size,
        ]
    ]


# --------------------------------------------------------------------------- E4
def _e4_plan(scale: str) -> list[ShardPlan]:
    sizes = [64, 128] if scale == "small" else [100, 200, 400]
    return [ShardPlan(family=f"locality-n{n}", seed=n, params={"n": n}) for n in sizes]


@register_sweep(
    "E4",
    plan=_e4_plan,
    finalize=plain_table(
        "E4",
        "Exact SSSP (Theorem 1.3) via the framework with γ = 0",
        [
            "n",
            "D",
            "measured rounds",
            "η·n^(1-x)",
            "LOCAL-only rounds (D)",
            "exact",
            "skeleton size",
        ],
        [
            "The substitute CLIQUE SSSP has δ = 1 (x = 2/5), so the framework shape is "
            "n^(3/5); with the paper's algebraic CLIQUE algorithm (δ = 1/6) the same "
            "framework yields the Õ(n^{2/5}) of Theorem 1.3.",
        ],
    ),
)
def sssp_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """Theorem 1.3: exact SSSP rounds vs the framework shape, one size."""
    n = params["n"]
    graph = _locality_graph(n, seed=n + 3)
    network = _network(graph, seed=n)
    result = sssp_exact(network, source=0)
    truth = reference.single_source_distances(graph, 0)
    exact = all(abs(result.distance(v) - d) <= 1e-9 for v, d in truth.items())
    spec = BroadcastBellmanFordSSSP().spec
    return [
        [
            n,
            int(graph.hop_diameter()),
            result.rounds,
            round(predicted_framework_rounds(n, spec), 1),
            int(graph.hop_diameter()),
            exact,
            result.skeleton_size,
        ]
    ]


# --------------------------------------------------------------------------- E5
def _e5_plan(scale: str) -> list[ShardPlan]:
    sizes = [100, 200] if scale == "small" else [200, 400]
    return [
        ShardPlan(
            family=f"locality-n{n}-{plugin}",
            seed=n,
            params={"n": n, "plugin": plugin},
        )
        for n in sizes
        for plugin in ("gather-exact", "eccentricity")
    ]


@register_sweep(
    "E5",
    plan=_e5_plan,
    finalize=plain_table(
        "E5",
        "Diameter approximation (Theorem 5.1 / 1.4)",
        ["n", "D", "CLIQUE plug-in", "estimate", "ratio", "guaranteed α", "rounds", "local branch"],
        [
            "Estimates never undershoot D and stay well within the transformed "
            "guarantee α + 2/η + β/T_B.",
        ],
    ),
)
def diameter_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """Theorem 1.4 / 5.1: diameter approximation for one (n, plug-in) point."""
    n, name = params["n"], params["plugin"]
    plugin = GatherDiameter() if name == "gather-exact" else EccentricityDiameter()
    graph = _locality_graph(n, seed=n + 7)
    true_diameter = graph.hop_diameter()
    network = _network(graph, seed=n)
    result = approximate_diameter(network, plugin)
    return [
        [
            n,
            int(true_diameter),
            name,
            round(result.estimate, 1),
            round(result.estimate / true_diameter, 3),
            round(result.guaranteed_alpha(), 2),
            result.rounds,
            result.used_local_estimate,
        ]
    ]


# --------------------------------------------------------------------------- E6
def _e6_plan(scale: str) -> list[ShardPlan]:
    ks = [16, 64] if scale == "small" else [16, 64, 256]
    path_hops = 120 if scale == "small" else 400
    return [
        ShardPlan(family=f"gadget-k{k}", seed=k, params={"k": k, "path_hops": path_hops})
        for k in ks
    ]


@register_sweep(
    "E6",
    plan=_e6_plan,
    finalize=plain_table(
        "E6",
        "k-SSP lower bound gadget (Theorem 1.5, Figure 1)",
        [
            "k",
            "n",
            "L",
            "distance gap",
            "Θ(n/√k)",
            "entropy bits",
            "implied lower bound (rounds)",
            "√k",
        ],
        [
            "The distance gap grows as Θ(n/√k) (columns 4-5), so any approximation "
            "below that factor must identify the hidden split, whose Ω(k) bits must "
            "cross the L-hop bottleneck: Ω̃(√k) rounds.",
        ],
    ),
)
def kssp_lower_bound_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """Theorem 1.5 / Figure 1: one k of the k-SSP lower-bound gadget."""
    k, path_hops = params["k"], params["path_hops"]
    gadget = build_kssp_gadget(path_hops, k, RandomSource(k))
    config = ModelConfig()
    n = gadget.graph.node_count
    bound = kssp_lb.implied_round_lower_bound(gadget, config.message_bits, config.send_cap(n))
    return [
        [
            k,
            n,
            gadget.bottleneck_distance,
            round(distance_gap_factor(gadget), 1),
            round(n / math.sqrt(k), 1),
            round(assignment_entropy_bits(gadget), 1),
            round(bound, 2),
            round(math.sqrt(k), 1),
        ]
    ]


# --------------------------------------------------------------------------- E7
def _e7_plan(scale: str) -> list[ShardPlan]:
    k = 5 if scale == "small" else 8
    path_hops = 6 if scale == "small" else 10
    return [
        ShardPlan(
            family=f"gamma-{'weighted' if weighted else 'unweighted'}"
            f"-{'disjoint' if disjoint else 'intersecting'}",
            seed=(17 if disjoint else 23) + (100 if weighted else 0),
            params={"k": k, "path_hops": path_hops, "weighted": weighted, "disjoint": disjoint},
        )
        for weighted in (False, True)
        for disjoint in (True, False)
    ]


@register_sweep(
    "E7",
    plan=_e7_plan,
    finalize=plain_table(
        "E7",
        "Diameter lower bound gadget Γ (Theorem 1.6, Lemmas 7.1-7.3, Figure 2)",
        [
            "case",
            "inputs",
            "n",
            "diameter",
            "classification correct",
            "Lemma 7.3 partition ok",
            "algorithm rounds",
            "cut bits moved",
            "Ω(k²) bits required",
        ],
        [
            "Exact diameters separate disjoint from intersecting instances exactly as "
            "Lemmas 7.1/7.2 predict, and the Alice/Bob column partition never needs a "
            "local message to cross the cut (Lemma 7.3).",
        ],
    ),
)
def diameter_lower_bound_shard(
    scale: str, seed: int, params: dict[str, object]
) -> list[list[object]]:
    """Theorem 1.6 / Figure 2: one (weights, inputs) case of the Γ gadget."""
    k, path_hops = params["k"], params["path_hops"]
    weighted, disjoint = params["weighted"], params["disjoint"]
    weight = 4 * path_hops
    a, b = random_disjointness_instance(k, RandomSource(seed), disjoint)
    gadget = build_gamma_gadget(k, path_hops, weight if weighted else 1, a, b)
    diameter = (
        reference.weighted_diameter(gadget.graph)
        if weighted
        else reference.hop_diameter(gadget.graph)
    )
    correct = classify_disjointness_from_diameter(gadget, diameter) == disjoint
    partition_ok = verify_simulation_partition(gadget, path_hops // 2)
    measurement = measure_cut_traffic(
        build_gamma_gadget(k, path_hops, 1, a, b),
        ModelConfig(rng_seed=1),
        lambda network: approximate_diameter(network, GatherDiameter()),
    )
    return [
        [
            "weighted" if weighted else "unweighted",
            "disjoint" if disjoint else "intersecting",
            gadget.node_count,
            round(diameter, 1),
            correct,
            partition_ok,
            measurement.total_rounds,
            measurement.cut_bits,
            int(measurement.required_bits),
        ]
    ]


# --------------------------------------------------------------------------- E8
def _e8_plan(scale: str) -> list[ShardPlan]:
    n = 180 if scale == "small" else 400
    return [
        ShardPlan(family=f"locality-x{int(100 * x)}", seed=int(100 * x), params={"n": n, "x": x})
        for x in (0.3, 0.5, 0.7)
    ]


@register_sweep(
    "E8",
    plan=_e8_plan,
    finalize=plain_table(
        "E8",
        "Simulating one CLIQUE round on a skeleton (Corollary 4.1)",
        ["n", "x (skeleton ≈ n^x)", "skeleton size", "HYBRID rounds / CLIQUE round", "s²/n + √s"],
        [
            "The per-round simulation cost grows with the skeleton size; at this scale "
            "it is dominated by the Routing-Preparation local floods of the underlying "
            "token-routing instance (a polylog-factor additive term in Corollary 4.1), "
            "with the |S|²/n + √|S| global term on top.",
        ],
    ),
)
def clique_simulation_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """Corollary 4.1: HYBRID cost of one simulated CLIQUE round at one density."""
    n, x = params["n"], params["x"]
    graph = _locality_graph(n, seed=2)
    network = _network(graph, seed=int(100 * x))
    skeleton = compute_skeleton(network, n ** (x - 1.0), ensure_connected=True)
    transport = HybridCliqueTransport(network, skeleton)
    before = network.metrics.total_rounds
    repeats = 3
    for _ in range(repeats):
        transport.exchange({})
    per_round = (network.metrics.total_rounds - before) / repeats
    return [
        [
            n,
            x,
            skeleton.size,
            round(per_round, 1),
            round(predicted_simulation_rounds(n, skeleton.size), 1),
        ]
    ]


# --------------------------------------------------------------------------- E9
def _e9_plan(scale: str) -> list[ShardPlan]:
    n = 150 if scale == "small" else 400
    return [
        ShardPlan(
            family=f"random-p{int(100 * p)}",
            seed=int(p * 100),
            params={"n": n, "p": p, "audit_seed": 3},
        )
        for p in (0.1, 0.25, 0.5)
    ]


@register_sweep(
    "E9",
    plan=_e9_plan,
    finalize=plain_table(
        "E9",
        "Skeleton graph properties (Lemmas C.1 / C.2)",
        [
            "n",
            "sampling p",
            "skeleton size",
            "skeleton edges",
            "h",
            "connected",
            "distance preserving",
            "max gap (hops)",
        ],
        [
            "Every audited skeleton is connected and preserves exact distances between "
            "sampled nodes; the largest skeleton-free stretch on audited shortest paths "
            "stays below the hop length h, as Lemma C.1 promises w.h.p.",
        ],
    ),
    reseedable=True,
)
def skeleton_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """Lemmas C.1 / C.2: skeleton audit at one sampling probability."""
    n, p = params["n"], params["p"]
    graph = _random_graph(n, seed=5)
    network = _network(graph, seed=seed)
    skeleton = compute_skeleton(network, p)
    report = audit_skeleton(
        graph, skeleton.nodes, skeleton.hop_length, RandomSource(params["audit_seed"]), 40
    )
    return [
        [
            n,
            p,
            report.node_count,
            report.edge_count,
            skeleton.hop_length,
            report.connected,
            report.distance_preserving,
            report.max_gap_hops,
        ]
    ]


# -------------------------------------------------------------------------- E10
def _e10_plan(scale: str) -> list[ShardPlan]:
    n = 160 if scale == "small" else 400
    return [
        ShardPlan(
            family=f"locality-p{int(100 * probability)}-k{tokens}",
            seed=tokens,
            params={"n": n, "probability": probability, "tokens": tokens},
        )
        for probability, tokens in ((0.1, 4), (0.1, 64), (0.3, 16))
    ]


@register_sweep(
    "E10",
    plan=_e10_plan,
    finalize=plain_table(
        "E10",
        "Helper sets (Definition 2.1 / Lemma 2.2)",
        ["n", "members", "k", "µ", "min helper count", "max load", "max radius", "rounds"],
        [
            "Helper sets reach the target size µ, no node serves many members, and "
            "helpers stay within Õ(µ) hops -- the three properties Definition 2.1 needs.",
        ],
    ),
)
def helper_set_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """Lemma 2.2: the three helper-set properties at one (p, k) setting."""
    n, probability, tokens = params["n"], params["probability"], params["tokens"]
    graph = _locality_graph(n, seed=9)
    members = sample_nodes(range(n), probability, RandomSource(int(probability * 100))) or [0]
    network = _network(graph, seed=tokens)
    helpers = compute_helper_sets(network, members, tokens_per_member=tokens)
    return [
        [
            n,
            len(members),
            tokens,
            helpers.mu,
            helpers.min_helper_count(),
            helpers.max_membership_load(),
            helpers.max_helper_radius(network),
            helpers.rounds_charged,
        ]
    ]


# -------------------------------------------------------------------------- E11
def _e11_plan(scale: str) -> list[ShardPlan]:
    n = 150 if scale == "small" else 400
    return [
        ShardPlan(family=strategy, seed=1, params={"n": n, "strategy": strategy})
        for strategy in ("routing", "broadcast")
    ]


@register_sweep(
    "E11",
    plan=_e11_plan,
    finalize=plain_table(
        "E11",
        "Ablation: routing point-to-point tokens vs broadcasting them",
        ["strategy", "K", "rounds", "global messages", "busiest node received"],
        [
            "Broadcasting forces the whole workload through every node's global budget; "
            "routing touches only the endpoints' helper sets (Section 2's motivation).",
        ],
    ),
)
def routing_ablation_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """Ablation: one strategy (routing / broadcast) on the shared workload."""
    n, strategy = params["n"], params["strategy"]
    graph = _locality_graph(n, seed=13)
    rng = RandomSource(13)
    senders = rng.sample(list(range(n)), n // 5)
    tokens = make_tokens(
        {s: [(rng.randrange(n), ("w", s, i)) for i in range(16)] for s in senders}
    )
    network = _network(graph, seed=1)
    if strategy == "routing":
        label, result = "token routing (Thm 2.2)", route_tokens(network, tokens)
    else:
        label, result = "broadcast (Lemma B.1)", route_tokens_by_broadcast(network, tokens)
    return [
        [
            label,
            len(tokens),
            result.rounds,
            network.metrics.global_messages,
            network.max_total_received(),
        ]
    ]


# -------------------------------------------------------------------------- E12
def _e12_plan(scale: str) -> list[ShardPlan]:
    n = 150 if scale == "small" else 400
    shards = [
        ShardPlan(
            family=f"dissemination-k{per_node}",
            seed=per_node,
            params={"n": n, "protocol": "dissemination", "per_node": per_node},
        )
        for per_node in (1, 4, 16)
    ]
    shards.append(
        ShardPlan(family="aggregation", seed=99, params={"n": n, "protocol": "aggregation"})
    )
    return shards


@register_sweep(
    "E12",
    plan=_e12_plan,
    finalize=plain_table(
        "E12",
        "Token dissemination (Lemma B.1) and NCC aggregation (Lemma B.2)",
        ["protocol", "n", "k values", "total rounds", "global rounds", "paper shape"],
        [
            "Total dissemination rounds at this scale are dominated by the cluster "
            "construction's local floods (capped at D); the global-mode rounds grow "
            "with √k / log n as Lemma B.1's bandwidth argument predicts.  The "
            "aggregation completes in O(log n) global rounds.",
        ],
    ),
)
def dissemination_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """Lemma B.1 (token dissemination) or Lemma B.2 (aggregation), one shard."""
    n = params["n"]
    graph = _locality_graph(n, seed=15)
    if params["protocol"] == "dissemination":
        per_node = params["per_node"]
        tokens = {node: [("t", node, i) for i in range(per_node)] for node in range(n)}
        network = _network(graph, seed=per_node)
        result = disseminate_tokens(network, tokens)
        total = n * per_node
        return [
            [
                "dissemination",
                n,
                total,
                result.rounds,
                network.metrics.global_rounds,
                round(math.sqrt(total) + per_node + total / n, 1),
            ]
        ]
    network = _network(graph, seed=99)
    aggregate_max(network, {node: float(node) for node in range(n)})
    return [
        [
            "aggregation (max)",
            n,
            n,
            network.metrics.total_rounds,
            network.metrics.global_rounds,
            round(math.log2(n), 1),
        ]
    ]


# -------------------------------------------------------------------------- E13
def _e13_plan(scale: str) -> list[ShardPlan]:
    return [
        ShardPlan(family=name, seed=seed, params={"scenario": name})
        for name, seed in (("power-law", 21), ("grid+highways", 22), ("hierarchical-isp", 23))
    ]


def _e13_graph(scenario: str, scale: str):
    if scale == "small":
        builders = {
            "power-law": lambda: generators.power_law_graph(200, RandomSource(21), attachment=2),
            "grid+highways": lambda: generators.grid_with_highways_graph(
                10, 16, 8, RandomSource(22)
            ),
            "hierarchical-isp": lambda: generators.hierarchical_isp_graph(
                5, 3, 6, RandomSource(23)
            ),
        }
    else:
        builders = {
            "power-law": lambda: generators.power_law_graph(1024, RandomSource(21), attachment=2),
            "grid+highways": lambda: generators.grid_with_highways_graph(
                24, 32, 24, RandomSource(22)
            ),
            "hierarchical-isp": lambda: generators.hierarchical_isp_graph(
                8, 6, 16, RandomSource(23)
            ),
        }
    return builders[scenario]()


def _e13_finalize(scale: str, payloads: list[object]) -> ExperimentTable:
    # The wall-clock measurement lives next to the rows (not inside them), so
    # the deterministic part of the shard payload stays bit-identical between
    # runs; it is re-attached as the table's last column here.
    rows = [
        payload["rows"][0] + [round(payload["wall_time_seconds"], 3)] for payload in payloads
    ]
    return ExperimentTable(
        "E13",
        "Scenario families unlocked by the CSR core (SSSP end-to-end)",
        ["scenario", "n", "m", "D", "backend", "rounds", "skeleton size", "exact", "seconds"],
        rows,
        notes=[
            "Each family stresses a different resource: power-law graphs load the "
            "global mode's per-hub capacity, grid-with-highways makes weighted d_h "
            "diverge from hop counts, and the ISP hierarchy has LAN-dense leaves "
            "behind a small backbone.  All runs stay exact; benchmarks/BENCH_core.json "
            "tracks the wall-clock trajectory per backend.",
        ],
    )


@register_sweep("E13", plan=_e13_plan, finalize=_e13_finalize)
def scenario_scaling_shard(scale: str, seed: int, params: dict[str, object]) -> dict[str, object]:
    """One scenario family of the Theorem 1.3 SSSP pipeline, run end-to-end.

    Verifies exactness against the sequential oracle and records wall-clock
    time per instance; the families are the ones the CSR backend unlocked --
    preferential-attachment ("internet-like"), grid-with-highways
    ("road-network-like") and three-tier hierarchical ISP topologies.
    """
    name = params["scenario"]
    graph = _e13_graph(name, scale)
    n = graph.node_count
    network = _network(graph, seed=n)
    # repro-lint: waive[RL001] -- E13 wall-clock column; rides outside the hashed payload
    started = time.perf_counter()
    result = sssp_exact(network, source=0)
    # repro-lint: waive[RL001] -- E13 wall-clock column; rides outside the hashed payload
    elapsed = time.perf_counter() - started
    truth = reference.single_source_distances(graph, 0)
    exact = all(abs(result.distance(v) - d) <= 1e-9 for v, d in truth.items())
    return {
        "rows": [
            [
                name,
                n,
                graph.edge_count,
                int(graph.hop_diameter()),
                graph.backend,
                result.rounds,
                result.skeleton_size,
                exact,
            ]
        ],
        "wall_time_seconds": elapsed,
    }


# -------------------------------------------------------------------------- E14
def _e14_parameters(scale: str):
    if scale == "small":
        return 120, [0, 7]
    if scale == "medium":
        return 300, [0, 7, 31, 64]
    return 800, [0, 7, 31, 64, 127, 256]


def _e14_plan(scale: str) -> list[ShardPlan]:
    n, sssp_sources = _e14_parameters(scale)
    # A session serves its queries sequentially (later queries reuse earlier
    # preprocessing), so the whole workload is one shard.
    return [ShardPlan(family="session", seed=n, params={"n": n, "sssp_sources": sssp_sources})]


@register_sweep(
    "E14",
    plan=_e14_plan,
    finalize=plain_table(
        "E14",
        "Multi-query amortization on one HybridSession",
        [
            "query",
            "amortized rounds",
            "new prep rounds",
            "cold-equivalent rounds",
            "one-shot rounds",
            "cold/warm",
            "answers agree",
        ],
        [
            "The session pays the skeleton exploration, edge publication and helper-set "
            "construction once; every later query keeps only its own phases (the "
            "cold/warm column is the amortization factor).  One-shot rounds differ "
            "slightly from the cold-equivalent column because the one-shot functions "
            "choose their own per-theorem skeleton density.",
        ],
    ),
)
def session_amortization_shard(
    scale: str, seed: int, params: dict[str, object]
) -> list[list[object]]:
    """Multi-query amortization: a HybridSession vs one-shot calls per query.

    Runs a mixed APSP / SSSP / diameter workload against one
    :class:`~repro.session.HybridSession` and, side by side, against fresh
    one-shot function calls on identical fresh networks.  Per query the rows
    show the amortized rounds (warm session), the session's cold-equivalent
    accounting (amortized + shared preparation), and the one-shot rounds.
    Every distance/diameter answer is cross-checked between the two paths.
    """
    n, sssp_sources = params["n"], list(params["sssp_sources"])
    graph = _locality_graph(n, seed=n + 29)

    session = HybridSession(graph, ModelConfig(rng_seed=n))
    workload = [("apsp", None)] + [("sssp", s) for s in sssp_sources] + [("diameter", None)]
    answers = {}
    for kind, argument in workload:
        if kind == "apsp":
            answers[(kind, argument)] = session.apsp()
        elif kind == "sssp":
            answers[(kind, argument)] = session.sssp(argument)
        else:
            answers[(kind, argument)] = session.diameter()

    rows = []
    truth = reference.all_pairs_distances(graph)
    true_diameter = graph.hop_diameter()
    for record, (kind, argument) in zip(session.queries, workload, strict=True):
        one_shot_network = _network(graph, seed=n)
        if kind == "apsp":
            one_shot = apsp_exact(one_shot_network)
            agree = all(
                abs(answers[(kind, argument)].distance(u, v) - one_shot.distance(u, v)) <= 1e-9
                for u in range(n)
                for v, _ in truth[u].items()
            )
        elif kind == "sssp":
            one_shot = sssp_exact(one_shot_network, source=argument)
            agree = all(
                abs(answers[(kind, argument)].distance(v) - one_shot.distance(v)) <= 1e-9
                for v in range(n)
            )
        else:
            one_shot = approximate_diameter(one_shot_network, GatherDiameter())
            session_result = answers[(kind, argument)]
            # Both paths must bracket the true diameter within their declared
            # guarantee (with the local branch -- the regime at these scales --
            # both answer D exactly).
            agree = all(
                true_diameter - 1e-9
                <= result.estimate
                <= result.guaranteed_alpha() * true_diameter + 1e-9
                for result in (session_result, one_shot)
            )
        label = kind if argument is None else f"{kind}({argument})"
        rows.append(
            [
                label,
                record.amortized_rounds,
                record.preparation_rounds,
                record.cold_rounds,
                one_shot.rounds,
                round(record.cold_rounds / max(1, record.amortized_rounds), 2),
                agree,
            ]
        )
    rows.append(
        [
            "TOTAL",
            sum(r.amortized_rounds for r in session.queries),
            session.preprocessing_rounds,
            sum(r.cold_rounds for r in session.queries),
            "-",
            "-",
            True,
        ]
    )
    return rows


# -------------------------------------------------------------------------- E15
def _e15_parameters(scale: str):
    if scale == "small":
        return 64, ("locality", "power-law"), (0.0, 0.05, 0.2)
    if scale == "medium":
        return 200, ("locality", "power-law", "random"), (0.0, 0.05, 0.2)
    return 400, ("locality", "power-law", "random"), (0.0, 0.05, 0.2, 0.4)


def _e15_plan(scale: str) -> list[ShardPlan]:
    n, families, drop_rates = _e15_parameters(scale)
    return [
        ShardPlan(
            family=f"{family}-d{int(1000 * rate)}",
            seed=41 + index,
            params={"family": family, "n": n, "drop_rate": rate},
        )
        for index, (family, rate) in enumerate(
            (family, rate) for family in families for rate in drop_rates
        )
    ]


def _e15_graph(family: str, n: int):
    if family == "locality":
        return _locality_graph(n, seed=31)
    if family == "power-law":
        return generators.power_law_graph(n, RandomSource(31), attachment=2)
    return _random_graph(n, seed=31)


_E15_HEADERS = [
    "family",
    "n",
    "drop rate",
    "ideal rounds",
    "rounds under loss",
    "overhead",
    "dropped",
    "retransmitted",
    "delivered",
    "exact",
]


def _e15_finalize(scale: str, payloads: list[object]) -> ExperimentTable:
    rows = flatten_rows(payloads)
    return ExperimentTable(
        "E15",
        "Robustness under message loss: retransmitting SSSP vs the ideal model",
        _E15_HEADERS,
        rows,
        notes=[
            summarize_robustness(
                rows, _E15_HEADERS.index("drop rate"), _E15_HEADERS.index("overhead")
            ),
            "Every completed run stays exact: the acknowledged-retransmission layer "
            "either delivers all protocol traffic (results then equal the ideal "
            "model's bit for bit) or raises instead of returning a partial answer.  "
            "The drop_rate=0 rows pin the fault-free identity -- overhead exactly 1, "
            "zero dropped/retransmitted messages.",
        ],
    )


@register_sweep("E15", plan=_e15_plan, finalize=_e15_finalize, reseedable=True)
def robustness_shard(scale: str, seed: int, params: dict[str, object]) -> list[list[object]]:
    """E15: SSSP round overhead and accuracy at one (family, drop rate) point.

    Runs the Theorem 1.3 pipeline twice on the same graph -- once on the
    ideal model, once under a seeded i.i.d. drop schedule with the
    loss-tolerant protocols -- and reports the round overhead, the fault
    counters and exactness against the sequential oracle.
    """
    family, n, drop_rate = params["family"], params["n"], params["drop_rate"]
    graph = _e15_graph(family, n)
    truth = reference.single_source_distances(graph, 0)

    ideal_network = _network(graph, seed=seed)
    ideal = sssp_exact(ideal_network, source=0)

    faults = FaultModel(drop_rate=drop_rate, seed=seed, max_attempts=16)
    faulty_network = HybridNetwork(graph, ModelConfig(rng_seed=seed, faults=faults))
    delivered = True
    result = None
    try:
        result = sssp_exact(faulty_network, source=0)
    except FaultToleranceExceededError:
        delivered = False
    exact = delivered and all(
        abs(result.distance(v) - d) <= 1e-9 for v, d in truth.items()
    )
    rounds = result.rounds if delivered else faulty_network.metrics.total_rounds
    # A beaten schedule aborted mid-run: its round count is a truncation, not
    # an overhead, so the overhead column stays non-numeric and
    # summarize_robustness excludes it from the per-rate means.
    overhead = round(rounds / max(1, ideal.rounds), 3) if delivered else "beaten"
    return [
        [
            family,
            n,
            drop_rate,
            ideal.rounds,
            rounds,
            overhead,
            faulty_network.metrics.global_dropped,
            faulty_network.metrics.global_retried,
            delivered,
            exact,
        ]
    ]


# -------------------------------------------------------------------------- E16
def _e16_parameters(scale: str) -> tuple[int, int]:
    if scale == "small":
        return 64, 8
    if scale == "medium":
        return 256, 40
    return 512, 64


def _e16_plan(scale: str) -> list[ShardPlan]:
    n, queries = _e16_parameters(scale)
    return [ShardPlan(family="serving", seed=7, params={"n": n, "queries": queries})]


_E16_HEADERS = [
    "n",
    "queries",
    "batched passes",
    "sequential passes",
    "batched rounds",
    "sequential rounds",
    "round ratio",
    "identical",
    "batched qps",
    "batched p50 ms",
    "batched p99 ms",
    "sequential qps",
]


def _e16_finalize(scale: str, payloads: list[object]) -> ExperimentTable:
    # Deterministic columns come from the hashed rows; the serving-quality
    # wall measurements ride next to them under the payload's hash-excluded
    # wall_time_seconds slot (the E13 pattern) and are re-attached here.
    rows = []
    for payload in payloads:
        wall = payload["wall_time_seconds"]
        rows.append(
            payload["rows"][0]
            + [
                wall["batched_qps"],
                wall["batched_p50_ms"],
                wall["batched_p99_ms"],
                wall["sequential_qps"],
            ]
        )
    return ExperimentTable(
        "E16",
        "Serving layer: cross-query batching vs one-query-per-pass (QPS, tails)",
        _E16_HEADERS,
        rows,
        notes=[
            "The round ratio (sequential / batched total network rounds, shared "
            "preprocessing included) is deterministic at the fixed seed and is "
            "what the regression gate pins; QPS and latency percentiles are "
            "wall-clock serving quality and stay outside the hashed payload.  "
            "The identical column asserts the DESIGN.md §11 contract: batching "
            "changes cost, never answers.",
        ],
    )


@register_sweep("E16", plan=_e16_plan, finalize=_e16_finalize)
def serving_shard(scale: str, seed: int, params: dict[str, object]) -> dict[str, object]:
    """E16: one serving workload, batched and sequential, on fresh servers.

    Drives :func:`repro.serving.benchmark.run_comparison` -- a multi-tenant
    SSSP-heavy request mix answered by the asyncio query server with
    coalescing on and off -- and reports the deterministic cost profile next
    to the wall-clock QPS/latency measurements (DESIGN.md §11).
    """
    from repro.serving import benchmark as serving_benchmark

    summary = serving_benchmark.run_comparison(
        int(params["n"]), int(params["queries"]), seed
    )
    batched = summary["modes"]["batched"]
    sequential = summary["modes"]["sequential"]
    return {
        "rows": [
            [
                summary["n"],
                summary["query_count"],
                batched["passes"],
                sequential["passes"],
                batched["total_rounds"],
                sequential["total_rounds"],
                summary["round_throughput_ratio"],
                summary["responses_identical"],
            ]
        ],
        "wall_time_seconds": {
            "batched_qps": batched["qps"],
            "batched_p50_ms": batched["p50_ms"],
            "batched_p99_ms": batched["p99_ms"],
            "sequential_qps": sequential["qps"],
            "elapsed": batched["elapsed_s"] + sequential["elapsed_s"],
        },
    }


# -------------------------------------------------------------------------- E17
def _e17_parameters(scale: str) -> tuple[int, int]:
    if scale == "small":
        return 64, 4
    if scale == "medium":
        return 256, 6
    return 512, 8


def _e17_plan(scale: str) -> list[ShardPlan]:
    n, events = _e17_parameters(scale)
    return [
        ShardPlan(family=family, seed=17, params={"n": n, "events": events, "family": family})
        for family in ("random", "locality")
    ]


_E17_HEADERS = [
    "family",
    "n",
    "events",
    "repaired",
    "rebuilt",
    "repair tail rounds",
    "rebuild tail rounds",
    "amortized repair",
    "amortized rebuild",
    "round ratio",
    "identical",
]

_E17_NOTES = [
    "Both sessions answer an identical warm-APSP workload over an identical "
    "mutation schedule; the repair row reuses the warm SkeletonContext "
    "through the HybridSession delta log while the rebuild column pays a "
    "cold context per mutation (enable_repair=False).  The identical column "
    "pins the DESIGN.md \u00a712 determinism contract: repaired answers are "
    "bit-identical to cold ones.  Amortized columns are tail rounds per "
    "mutate-then-query event and the ratio is rebuild/repair (higher is a "
    "bigger repair win).  On the random family most events stay under the "
    "damage threshold; on the locality family a ring edge can sit on most "
    "shortest paths, so more events are refused and rebuilt cold -- the "
    "repaired/rebuilt split shows the threshold doing its job while the "
    "amortized win survives the mix.",
]


def _e17_graph(family: str, n: int, seed: int, max_weight: int):
    if family == "random":
        return generators.connected_workload(
            n, RandomSource(seed), weighted=True, max_weight=max_weight
        )
    return generators.random_geometric_like_graph(
        n,
        neighbourhood=2,
        rng=RandomSource(seed),
        extra_edge_probability=0.01,
        max_weight=max_weight,
    )


@register_sweep("E17", plan=_e17_plan, finalize=plain_table(
    "E17",
    "Incremental sessions: delta repair vs cold rebuild over evolving graphs",
    _E17_HEADERS,
    _E17_NOTES,
))
def incremental_repair_shard(
    scale: str, seed: int, params: dict[str, object]
) -> list[list[object]]:
    """E17: amortized mutate-then-query rounds, repair vs cold rebuild.

    Two sessions over bit-identical graphs of one family are warmed with one
    APSP each, then driven through the same deterministic schedule of
    single-edge weight *increases* on heavy off-skeleton edges (increases
    only invalidate rows whose shortest path used the edge, so the damage
    estimate stays informative); after every mutation both answer APSP
    again.  The repair session patches its warm context through the delta
    log (DESIGN.md \u00a712) while the baseline rebuilds cold, and the shard
    reports the post-warmup ("tail") round totals, per-event amortized costs
    and the answer-identity check.
    """
    n = int(params["n"])
    events = int(params["events"])
    family = str(params["family"])
    max_weight = 8

    repair_session = HybridSession(
        _e17_graph(family, n, seed, max_weight), ModelConfig(rng_seed=seed)
    )
    rebuild_session = HybridSession(
        _e17_graph(family, n, seed, max_weight),
        ModelConfig(rng_seed=seed),
        enable_repair=False,
    )

    identical = bool(
        (repair_session.apsp().matrix == rebuild_session.apsp().matrix).all()
    )
    repair_warm = repair_session.network.metrics.total_rounds
    rebuild_warm = rebuild_session.network.metrics.total_rounds

    # The mutation schedule: a random heavy edge away from the skeleton gets
    # heavier.  Off-skeleton keeps repair *eligible*; whether it is *chosen*
    # is the damage threshold's call, which is exactly what the repaired /
    # rebuilt columns report.
    skeleton_nodes = set(repair_session.context().skeleton.nodes)
    rng = RandomSource(seed).fork("e17:events")
    for _ in range(events):
        heavy = sorted(
            (u, v)
            for u, v, weight in repair_session.graph.edges()
            if u not in skeleton_nodes
            and v not in skeleton_nodes
            and weight >= max_weight // 2
        )
        u, v = heavy[rng.randrange(len(heavy))]
        new_weight = repair_session.graph.weight(u, v) + 1 + rng.randrange(4)
        repair_session.update_weight(u, v, new_weight)
        rebuild_session.update_weight(u, v, new_weight)
        identical = identical and bool(
            (repair_session.apsp().matrix == rebuild_session.apsp().matrix).all()
        )

    repair_tail = repair_session.network.metrics.total_rounds - repair_warm
    rebuild_tail = rebuild_session.network.metrics.total_rounds - rebuild_warm
    repaired = sum(1 for record in repair_session.repairs if record.action == "repaired")
    rebuilt = sum(1 for record in repair_session.repairs if record.action == "rebuilt")
    return [
        [
            family,
            n,
            events,
            repaired,
            rebuilt,
            repair_tail,
            rebuild_tail,
            round(repair_tail / events, 2),
            round(rebuild_tail / events, 2),
            round(rebuild_tail / repair_tail, 3) if repair_tail else float("inf"),
            identical,
        ]
    ]
