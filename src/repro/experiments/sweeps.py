"""The per-experiment sweeps (E1-E14 of the DESIGN.md index).

Every function reproduces one artefact of the paper (or, for E14, of this
library's serving layer) and returns an
:class:`~repro.experiments.runner.ExperimentTable`.  The supported scales are
:data:`~repro.experiments.runner.SCALES`: ``small`` (seconds, used by the
test suite and CI), ``medium`` (the scale recorded in EXPERIMENTS.md) and
``large`` (offline; exercised by the E14 amortization sweep).  All sweeps are
deterministic given the built-in seeds.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Sequence, Tuple

from repro.analysis.complexity import fit_power_law_with_log
from repro.baselines import (
    apsp_broadcast_baseline,
    local_only_shortest_paths,
    route_tokens_by_broadcast,
)
from repro.clique import (
    BroadcastBellmanFordSSSP,
    EccentricityDiameter,
    GatherDiameter,
    GatherShortestPaths,
)
from repro.core.apsp import apsp_exact
from repro.core.clique_simulation import HybridCliqueTransport, predicted_simulation_rounds
from repro.core.diameter import approximate_diameter
from repro.core.helper_sets import compute_helper_sets
from repro.core.kssp import predicted_framework_rounds, shortest_paths_via_clique
from repro.core.skeleton import compute_skeleton
from repro.core.sssp import sssp_exact
from repro.core.token_routing import make_tokens, predicted_routing_rounds, route_tokens
from repro.experiments.runner import ExperimentTable, register
from repro.graphs import generators, reference
from repro.graphs.skeleton_analysis import audit_skeleton
from repro.hybrid import HybridNetwork, ModelConfig
from repro.localnet import aggregate_max, disseminate_tokens
from repro.lower_bounds import (
    assignment_entropy_bits,
    build_gamma_gadget,
    build_kssp_gadget,
    classify_disjointness_from_diameter,
    distance_gap_factor,
    measure_cut_traffic,
    random_disjointness_instance,
    verify_simulation_partition,
)
from repro.lower_bounds import kssp_gadget as kssp_lb
from repro.lower_bounds import set_disjointness as diam_lb
from repro.session import HybridSession
from repro.util.rand import RandomSource, sample_nodes


def _network(graph, seed: int = 1) -> HybridNetwork:
    return HybridNetwork(graph, ModelConfig(rng_seed=seed))


def _locality_graph(n: int, seed: int = 1):
    return generators.random_geometric_like_graph(
        n, neighbourhood=2, rng=RandomSource(seed), extra_edge_probability=0.01
    )


def _random_graph(n: int, seed: int = 1, weighted: bool = True):
    return generators.connected_workload(
        n, RandomSource(seed), weighted=weighted, max_weight=8
    )


# --------------------------------------------------------------------------- E1
@register("E1")
def token_routing_experiment(scale: str) -> ExperimentTable:
    """Theorem 2.2: token-routing rounds vs the ``K/n + √k_S + √k_R`` shape."""
    n = 150 if scale == "small" else 400
    workloads = [2, 8, 32] if scale == "small" else [2, 8, 32, 128]
    graph = _locality_graph(n, seed=1)
    rows = []
    for tokens_per_sender in workloads:
        rng = RandomSource(tokens_per_sender)
        senders = rng.sample(list(range(n)), max(4, n // 5))
        tokens = make_tokens(
            {
                s: [(rng.randrange(n), ("p", s, i)) for i in range(tokens_per_sender)]
                for s in senders
            }
        )
        network = _network(graph, seed=tokens_per_sender)
        result = route_tokens(network, tokens)
        receivers = len(result.delivered)
        shape = predicted_routing_rounds(
            n, len(senders), receivers, tokens_per_sender, max(1, len(tokens) // max(1, receivers))
        )
        rows.append(
            [
                n,
                len(senders),
                tokens_per_sender,
                len(tokens),
                result.rounds,
                round(shape, 1),
                network.metrics.max_received_per_round,
                network.receive_cap,
            ]
        )
    return ExperimentTable(
        "E1",
        "Token routing (Theorem 2.2)",
        ["n", "senders", "k per sender", "K total", "measured rounds", "K/n+√kS+√kR", "max recv/round", "recv cap"],
        rows,
        notes=[
            "The protocol keeps the per-round receive load within the O(log n) budget "
            "(last two columns) while the rounds grow with the Theorem 2.2 shape.",
        ],
    )


# --------------------------------------------------------------------------- E2
@register("E2")
def apsp_experiment(scale: str) -> ExperimentTable:
    """Theorem 1.1 vs the SODA'20 baseline on the same instances."""
    sizes = [64, 100, 160] if scale == "small" else [100, 200, 400, 800]
    rows = []
    new_rounds, baseline_rounds = [], []
    for n in sizes:
        graph = _locality_graph(n, seed=n)
        truth = reference.all_pairs_distances(graph)

        network = _network(graph, seed=n)
        new = apsp_exact(network)
        new_exact = all(
            abs(new.distance(u, v) - d) <= 1e-9 for u in range(n) for v, d in truth[u].items()
        )

        baseline_network = _network(graph, seed=n)
        baseline = apsp_broadcast_baseline(baseline_network)
        base_exact = all(
            abs(baseline.distance(u, v) - d) <= 1e-9
            for u in range(n)
            for v, d in truth[u].items()
        )
        # The step the two algorithms differ in: Theorem 1.1 replaces the
        # baseline's broadcast of all |V|·|V_S| labels with one token-routing
        # instance.  Its cost is read off the phase accounting.
        new_bottleneck = network.metrics.rounds_for_phase_prefix("apsp:routing")
        baseline_bottleneck = baseline_network.metrics.rounds_for_phase_prefix(
            "apsp-baseline:label-broadcast"
        )
        new_rounds.append(new.rounds)
        baseline_rounds.append(baseline.rounds)
        rows.append(
            [
                n,
                int(graph.hop_diameter()),
                new.rounds,
                baseline.rounds,
                new_bottleneck,
                baseline_bottleneck,
                round(n ** 0.5, 1),
                round(n ** (2 / 3), 1),
                new_exact and base_exact,
            ]
        )
    fit_new = fit_power_law_with_log(sizes, new_rounds)
    fit_base = fit_power_law_with_log(sizes, baseline_rounds)
    bottleneck_fit_new = fit_power_law_with_log(sizes, [row[4] for row in rows])
    bottleneck_fit_base = fit_power_law_with_log(sizes, [row[5] for row in rows])
    return ExperimentTable(
        "E2",
        "Exact APSP: Theorem 1.1 (Õ(√n)) vs Augustine et al. baseline (Õ(n^2/3))",
        [
            "n",
            "D",
            "rounds (Thm 1.1)",
            "rounds (baseline)",
            "last-step rounds (routing)",
            "last-step rounds (label broadcast)",
            "√n",
            "n^2/3",
            "both exact",
        ],
        rows,
        notes=[
            f"fitted exponent of total rounds (with log factor): new {fit_new.exponent:.2f}, "
            f"baseline {fit_base.exponent:.2f}; paper: 0.5 vs 0.667.",
            f"fitted exponent of the differing last step: routing {bottleneck_fit_new.exponent:.2f} "
            f"vs label broadcast {bottleneck_fit_base.exponent:.2f} -- this is the step whose "
            "cost separates √n from n^2/3 in the paper.",
            "At simulation scale total rounds are dominated by local phases capped at D "
            "(the paper's min(D, ·) reading), so the separation is visible in the "
            "last-step columns rather than in the totals (discussion in EXPERIMENTS.md).",
        ],
    )


# --------------------------------------------------------------------------- E3
@register("E3")
def kssp_experiment(scale: str) -> ExperimentTable:
    """Theorem 4.1 framework: rounds and stretch for several source counts."""
    n = 120 if scale == "small" else 300
    ks = [2, 8] if scale == "small" else [2, 8, 32]
    rows = []
    for k in ks:
        for weighted in (True, False):
            graph = _random_graph(n, seed=k + (1 if weighted else 0), weighted=weighted)
            sources = RandomSource(k).sample(list(range(n)), k)
            network = _network(graph, seed=k)
            result = shortest_paths_via_clique(network, sources, GatherShortestPaths())
            truth = reference.multi_source_distances(graph, sources)
            stretch = 1.0
            undershoot = False
            for s in sources:
                for v in range(n):
                    true_value = truth[s][v]
                    estimate = result.estimate(v, s)
                    if estimate < true_value - 1e-9:
                        undershoot = True
                    if true_value > 0:
                        stretch = max(stretch, estimate / true_value)
            rows.append(
                [
                    n,
                    k,
                    "weighted" if weighted else "unweighted",
                    result.rounds,
                    round(predicted_framework_rounds(n, result.spec), 1),
                    round(stretch, 3),
                    round(result.guaranteed_alpha(weighted), 2),
                    not undershoot,
                    result.skeleton_size,
                ]
            )
    return ExperimentTable(
        "E3",
        "k-SSP framework (Theorem 4.1) with the gather-exact CLIQUE plug-in",
        [
            "n",
            "k",
            "weights",
            "measured rounds",
            "η·n^(1-x)",
            "measured stretch",
            "guaranteed α",
            "one-sided",
            "skeleton size",
        ],
        rows,
        notes=[
            "Measured stretch is far below the transformed guarantee (the guarantee is "
            "worst-case over the representative detour); estimates never undershoot.",
        ],
    )


# --------------------------------------------------------------------------- E4
@register("E4")
def sssp_experiment(scale: str) -> ExperimentTable:
    """Theorem 1.3: exact SSSP rounds vs the framework shape and the LOCAL baseline."""
    sizes = [64, 128] if scale == "small" else [100, 200, 400]
    rows = []
    for n in sizes:
        graph = _locality_graph(n, seed=n + 3)
        network = _network(graph, seed=n)
        result = sssp_exact(network, source=0)
        truth = reference.single_source_distances(graph, 0)
        exact = all(abs(result.distance(v) - d) <= 1e-9 for v, d in truth.items())
        spec = BroadcastBellmanFordSSSP().spec
        rows.append(
            [
                n,
                int(graph.hop_diameter()),
                result.rounds,
                round(predicted_framework_rounds(n, spec), 1),
                int(graph.hop_diameter()),
                exact,
                result.skeleton_size,
            ]
        )
    return ExperimentTable(
        "E4",
        "Exact SSSP (Theorem 1.3) via the framework with γ = 0",
        ["n", "D", "measured rounds", "η·n^(1-x)", "LOCAL-only rounds (D)", "exact", "skeleton size"],
        rows,
        notes=[
            "The substitute CLIQUE SSSP has δ = 1 (x = 2/5), so the framework shape is "
            "n^(3/5); with the paper's algebraic CLIQUE algorithm (δ = 1/6) the same "
            "framework yields the Õ(n^{2/5}) of Theorem 1.3.",
        ],
    )


# --------------------------------------------------------------------------- E5
@register("E5")
def diameter_experiment(scale: str) -> ExperimentTable:
    """Theorem 1.4 / 5.1: diameter approximation quality and rounds."""
    sizes = [100, 200] if scale == "small" else [200, 400]
    rows = []
    for n in sizes:
        graph = _locality_graph(n, seed=n + 7)
        true_diameter = graph.hop_diameter()
        for name, plugin in (("gather-exact", GatherDiameter()), ("eccentricity", EccentricityDiameter())):
            network = _network(graph, seed=n)
            result = approximate_diameter(network, plugin)
            rows.append(
                [
                    n,
                    int(true_diameter),
                    name,
                    round(result.estimate, 1),
                    round(result.estimate / true_diameter, 3),
                    round(result.guaranteed_alpha(), 2),
                    result.rounds,
                    result.used_local_estimate,
                ]
            )
    return ExperimentTable(
        "E5",
        "Diameter approximation (Theorem 5.1 / 1.4)",
        ["n", "D", "CLIQUE plug-in", "estimate", "ratio", "guaranteed α", "rounds", "local branch"],
        rows,
        notes=[
            "Estimates never undershoot D and stay well within the transformed "
            "guarantee α + 2/η + β/T_B.",
        ],
    )


# --------------------------------------------------------------------------- E6
@register("E6")
def kssp_lower_bound_experiment(scale: str) -> ExperimentTable:
    """Theorem 1.5 / Figure 1: the k-SSP lower-bound gadget."""
    ks = [16, 64] if scale == "small" else [16, 64, 256]
    path_hops = 120 if scale == "small" else 400
    rows = []
    for k in ks:
        gadget = build_kssp_gadget(path_hops, k, RandomSource(k))
        config = ModelConfig()
        n = gadget.graph.node_count
        bound = kssp_lb.implied_round_lower_bound(
            gadget, config.message_bits, config.send_cap(n)
        )
        rows.append(
            [
                k,
                n,
                gadget.bottleneck_distance,
                round(distance_gap_factor(gadget), 1),
                round(n / math.sqrt(k), 1),
                round(assignment_entropy_bits(gadget), 1),
                round(bound, 2),
                round(math.sqrt(k), 1),
            ]
        )
    return ExperimentTable(
        "E6",
        "k-SSP lower bound gadget (Theorem 1.5, Figure 1)",
        [
            "k",
            "n",
            "L",
            "distance gap",
            "Θ(n/√k)",
            "entropy bits",
            "implied lower bound (rounds)",
            "√k",
        ],
        rows,
        notes=[
            "The distance gap grows as Θ(n/√k) (columns 4-5), so any approximation "
            "below that factor must identify the hidden split, whose Ω(k) bits must "
            "cross the L-hop bottleneck: Ω̃(√k) rounds.",
        ],
    )


# --------------------------------------------------------------------------- E7
@register("E7")
def diameter_lower_bound_experiment(scale: str) -> ExperimentTable:
    """Theorem 1.6 / Figure 2: diameter dichotomy and Alice/Bob accounting."""
    k = 5 if scale == "small" else 8
    path_hops = 6 if scale == "small" else 10
    weight = 4 * path_hops
    rows = []
    for weighted in (False, True):
        for disjoint in (True, False):
            seed = (17 if disjoint else 23) + (100 if weighted else 0)
            a, b = random_disjointness_instance(k, RandomSource(seed), disjoint)
            gadget = build_gamma_gadget(k, path_hops, weight if weighted else 1, a, b)
            diameter = (
                reference.weighted_diameter(gadget.graph)
                if weighted
                else reference.hop_diameter(gadget.graph)
            )
            correct = classify_disjointness_from_diameter(gadget, diameter) == disjoint
            partition_ok = verify_simulation_partition(gadget, path_hops // 2)
            measurement = measure_cut_traffic(
                build_gamma_gadget(k, path_hops, 1, a, b),
                ModelConfig(rng_seed=1),
                lambda network: approximate_diameter(network, GatherDiameter()),
            )
            rows.append(
                [
                    "weighted" if weighted else "unweighted",
                    "disjoint" if disjoint else "intersecting",
                    gadget.node_count,
                    round(diameter, 1),
                    correct,
                    partition_ok,
                    measurement.total_rounds,
                    measurement.cut_bits,
                    int(measurement.required_bits),
                ]
            )
    return ExperimentTable(
        "E7",
        "Diameter lower bound gadget Γ (Theorem 1.6, Lemmas 7.1-7.3, Figure 2)",
        [
            "case",
            "inputs",
            "n",
            "diameter",
            "classification correct",
            "Lemma 7.3 partition ok",
            "algorithm rounds",
            "cut bits moved",
            "Ω(k²) bits required",
        ],
        rows,
        notes=[
            "Exact diameters separate disjoint from intersecting instances exactly as "
            "Lemmas 7.1/7.2 predict, and the Alice/Bob column partition never needs a "
            "local message to cross the cut (Lemma 7.3).",
        ],
    )


# --------------------------------------------------------------------------- E8
@register("E8")
def clique_simulation_experiment(scale: str) -> ExperimentTable:
    """Corollary 4.1: HYBRID cost of one simulated CLIQUE round vs skeleton size."""
    n = 180 if scale == "small" else 400
    exponents = [0.3, 0.5, 0.7]
    graph = _locality_graph(n, seed=2)
    rows = []
    for x in exponents:
        network = _network(graph, seed=int(100 * x))
        skeleton = compute_skeleton(network, n ** (x - 1.0), ensure_connected=True)
        transport = HybridCliqueTransport(network, skeleton)
        before = network.metrics.total_rounds
        repeats = 3
        for _ in range(repeats):
            transport.exchange({})
        per_round = (network.metrics.total_rounds - before) / repeats
        rows.append(
            [
                n,
                x,
                skeleton.size,
                round(per_round, 1),
                round(predicted_simulation_rounds(n, skeleton.size), 1),
            ]
        )
    return ExperimentTable(
        "E8",
        "Simulating one CLIQUE round on a skeleton (Corollary 4.1)",
        ["n", "x (skeleton ≈ n^x)", "skeleton size", "HYBRID rounds / CLIQUE round", "s²/n + √s"],
        rows,
        notes=[
            "The per-round simulation cost grows with the skeleton size; at this scale "
            "it is dominated by the Routing-Preparation local floods of the underlying "
            "token-routing instance (a polylog-factor additive term in Corollary 4.1), "
            "with the |S|²/n + √|S| global term on top.",
        ],
    )


# --------------------------------------------------------------------------- E9
@register("E9")
def skeleton_experiment(scale: str) -> ExperimentTable:
    """Lemmas C.1 / C.2: skeleton connectivity, distance preservation, path gaps."""
    n = 150 if scale == "small" else 400
    graph = _random_graph(n, seed=5)
    probabilities = [0.1, 0.25, 0.5]
    rows = []
    for p in probabilities:
        network = _network(graph, seed=int(p * 100))
        skeleton = compute_skeleton(network, p)
        report = audit_skeleton(graph, skeleton.nodes, skeleton.hop_length, RandomSource(3), 40)
        rows.append(
            [
                n,
                p,
                report.node_count,
                report.edge_count,
                skeleton.hop_length,
                report.connected,
                report.distance_preserving,
                report.max_gap_hops,
            ]
        )
    return ExperimentTable(
        "E9",
        "Skeleton graph properties (Lemmas C.1 / C.2)",
        ["n", "sampling p", "skeleton size", "skeleton edges", "h", "connected", "distance preserving", "max gap (hops)"],
        rows,
        notes=[
            "Every audited skeleton is connected and preserves exact distances between "
            "sampled nodes; the largest skeleton-free stretch on audited shortest paths "
            "stays below the hop length h, as Lemma C.1 promises w.h.p.",
        ],
    )


# -------------------------------------------------------------------------- E10
@register("E10")
def helper_set_experiment(scale: str) -> ExperimentTable:
    """Lemma 2.2: the three helper-set properties of Definition 2.1."""
    n = 160 if scale == "small" else 400
    graph = _locality_graph(n, seed=9)
    settings = [(0.1, 4), (0.1, 64), (0.3, 16)]
    rows = []
    for probability, tokens in settings:
        members = sample_nodes(range(n), probability, RandomSource(int(probability * 100))) or [0]
        network = _network(graph, seed=tokens)
        helpers = compute_helper_sets(network, members, tokens_per_member=tokens)
        rows.append(
            [
                n,
                len(members),
                tokens,
                helpers.mu,
                helpers.min_helper_count(),
                helpers.max_membership_load(),
                helpers.max_helper_radius(network),
                helpers.rounds_charged,
            ]
        )
    return ExperimentTable(
        "E10",
        "Helper sets (Definition 2.1 / Lemma 2.2)",
        ["n", "members", "k", "µ", "min helper count", "max load", "max radius", "rounds"],
        rows,
        notes=[
            "Helper sets reach the target size µ, no node serves many members, and "
            "helpers stay within Õ(µ) hops -- the three properties Definition 2.1 needs.",
        ],
    )


# -------------------------------------------------------------------------- E11
@register("E11")
def routing_ablation_experiment(scale: str) -> ExperimentTable:
    """Ablation: token routing vs broadcasting the same workload."""
    n = 150 if scale == "small" else 400
    graph = _locality_graph(n, seed=13)
    rng = RandomSource(13)
    senders = rng.sample(list(range(n)), n // 5)
    tokens = make_tokens(
        {s: [(rng.randrange(n), ("w", s, i)) for i in range(16)] for s in senders}
    )
    rows = []
    routing_network = _network(graph, seed=1)
    routing = route_tokens(routing_network, tokens)
    broadcast_network = _network(graph, seed=1)
    broadcast = route_tokens_by_broadcast(broadcast_network, tokens)
    for label, network, rounds in (
        ("token routing (Thm 2.2)", routing_network, routing.rounds),
        ("broadcast (Lemma B.1)", broadcast_network, broadcast.rounds),
    ):
        rows.append(
            [
                label,
                len(tokens),
                rounds,
                network.metrics.global_messages,
                network.max_total_received(),
            ]
        )
    return ExperimentTable(
        "E11",
        "Ablation: routing point-to-point tokens vs broadcasting them",
        ["strategy", "K", "rounds", "global messages", "busiest node received"],
        rows,
        notes=[
            "Broadcasting forces the whole workload through every node's global budget; "
            "routing touches only the endpoints' helper sets (Section 2's motivation).",
        ],
    )


# -------------------------------------------------------------------------- E12
@register("E12")
def dissemination_experiment(scale: str) -> ExperimentTable:
    """Lemma B.1 (token dissemination) and Lemma B.2 (aggregation)."""
    n = 150 if scale == "small" else 400
    graph = _locality_graph(n, seed=15)
    per_node_counts = [1, 4, 16]
    rows = []
    for per_node in per_node_counts:
        tokens = {node: [("t", node, i) for i in range(per_node)] for node in range(n)}
        network = _network(graph, seed=per_node)
        result = disseminate_tokens(network, tokens)
        total = n * per_node
        rows.append(
            [
                "dissemination",
                n,
                total,
                result.rounds,
                network.metrics.global_rounds,
                round(math.sqrt(total) + per_node + total / n, 1),
            ]
        )
    aggregation_network = _network(graph, seed=99)
    aggregate_max(aggregation_network, {node: float(node) for node in range(n)})
    rows.append(
        [
            "aggregation (max)",
            n,
            n,
            aggregation_network.metrics.total_rounds,
            aggregation_network.metrics.global_rounds,
            round(math.log2(n), 1),
        ]
    )
    return ExperimentTable(
        "E12",
        "Token dissemination (Lemma B.1) and NCC aggregation (Lemma B.2)",
        ["protocol", "n", "k values", "total rounds", "global rounds", "paper shape"],
        rows,
        notes=[
            "Total dissemination rounds at this scale are dominated by the cluster "
            "construction's local floods (capped at D); the global-mode rounds grow "
            "with √k / log n as Lemma B.1's bandwidth argument predicts.  The "
            "aggregation completes in O(log n) global rounds.",
        ],
    )


# -------------------------------------------------------------------------- E13
@register("E13")
def scenario_scaling_experiment(scale: str) -> ExperimentTable:
    """New workload families at the scales the array-backed core makes feasible.

    Runs the Theorem 1.3 SSSP pipeline end-to-end on the scenario families the
    CSR backend unlocked -- preferential-attachment ("internet-like"),
    grid-with-highways ("road-network-like") and three-tier hierarchical ISP
    topologies -- verifying exactness against the sequential oracle and
    recording wall-clock time per instance.
    """
    if scale == "small":
        scenarios = [
            ("power-law", generators.power_law_graph(200, RandomSource(21), attachment=2)),
            ("grid+highways", generators.grid_with_highways_graph(10, 16, 8, RandomSource(22))),
            (
                "hierarchical-isp",
                generators.hierarchical_isp_graph(5, 3, 6, RandomSource(23)),
            ),
        ]
    else:
        scenarios = [
            ("power-law", generators.power_law_graph(1024, RandomSource(21), attachment=2)),
            ("grid+highways", generators.grid_with_highways_graph(24, 32, 24, RandomSource(22))),
            (
                "hierarchical-isp",
                generators.hierarchical_isp_graph(8, 6, 16, RandomSource(23)),
            ),
        ]
    rows = []
    for name, graph in scenarios:
        n = graph.node_count
        network = _network(graph, seed=n)
        started = time.perf_counter()
        result = sssp_exact(network, source=0)
        elapsed = time.perf_counter() - started
        truth = reference.single_source_distances(graph, 0)
        exact = all(abs(result.distance(v) - d) <= 1e-9 for v, d in truth.items())
        rows.append(
            [
                name,
                n,
                graph.edge_count,
                int(graph.hop_diameter()),
                graph.backend,
                result.rounds,
                result.skeleton_size,
                exact,
                round(elapsed, 3),
            ]
        )
    return ExperimentTable(
        "E13",
        "Scenario families unlocked by the CSR core (SSSP end-to-end)",
        ["scenario", "n", "m", "D", "backend", "rounds", "skeleton size", "exact", "seconds"],
        rows,
        notes=[
            "Each family stresses a different resource: power-law graphs load the "
            "global mode's per-hub capacity, grid-with-highways makes weighted d_h "
            "diverge from hop counts, and the ISP hierarchy has LAN-dense leaves "
            "behind a small backbone.  All runs stay exact; benchmarks/BENCH_core.json "
            "tracks the wall-clock trajectory per backend.",
        ],
    )


# -------------------------------------------------------------------------- E14
@register("E14")
def session_amortization_experiment(scale: str) -> ExperimentTable:
    """Multi-query amortization: a HybridSession vs one-shot calls per query.

    Runs a mixed APSP / SSSP / diameter workload against one
    :class:`~repro.session.HybridSession` and, side by side, against fresh
    one-shot function calls on identical fresh networks.  Per query the table
    shows the amortized rounds (warm session), the session's cold-equivalent
    accounting (amortized + shared preparation), and the one-shot rounds.
    Every distance/diameter answer is cross-checked between the two paths.
    """
    if scale == "small":
        n, sssp_sources = 120, [0, 7]
    elif scale == "medium":
        n, sssp_sources = 300, [0, 7, 31, 64]
    else:
        n, sssp_sources = 800, [0, 7, 31, 64, 127, 256]
    graph = _locality_graph(n, seed=n + 29)

    session = HybridSession(graph, ModelConfig(rng_seed=n))
    workload = [("apsp", None)] + [("sssp", s) for s in sssp_sources] + [("diameter", None)]
    answers = {}
    for kind, argument in workload:
        if kind == "apsp":
            answers[(kind, argument)] = session.apsp()
        elif kind == "sssp":
            answers[(kind, argument)] = session.sssp(argument)
        else:
            answers[(kind, argument)] = session.diameter()

    rows = []
    truth = reference.all_pairs_distances(graph)
    true_diameter = graph.hop_diameter()
    for record, (kind, argument) in zip(session.queries, workload):
        one_shot_network = _network(graph, seed=n)
        if kind == "apsp":
            one_shot = apsp_exact(one_shot_network)
            agree = all(
                abs(answers[(kind, argument)].distance(u, v) - one_shot.distance(u, v)) <= 1e-9
                for u in range(n)
                for v, _ in truth[u].items()
            )
        elif kind == "sssp":
            one_shot = sssp_exact(one_shot_network, source=argument)
            agree = all(
                abs(answers[(kind, argument)].distance(v) - one_shot.distance(v)) <= 1e-9
                for v in range(n)
            )
        else:
            one_shot = approximate_diameter(one_shot_network, GatherDiameter())
            session_result = answers[(kind, argument)]
            # Both paths must bracket the true diameter within their declared
            # guarantee (with the local branch -- the regime at these scales --
            # both answer D exactly).
            agree = all(
                true_diameter - 1e-9
                <= result.estimate
                <= result.guaranteed_alpha() * true_diameter + 1e-9
                for result in (session_result, one_shot)
            )
        label = kind if argument is None else f"{kind}({argument})"
        rows.append(
            [
                label,
                record.amortized_rounds,
                record.preparation_rounds,
                record.cold_rounds,
                one_shot.rounds,
                round(record.cold_rounds / max(1, record.amortized_rounds), 2),
                agree,
            ]
        )
    rows.append(
        [
            "TOTAL",
            sum(r.amortized_rounds for r in session.queries),
            session.preprocessing_rounds,
            sum(r.cold_rounds for r in session.queries),
            "-",
            "-",
            True,
        ]
    )
    return ExperimentTable(
        "E14",
        "Multi-query amortization on one HybridSession",
        [
            "query",
            "amortized rounds",
            "new prep rounds",
            "cold-equivalent rounds",
            "one-shot rounds",
            "cold/warm",
            "answers agree",
        ],
        rows,
        notes=[
            "The session pays the skeleton exploration, edge publication and helper-set "
            "construction once; every later query keeps only its own phases (the "
            "cold/warm column is the amortization factor).  One-shot rounds differ "
            "slightly from the cold-equivalent column because the one-shot functions "
            "choose their own per-theorem skeleton density.",
        ],
    )
