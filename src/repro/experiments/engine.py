"""Process-parallel, resumable execution of the registered sweeps.

The registry (:mod:`repro.experiments.runner`) decomposes every experiment
into independent ``(experiment, scale, graph family, seed, trial)`` shards;
this module is the machinery that executes them at scale:

* :func:`plan_shards` resolves the shard decomposition of a set of
  experiments at one scale.  Trial 0 of every shard carries the sweep's
  canonical built-in seed (the one that reproduces the committed tables);
  replica trials of reseedable sweeps draw their seeds from a deterministic
  ``numpy.random.SeedSequence`` stream keyed by the shard's identity, so the
  seed of a shard never depends on which other shards run.
* :class:`ExperimentEngine` executes shards across a ``multiprocessing``
  pool (``jobs=1`` degenerates to an in-process serial loop -- the two are
  bit-identical because every shard rebuilds its graphs and networks from
  its own seeds and is observed through a fresh ambient
  :class:`~repro.hybrid.metrics.RoundMetrics` scope).
* :class:`ArtifactStore` persists each completed shard as a content-addressed
  JSON artifact (``<root>/<experiment>/<family>-t<trial>-<spec hash>.json``)
  plus a deterministic ``manifest.json``, so an interrupted run resumes by
  skipping every shard whose artifact already matches its spec.
* :func:`assemble_tables` rebuilds the experiment tables from stored
  payloads, which is how ``repro.cli sweep`` renders its report.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.experiments.runner import (
    ExperimentTable,
    available_experiments,
    get_sweep,
)
from repro.hybrid.metrics import ambient_observer

ENGINE_VERSION = 1

#: Root entropy of the replica-trial seed stream (the paper's year).  Trial 0
#: never consumes it -- canonical seeds come from the sweep plans -- so the
#: committed tables are independent of this value.
DEFAULT_ROOT_SEED = 2020


def _slug(text: str) -> str:
    """A filesystem-safe lowercase label (non-alphanumerics collapse to ``-``)."""
    cleaned = "".join(ch if ch.isalnum() else "-" for ch in str(text).lower())
    while "--" in cleaned:
        cleaned = cleaned.replace("--", "-")
    return cleaned.strip("-") or "shard"


def _canonical_json(value: object) -> str:
    """Canonical JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _json_default(value: object) -> object:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


def _jsonable(value: object) -> object:
    """Normalize a payload to plain JSON types (tuples to lists, numpy to
    Python scalars), so in-memory results and reloaded artifacts compare
    bit-identically."""
    return json.loads(json.dumps(value, default=_json_default))


@dataclass(frozen=True)
class Shard:
    """One unit of work: an experiment's parameter point at one scale.

    ``params`` is stored as a sorted tuple of items so shards are hashable
    and their canonical JSON spec is stable.
    """

    experiment: str
    scale: str
    family: str
    seed: int
    trial: int
    params: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def make(
        experiment: str,
        scale: str,
        family: str,
        seed: int,
        trial: int,
        params: dict[str, object] | None = None,
    ) -> "Shard":
        items = tuple(sorted((params or {}).items()))
        return Shard(experiment, scale, family, seed, trial, items)

    @staticmethod
    def from_spec(spec: dict[str, object]) -> "Shard":
        return Shard.make(
            spec["experiment"],
            spec["scale"],
            spec["family"],
            spec["seed"],
            spec["trial"],
            dict(spec.get("params", {})),
        )

    def spec(self) -> dict[str, object]:
        """The full, JSON-serialisable shard identity."""
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "family": self.family,
            "seed": self.seed,
            "trial": self.trial,
            "params": dict(self.params),
        }

    @property
    def spec_hash(self) -> str:
        """SHA-256 of the canonical spec (the shard's content address)."""
        return hashlib.sha256(_canonical_json(_jsonable(self.spec())).encode()).hexdigest()

    @property
    def key(self) -> str:
        """Stable identifier used as the artifact file stem and manifest key."""
        return (
            f"{self.experiment}-{self.scale}-{_slug(self.family)}"
            f"-t{self.trial}-{self.spec_hash[:12]}"
        )


def _trial_seed_lane(
    root_seed: int, experiment: str, scale: str, family: str
) -> np.random.SeedSequence:
    """The per-shard ``SeedSequence`` replica trials spawn their seeds from.

    The lane is keyed by the shard's identity (not its position in the plan),
    so adding experiments or filtering with ``--only`` never shifts the seeds
    of unrelated shards.
    """
    digest = hashlib.sha256(f"{experiment}/{scale}/{family}".encode()).digest()
    spawn_key = tuple(int.from_bytes(digest[i : i + 4], "big") for i in range(0, 16, 4))
    return np.random.SeedSequence(entropy=root_seed, spawn_key=spawn_key)


def replica_seeds(
    root_seed: int, experiment: str, scale: str, family: str, trials: int
) -> list[int]:
    """Deterministic seeds for trials ``1 .. trials-1`` of one shard family."""
    if trials <= 1:
        return []
    lane = _trial_seed_lane(root_seed, experiment, scale, family)
    return [int(child.generate_state(1, dtype=np.uint32)[0]) for child in lane.spawn(trials - 1)]


def plan_shards(
    experiment_ids: Sequence[str] | None = None,
    scale: str = "small",
    trials: int = 1,
    root_seed: int = DEFAULT_ROOT_SEED,
) -> list[Shard]:
    """Decompose the requested experiments into their executable shards.

    ``trials > 1`` appends replica shards (with spawned seeds) for every
    sweep that declares itself ``reseedable``; trial 0 always carries the
    canonical seed, so the assembled tables are unaffected by replication.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    ids = list(experiment_ids) if experiment_ids is not None else available_experiments()
    shards: list[Shard] = []
    for experiment_id in ids:
        sweep = get_sweep(experiment_id)
        for plan in sweep.shard_plans(scale):
            shards.append(
                Shard.make(sweep.experiment_id, scale, plan.family, plan.seed, 0, plan.params)
            )
            if sweep.reseedable:
                seeds = replica_seeds(
                    root_seed, sweep.experiment_id, scale, plan.family, trials
                )
                for trial, seed in enumerate(seeds, start=1):
                    shards.append(
                        Shard.make(
                            sweep.experiment_id, scale, plan.family, seed, trial, plan.params
                        )
                    )
    return shards


def execute_shard(shard: Shard) -> dict[str, object]:
    """Run one shard in the current process and return its artifact record.

    The shard's networks are observed through an ambient metrics scope, so
    the record carries the exact :class:`RoundMetrics` totals of everything
    the shard simulated -- deterministic, and therefore bit-identical between
    serial and parallel execution at fixed seeds.
    """
    sweep = get_sweep(shard.experiment)
    # repro-lint: waive[RL001] -- shard wall time; stored outside the hashed payload
    started = time.perf_counter()
    with ambient_observer() as observed:
        payload = sweep.run_shard(shard.scale, shard.seed, dict(shard.params))
    # repro-lint: waive[RL001] -- shard wall time; stored outside the hashed payload
    wall_time = time.perf_counter() - started
    return {
        "engine_version": ENGINE_VERSION,
        "spec": _jsonable(shard.spec()),
        "payload": _jsonable(payload),
        "metrics": _jsonable(observed.as_dict()),
        "wall_time_seconds": wall_time,
    }


def _worker_run(
    spec: dict[str, object],
) -> tuple[dict[str, object], dict[str, object], str | None]:
    """Pool worker: execute one shard spec, never raise (errors are data)."""
    shard = Shard.from_spec(spec)
    try:
        return spec, execute_shard(shard), None
    except Exception as error:  # noqa: BLE001 - a shard failure must not kill the pool
        return spec, {}, f"{type(error).__name__}: {error}"


class ArtifactStore:
    """Durable, content-addressed storage for completed shards.

    Layout::

        <root>/manifest.json                      deterministic run inventory
        <root>/<EXP>/<family>-t<k>-<hash12>.json  one record per shard

    Each record embeds the shard's full spec; :meth:`load_record` only
    accepts a file whose embedded spec matches the requesting shard, so a
    renamed, truncated or stale artifact is treated as absent (and the shard
    re-runs) instead of corrupting a resumed sweep.
    """

    MANIFEST_NAME = "manifest.json"

    def __init__(self, root) -> None:
        self.root = Path(root)

    def shard_path(self, shard: Shard) -> Path:
        return self.root / shard.experiment / f"{shard.key}.json"

    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST_NAME

    @staticmethod
    def payload_hash(record: dict[str, object]) -> str:
        """SHA-256 over the deterministic parts of a record (payload+metrics).

        A payload may carry wall-clock measurements next to its rows under a
        top-level ``wall_time_seconds`` key (E13 does); those are excluded
        here, so manifests stay identical across runs at fixed seeds.
        """
        payload = record.get("payload")
        if isinstance(payload, dict):
            payload = {k: v for k, v in payload.items() if k != "wall_time_seconds"}
        content = {"payload": payload, "metrics": record.get("metrics")}
        return hashlib.sha256(_canonical_json(content).encode()).hexdigest()

    def load_record(self, shard: Shard) -> dict[str, object] | None:
        """The stored record for a shard, or ``None`` if absent or invalid."""
        path = self.shard_path(shard)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or "payload" not in record:
            return None
        if record.get("spec") != _jsonable(shard.spec()):
            return None
        return record

    def write_record(self, shard: Shard, record: dict[str, object]) -> Path:
        """Atomically persist one shard record (write temp file, then rename).

        The rename is atomic on POSIX, so a run killed mid-write leaves either
        the previous artifact or none -- never a half-written file that a
        resume would trust.
        """
        path = self.shard_path(shard)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        temp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        os.replace(temp, path)
        return path

    def iter_records(self):
        """Yield every valid ``(record, path)`` under the store root."""
        if not self.root.is_dir():
            return
        for directory in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for path in sorted(directory.glob("*.json")):
                try:
                    record = json.loads(path.read_text())
                except (OSError, ValueError):
                    continue
                if isinstance(record, dict) and "spec" in record and "payload" in record:
                    yield record, path

    def build_manifest(self) -> dict[str, object]:
        """The deterministic inventory of every artifact currently stored.

        Entries carry the shard spec and content hashes but no wall-clock
        times, so the manifests of a clean run and an interrupted+resumed run
        of the same sweep are equal (pinned by tests/test_engine.py).
        """
        entries: dict[str, dict[str, object]] = {}
        for record, _path in self.iter_records():
            shard = Shard.from_spec(record["spec"])
            entries[shard.key] = {
                "experiment": shard.experiment,
                "scale": shard.scale,
                "family": shard.family,
                "seed": shard.seed,
                "trial": shard.trial,
                "params": dict(shard.params),
                "spec_hash": shard.spec_hash,
                "payload_hash": self.payload_hash(record),
            }
        return {
            "version": ENGINE_VERSION,
            "shards": {key: entries[key] for key in sorted(entries)},
        }

    def write_manifest(self) -> Path:
        path = self.manifest_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        temp.write_text(json.dumps(self.build_manifest(), indent=2, sort_keys=True) + "\n")
        os.replace(temp, path)
        return path


@dataclass
class EngineReport:
    """What one :meth:`ExperimentEngine.run` call did."""

    requested: list[str] = field(default_factory=list)
    executed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    wall_time_seconds: float = 0.0
    shard_wall_times: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        parts = [
            f"{len(self.executed)} shard(s) executed",
            f"{len(self.skipped)} skipped (resume)",
        ]
        if self.failed:
            parts.append(f"{len(self.failed)} FAILED")
        parts.append(f"{self.wall_time_seconds:.2f}s wall")
        return ", ".join(parts)


ProgressCallback = Callable[[str, Shard, float], None]


class ExperimentEngine:
    """Execute shards across a process pool, persisting each to the store.

    ``jobs=1`` runs shards inline in plan order -- the serial runner is just
    this special case.  With ``jobs>1`` the shards are distributed over a
    ``multiprocessing`` pool (``fork`` start method where available, else
    ``spawn``); completion order is nondeterministic but the artifacts and
    manifest are not, because every shard is self-contained.

    With ``resume=True`` shards whose stored record already matches their
    spec are skipped, which is what makes an interrupted sweep cheap to
    finish: only the missing shards execute.
    """

    def __init__(
        self,
        store: ArtifactStore,
        jobs: int = 1,
        resume: bool = False,
        mp_context: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.store = store
        self.jobs = jobs
        self.resume = resume
        self.mp_context = mp_context

    def _pool_context(self):
        import multiprocessing

        if self.mp_context is not None:
            return multiprocessing.get_context(self.mp_context)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def run(
        self, shards: Sequence[Shard], progress: ProgressCallback | None = None
    ) -> EngineReport:
        """Execute (or skip) every shard, then rewrite the merged manifest."""
        # repro-lint: waive[RL001] -- engine progress reporting; manifests exclude wall times
        started = time.perf_counter()
        report = EngineReport(requested=[shard.key for shard in shards])
        pending: list[Shard] = []
        for shard in shards:
            if self.resume and self.store.load_record(shard) is not None:
                report.skipped.append(shard.key)
                if progress:
                    progress("skipped", shard, 0.0)
            else:
                pending.append(shard)

        by_key = {shard.key: shard for shard in pending}

        def complete(spec: dict[str, object], record: dict[str, object], error: str | None):
            shard = by_key[Shard.from_spec(spec).key]
            if error is not None:
                report.failed[shard.key] = error
                if progress:
                    progress("failed", shard, 0.0)
                return
            self.store.write_record(shard, record)
            report.executed.append(shard.key)
            wall = float(record.get("wall_time_seconds", 0.0))
            report.shard_wall_times[shard.key] = wall
            if progress:
                progress("executed", shard, wall)

        if self.jobs == 1 or len(pending) <= 1:
            for shard in pending:
                complete(*_worker_run(shard.spec()))
        elif pending:
            context = self._pool_context()
            with context.Pool(processes=min(self.jobs, len(pending))) as pool:
                for result in pool.imap_unordered(
                    _worker_run, [shard.spec() for shard in pending]
                ):
                    complete(*result)

        self.store.write_manifest()
        # repro-lint: waive[RL001] -- engine progress reporting; manifests exclude wall times
        report.wall_time_seconds = time.perf_counter() - started
        return report


def assemble_tables(store: ArtifactStore, shards: Sequence[Shard]) -> list[ExperimentTable]:
    """Rebuild the experiment tables from stored trial-0 shard payloads.

    Shards must all belong to one scale; replica trials contribute to the
    artifact store and manifest but not to the canonical tables.
    """
    ordered: dict[str, list[Shard]] = {}
    for shard in shards:
        if shard.trial == 0:
            ordered.setdefault(shard.experiment, []).append(shard)
    tables: list[ExperimentTable] = []
    for experiment_id, group in ordered.items():
        sweep = get_sweep(experiment_id)
        scale = group[0].scale
        payloads = []
        for shard in group:
            record = store.load_record(shard)
            if record is None:
                raise KeyError(f"no stored artifact for shard {shard.key}")
            payloads.append(record["payload"])
        tables.append(sweep.finalize(scale, payloads))
    return tables
