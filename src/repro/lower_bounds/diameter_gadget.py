"""The set-disjointness gadget ``Γ^{a,b}_{k,ℓ,W}`` (Section 7, Figure 2).

The graph encodes a 2-party set-disjointness instance ``a, b ∈ {0,1}^{k²}``:

* four node groups ``V1, V2, U1, U2`` of size ``k`` each, internally connected
  as cliques with edges of weight ``W``;
* a perfect matching between ``V_i`` and ``U_i`` realised by paths of ``ℓ``
  unweighted hops;
* two hub nodes ``v̂`` (adjacent to all of ``V1 ∪ V2``) and ``û`` (adjacent to
  all of ``U1 ∪ U2``) with weight-``W`` edges, joined by an ``ℓ``-hop path;
* bit ``a_i`` (with ``i`` identified with a pair ``(p, q) ∈ [k]²``) contributes
  the edge ``{V1[p], V2[q]}`` iff ``a_i = 0`` -- and symmetrically ``b_i``
  contributes ``{U1[p], U2[q]}``.

Lemma 7.1 (weighted, ``W > ℓ``): the weighted diameter is at most ``W + 2ℓ``
iff ``a`` and ``b`` are disjoint, and at least ``2W + ℓ`` otherwise.
Lemma 7.2 (unweighted, ``W = 1``): the diameter is ``ℓ + 1`` iff disjoint and
``ℓ + 2`` otherwise.

The column structure (nodes grouped by hop distance from the ``V`` side) is
what the Alice/Bob simulation argument of Lemma 7.3 partitions; it is exposed
via :meth:`GammaGadget.columns`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.graphs.graph import WeightedGraph
from repro.util.rand import RandomSource


@dataclass
class GammaGadget:
    """A constructed ``Γ^{a,b}_{k,ℓ,W}`` instance with its role metadata.

    Attributes
    ----------
    graph:
        The constructed graph.
    k / path_hops / weight:
        The construction parameters ``k``, ``ℓ`` and ``W``.
    a_bits / b_bits:
        The encoded set-disjointness inputs (length ``k²`` each).
    v1, v2, u1, u2:
        The four node groups (index ``p`` of ``v1`` is matched to index ``p``
        of ``u1``, and likewise for ``v2``/``u2``).
    v_hub / u_hub:
        The hub nodes ``v̂`` and ``û``.
    matching_paths:
        For every matched pair, the list of interior path nodes from the ``V``
        side to the ``U`` side (possibly empty when ``ℓ = 1``).
    hub_path:
        Interior nodes of the ``v̂``-``û`` path.
    """

    graph: WeightedGraph
    k: int
    path_hops: int
    weight: int
    a_bits: list[int]
    b_bits: list[int]
    v1: list[int]
    v2: list[int]
    u1: list[int]
    u2: list[int]
    v_hub: int
    u_hub: int
    matching_paths: dict[tuple[str, int], list[int]]
    hub_path: list[int]

    @property
    def node_count(self) -> int:
        """Total number of nodes of the gadget."""
        return self.graph.node_count

    def disjoint(self) -> bool:
        """Whether the encoded inputs ``a`` and ``b`` are disjoint."""
        return all(not (x and y) for x, y in zip(self.a_bits, self.b_bits, strict=True))

    def columns(self) -> list[list[int]]:
        """The ``ℓ + 1`` columns of the Lemma 7.3 simulation argument.

        Column 0 contains ``V1 ∪ V2 ∪ {v̂}``; column ``ℓ`` contains
        ``U1 ∪ U2 ∪ {û}``; column ``i`` in between contains the ``i``-th
        interior node of every matching path and of the hub path.
        """
        columns: list[list[int]] = [[] for _ in range(self.path_hops + 1)]
        columns[0] = sorted(self.v1 + self.v2 + [self.v_hub])
        columns[self.path_hops] = sorted(self.u1 + self.u2 + [self.u_hub])
        for path in list(self.matching_paths.values()) + [self.hub_path]:
            for position, node in enumerate(path, start=1):
                columns[position].append(node)
        for column in columns:
            column.sort()
        return columns

    def alice_nodes(self, round_index: int = 0) -> list[int]:
        """Nodes simulated by Alice in round ``round_index + 1`` (Lemma 7.3)."""
        columns = self.columns()
        last = max(0, self.path_hops - 1 - round_index)
        result: list[int] = []
        for column in columns[: last + 1]:
            result.extend(column)
        return sorted(result)

    def bob_nodes(self, round_index: int = 0) -> list[int]:
        """Nodes simulated by Bob in round ``round_index + 1`` (Lemma 7.3)."""
        columns = self.columns()
        first = min(self.path_hops, 1 + round_index)
        result: list[int] = []
        for column in columns[first:]:
            result.extend(column)
        return sorted(result)


def build_gamma_gadget(
    k: int,
    path_hops: int,
    weight: int,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
) -> GammaGadget:
    """Construct ``Γ^{a,b}_{k,ℓ,W}`` for the given disjointness inputs.

    ``a_bits`` and ``b_bits`` must have length ``k²``; bit index ``i`` is
    identified with the pair ``(i // k, i % k)``.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    if path_hops < 1:
        raise ValueError("path_hops (ℓ) must be at least 1")
    if weight < 1:
        raise ValueError("weight (W) must be at least 1")
    if len(a_bits) != k * k or len(b_bits) != k * k:
        raise ValueError("a and b must have length k^2")

    interior = path_hops - 1
    # Node layout: V1, V2, U1, U2, v̂, û, matching-path interiors, hub-path interiors.
    n = 4 * k + 2 + (2 * k + 1) * interior
    graph = WeightedGraph(n)

    v1 = list(range(0, k))
    v2 = list(range(k, 2 * k))
    u1 = list(range(2 * k, 3 * k))
    u2 = list(range(3 * k, 4 * k))
    v_hub = 4 * k
    u_hub = 4 * k + 1
    next_free = 4 * k + 2

    # Cliques of weight W inside each group.
    for group in (v1, v2, u1, u2):
        for i in range(k):
            for j in range(i + 1, k):
                graph.add_edge(group[i], group[j], weight)

    # Hubs: v̂ to all of V1 ∪ V2, û to all of U1 ∪ U2, with weight W.
    for node in v1 + v2:
        graph.add_edge(v_hub, node, weight)
    for node in u1 + u2:
        graph.add_edge(u_hub, node, weight)

    def add_path(start: int, end: int) -> list[int]:
        """Connect ``start`` and ``end`` with a path of ``path_hops`` unit edges."""
        nonlocal next_free
        interior_nodes = list(range(next_free, next_free + interior))
        next_free += interior
        chain = [start] + interior_nodes + [end]
        for a, b in zip(chain, chain[1:], strict=False):
            graph.add_edge(a, b, 1)
        return interior_nodes

    matching_paths: dict[tuple[str, int], list[int]] = {}
    for index in range(k):
        matching_paths[("top", index)] = add_path(v1[index], u1[index])
        matching_paths[("bottom", index)] = add_path(v2[index], u2[index])
    hub_path = add_path(v_hub, u_hub)

    # Encode the disjointness inputs: bit = 0 adds the corresponding edge.
    for i, bit in enumerate(a_bits):
        if not bit:
            graph.add_edge(v1[i // k], v2[i % k], weight)
    for i, bit in enumerate(b_bits):
        if not bit:
            graph.add_edge(u1[i // k], u2[i % k], weight)

    return GammaGadget(
        graph=graph,
        k=k,
        path_hops=path_hops,
        weight=weight,
        a_bits=list(a_bits),
        b_bits=list(b_bits),
        v1=v1,
        v2=v2,
        u1=u1,
        u2=u2,
        v_hub=v_hub,
        u_hub=u_hub,
        matching_paths=matching_paths,
        hub_path=hub_path,
    )


def predicted_diameter(gadget: GammaGadget) -> float:
    """The diameter value (or bound) Lemmas 7.1 / 7.2 predict for this instance.

    In the unweighted case (``W = 1``, Lemma 7.2) the value is exact:
    ``ℓ + 1`` when disjoint, ``ℓ + 2`` otherwise.  In the weighted case
    (``W > ℓ``, Lemma 7.1) it is an *upper* bound ``W + 2ℓ`` for disjoint
    instances and a *lower* bound ``2W + ℓ`` otherwise; use
    :func:`classify_disjointness_from_diameter` to turn a measured diameter
    into a disjointness verdict.
    """
    if gadget.weight == 1:
        return gadget.path_hops + 1 if gadget.disjoint() else gadget.path_hops + 2
    if gadget.disjoint():
        return gadget.weight + 2 * gadget.path_hops
    return 2 * gadget.weight + gadget.path_hops


def classify_disjointness_from_diameter(gadget: GammaGadget, measured_diameter: float) -> bool:
    """Decide disjointness from a diameter value (the Section 7 reduction).

    Returns True (= "disjoint") when the measured diameter is at most the
    disjoint-side bound.  With exact diameters this classification is always
    correct (Lemmas 7.1 / 7.2); with a ``(2-ε)``-approximation of the weighted
    diameter it is still correct as long as ``W ∈ ω(ℓ)``, which is exactly the
    statement of Theorem 1.6.
    """
    if gadget.weight == 1:
        return measured_diameter <= gadget.path_hops + 1
    return measured_diameter < 2 * gadget.weight + gadget.path_hops


def random_disjointness_instance(
    k: int, rng: RandomSource, disjoint: bool, density: float = 0.3
) -> tuple[list[int], list[int]]:
    """Random inputs ``a, b ∈ {0,1}^{k²}`` that are (non-)disjoint by construction."""
    size = k * k
    a = [1 if rng.bernoulli(density) else 0 for _ in range(size)]
    b = [1 if rng.bernoulli(density) else 0 for _ in range(size)]
    if disjoint:
        for i in range(size):
            if a[i] and b[i]:
                b[i] = 0
    else:
        index = rng.randrange(size)
        a[index] = 1
        b[index] = 1
    return a, b
