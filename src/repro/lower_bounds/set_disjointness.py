"""The 2-party simulation argument and its information accounting (Lemma 7.3, Theorem 1.6).

Theorem 1.6 is proved by a reduction: Alice (holding ``a``) and Bob (holding
``b``) jointly simulate a HYBRID algorithm on ``Γ^{a,b}_{k,ℓ,W}``.  Alice
simulates the columns close to the ``V`` side, Bob the columns close to the
``U`` side, and their simulated node sets shrink towards their own side by one
column per round, so for ``⌊ℓ/2⌋`` rounds every node is simulated by at least
one party and no *local* message ever needs to be communicated between the
parties (Lemma 7.3).  Consequently the only inter-party communication is the
global-mode traffic crossing the cut, which is at most ``O(n log² n)`` bits per
round -- while solving set disjointness requires ``Ω(k²)`` bits.  Choosing
``ℓ ∈ Θ((n/log² n)^{1/3})`` and ``k ∈ Θ̃(n^{2/3})`` yields the
``Ω̃(n^{1/3})`` round lower bound.

This module provides

* the parameter choices and the implied lower-bound value,
* a measurement harness that runs an actual HYBRID diameter computation on a
  gadget with a cut watcher installed and reports the global bits that crossed
  the Alice/Bob cut per round, and
* a verification that the column partition satisfies the structural property
  of Lemma 7.3 (no local edge jumps from Alice's exclusive region into Bob's
  next-round region).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.hybrid.config import ModelConfig
from repro.hybrid.network import HybridNetwork
from repro.lower_bounds.diameter_gadget import GammaGadget


@dataclass
class LowerBoundParameters:
    """The parameter choices of Theorem 1.6 for an ``n``-node budget.

    ``k·ℓ ∈ Θ(n)`` with ``ℓ ∈ Θ((n / log² n)^{1/3})`` and
    ``k ∈ Θ((n log n)^{2/3} / ...)``; at simulation scale we simply solve
    ``(2k+1)·(ℓ-1) + 4k + 2 ≈ n`` for integers.
    """

    k: int
    path_hops: int
    weight: int
    node_count: int


def choose_parameters(target_nodes: int, weighted: bool = False) -> LowerBoundParameters:
    """Pick ``(k, ℓ, W)`` close to the Theorem 1.6 optimum for a node budget."""
    if target_nodes < 30:
        raise ValueError("the gadget needs at least ~30 nodes to be non-trivial")
    log_sq = max(1.0, math.log2(target_nodes) ** 2)
    path_hops = max(2, int(round((target_nodes / log_sq) ** (1.0 / 3.0))))
    # Solve (2k+1)(ℓ-1) + 4k + 2 <= target for k.
    k = max(2, (target_nodes - 2 - (path_hops - 1)) // (2 * (path_hops - 1) + 4))
    weight = (
        path_hops + 1
        if not weighted
        else max(path_hops + 1, int(round(target_nodes ** (1.0 / 3.0))))
    )
    interior = path_hops - 1
    node_count = 4 * k + 2 + (2 * k + 1) * interior
    return LowerBoundParameters(k=k, path_hops=path_hops, weight=weight, node_count=node_count)


def disjointness_bits_required(k: int) -> float:
    """The communication lower bound ``Ω(k²)`` bits for set disjointness.

    We report the leading term ``k²`` (the constant in Kalyanasundaram-
    Schnitger / Razborov is below 1; benchmarks only compare orders of
    magnitude).
    """
    return float(k * k)


def per_round_cut_capacity_bits(node_count: int, config: ModelConfig) -> float:
    """Global bits that can cross the Alice/Bob cut in one round.

    Every node can send at most ``send_cap`` messages of ``message_bits`` bits,
    so at most ``n · send_cap · message_bits`` bits cross any cut per round.
    """
    return float(node_count * config.send_cap(node_count) * config.message_bits)


def implied_round_lower_bound(gadget: GammaGadget, config: ModelConfig) -> float:
    """The Theorem 1.6 bound for this gadget: ``min(⌊ℓ/2⌋, k² / cut capacity)``."""
    capacity = per_round_cut_capacity_bits(gadget.node_count, config)
    information_bound = disjointness_bits_required(gadget.k) / capacity
    return min(gadget.path_hops // 2, information_bound)


def verify_simulation_partition(gadget: GammaGadget, rounds: int) -> bool:
    """Check the structural property behind Lemma 7.3 for ``rounds`` rounds.

    For every simulated round ``r`` (1-based), every local edge ``{x, y}`` with
    ``y`` simulated by Bob in round ``r+1`` must have ``x`` simulated by Bob in
    round ``r`` as well (and symmetrically for Alice), i.e. no local message
    ever has to cross between the parties.
    """
    graph = gadget.graph
    for r in range(rounds):
        alice_now = set(gadget.alice_nodes(r))
        bob_now = set(gadget.bob_nodes(r))
        alice_next = set(gadget.alice_nodes(r + 1))
        bob_next = set(gadget.bob_nodes(r + 1))
        for u, v, _ in graph.edges():
            for x, y in ((u, v), (v, u)):
                if y in bob_next and x not in bob_now:
                    return False
                if y in alice_next and x not in alice_now:
                    return False
    return True


@dataclass
class CutMeasurement:
    """Measured global traffic across the Alice/Bob cut for one algorithm run.

    Attributes
    ----------
    cut_bits:
        Global-mode bits that crossed the cut during the run.
    total_rounds:
        Rounds the algorithm took.
    implied_lower_bound:
        The Theorem 1.6 round lower bound for this gadget and model config.
    required_bits:
        The ``Ω(k²)`` bits a correct algorithm must move across the cut if it
        solves set disjointness through the diameter.
    """

    cut_bits: int
    total_rounds: int
    implied_lower_bound: float
    required_bits: float


def measure_cut_traffic(
    gadget: GammaGadget,
    config: ModelConfig,
    algorithm: Callable[[HybridNetwork], object],
    cut_name: str = "alice-bob",
) -> CutMeasurement:
    """Run a HYBRID algorithm on the gadget and account the cut-crossing bits.

    ``algorithm`` receives a freshly built :class:`HybridNetwork` over the
    gadget graph (with the Alice/Bob cut watcher installed) and may run any
    protocol; the measurement reports the bits its global messages moved across
    the cut and the rounds it took, next to the information-theoretic
    requirement.
    """
    network = HybridNetwork(gadget.graph, config)
    network.add_cut_watcher(cut_name, gadget.alice_nodes(0))
    algorithm(network)
    cut_bits = network.metrics.cut_bits.get(cut_name, 0)
    return CutMeasurement(
        cut_bits=cut_bits,
        total_rounds=network.metrics.total_rounds,
        implied_lower_bound=implied_round_lower_bound(gadget, config),
        required_bits=disjointness_bits_required(gadget.k),
    )
