"""Lower-bound constructions and accounting (Sections 6 and 7).

* :mod:`repro.lower_bounds.kssp_gadget` -- the Figure 1 worst-case graph behind
  the ``Ω̃(√k)`` bound for k-SSP (Theorem 1.5).
* :mod:`repro.lower_bounds.diameter_gadget` -- the ``Γ^{a,b}_{k,ℓ,W}`` graph of
  Figure 2 and the Lemma 7.1 / 7.2 diameter dichotomy.
* :mod:`repro.lower_bounds.set_disjointness` -- the Alice/Bob simulation
  argument (Lemma 7.3) and the implied ``Ω̃(n^{1/3})`` bound (Theorem 1.6).
"""

from repro.lower_bounds.diameter_gadget import (
    GammaGadget,
    build_gamma_gadget,
    classify_disjointness_from_diameter,
    predicted_diameter,
    random_disjointness_instance,
)
from repro.lower_bounds.kssp_gadget import (
    KSSPGadget,
    assignment_entropy_bits,
    bottleneck_capacity_bits_per_round,
    build_kssp_gadget,
    distance_gap_factor,
    implied_round_lower_bound,
    suggested_bottleneck_distance,
)
from repro.lower_bounds.set_disjointness import (
    CutMeasurement,
    LowerBoundParameters,
    choose_parameters,
    disjointness_bits_required,
    measure_cut_traffic,
    per_round_cut_capacity_bits,
    verify_simulation_partition,
)

__all__ = [
    "GammaGadget",
    "build_gamma_gadget",
    "classify_disjointness_from_diameter",
    "predicted_diameter",
    "random_disjointness_instance",
    "KSSPGadget",
    "assignment_entropy_bits",
    "bottleneck_capacity_bits_per_round",
    "build_kssp_gadget",
    "distance_gap_factor",
    "implied_round_lower_bound",
    "suggested_bottleneck_distance",
    "CutMeasurement",
    "LowerBoundParameters",
    "choose_parameters",
    "disjointness_bits_required",
    "measure_cut_traffic",
    "per_round_cut_capacity_bits",
    "verify_simulation_partition",
]
