"""The worst-case graph for the k-SSP lower bound (Section 6, Figure 1, Theorem 1.5).

The construction: an unweighted path of ``Ω(n)`` hops with a designated node
``b`` at one end.  A node ``v1`` sits at hop distance ``L ∈ Θ̃(√k)`` from ``b``
and a node ``v2`` at the far end of the path.  A pool of ``k`` candidate source
nodes is split uniformly at random into two halves: ``S1`` (attached to ``v1``
by one edge each) and ``S2`` (attached to ``v2``).

* ``b``'s distance to a source is ``L + 1`` if it lies in ``S1`` and
  ``≈ path length + 1 ∈ Ω(n)`` if it lies in ``S2`` -- a gap of factor
  ``Θ(n/√k)``, so even a coarse approximation must distinguish the two cases
  (Theorem 1.5's ``α' ∈ Θ(n/√k)``).
* The random split carries ``k`` bits of entropy that originate more than
  ``L`` hops away from ``b``, while everything within ``L`` hops of ``b`` can
  jointly receive only ``O(L log² n)`` bits per round over the global network.
  Hence ``Ω̃(k / (L log² n)) = Ω̃(√k)`` rounds are necessary.

This module builds the gadget, verifies the distance-gap property and exposes
the information-bottleneck accounting used by benchmark E6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.graph import WeightedGraph
from repro.util.rand import RandomSource


@dataclass
class KSSPGadget:
    """The Figure 1 worst-case instance.

    Attributes
    ----------
    graph:
        The constructed unweighted graph.
    bottleneck_node:
        The node ``b`` that has to learn all source distances.
    near_anchor / far_anchor:
        The path nodes ``v1`` (at distance ``L`` from ``b``) and ``v2`` (at the
        far end) the sources attach to.
    near_sources / far_sources:
        The random split ``S1`` / ``S2`` of the source pool.
    path_hops:
        Number of hops between ``b`` and ``v2``.
    bottleneck_distance:
        The parameter ``L = hop(b, v1)``.
    """

    graph: WeightedGraph
    bottleneck_node: int
    near_anchor: int
    far_anchor: int
    near_sources: list[int]
    far_sources: list[int]
    path_hops: int
    bottleneck_distance: int

    @property
    def sources(self) -> list[int]:
        """All ``k`` sources (near and far)."""
        return sorted(self.near_sources + self.far_sources)

    @property
    def source_count(self) -> int:
        """The number of sources ``k``."""
        return len(self.near_sources) + len(self.far_sources)


def suggested_bottleneck_distance(source_count: int) -> int:
    """The paper's choice ``L ∈ Θ̃(√k)`` (here simply ``⌈√k⌉``)."""
    return max(1, math.isqrt(max(source_count, 1)))


def build_kssp_gadget(
    path_hops: int,
    source_count: int,
    rng: RandomSource,
    bottleneck_distance: int | None = None,
) -> KSSPGadget:
    """Construct the Figure 1 gadget.

    Parameters
    ----------
    path_hops:
        Hop length of the backbone path (the ``Ω(n)`` part).
    source_count:
        The number of sources ``k`` (split evenly between ``S1`` and ``S2``).
    bottleneck_distance:
        The distance ``L`` of the near anchor from ``b``; defaults to
        ``Θ(√k)``.
    """
    if path_hops < 2:
        raise ValueError("the backbone path needs at least 2 hops")
    if source_count < 2:
        raise ValueError("need at least 2 sources")
    L = (
        bottleneck_distance
        if bottleneck_distance is not None
        else suggested_bottleneck_distance(source_count)
    )
    if L >= path_hops:
        raise ValueError("the bottleneck distance L must be smaller than the path length")

    n = (path_hops + 1) + source_count
    graph = WeightedGraph(n)
    # Backbone path: nodes 0..path_hops, with b = 0.
    for i in range(path_hops):
        graph.add_edge(i, i + 1, 1)
    bottleneck = 0
    near_anchor = L
    far_anchor = path_hops

    source_nodes = list(range(path_hops + 1, n))
    shuffled = list(source_nodes)
    rng.shuffle(shuffled)
    half = source_count // 2
    near_sources = sorted(shuffled[:half])
    far_sources = sorted(shuffled[half:])
    for source in near_sources:
        graph.add_edge(source, near_anchor, 1)
    for source in far_sources:
        graph.add_edge(source, far_anchor, 1)

    return KSSPGadget(
        graph=graph,
        bottleneck_node=bottleneck,
        near_anchor=near_anchor,
        far_anchor=far_anchor,
        near_sources=near_sources,
        far_sources=far_sources,
        path_hops=path_hops,
        bottleneck_distance=L,
    )


def distance_gap_factor(gadget: KSSPGadget) -> float:
    """Ratio between ``b``'s distance to a far source and to a near source.

    Theorem 1.5 argues this factor is ``Θ(n/√k)``: an algorithm that cannot
    tell whether a source is near or far cannot α-approximate for any
    ``α`` below it.
    """
    distances = gadget.graph.dijkstra(gadget.bottleneck_node)
    near = min(distances[s] for s in gadget.near_sources)
    far = min(distances[s] for s in gadget.far_sources)
    return far / near


def assignment_entropy_bits(gadget: KSSPGadget) -> float:
    """Entropy (in bits) of the random S1/S2 split that ``b`` must learn.

    Choosing which half of the ``k`` candidates is near carries
    ``log2 C(k, k/2) ≈ k - O(log k)`` bits.
    """
    k = gadget.source_count
    half = k // 2
    return math.log2(math.comb(k, half))


def bottleneck_capacity_bits_per_round(
    gadget: KSSPGadget, message_bits: int, send_cap: int
) -> float:
    """Global-network bits per round that can reach the ``L``-hop prefix of the path.

    Only the ``L`` path nodes closest to ``b`` can forward information to ``b``
    within ``L`` rounds over local edges, and each of them can receive at most
    ``send_cap · message_bits`` bits per round globally (Lemma 4.4 of [3],
    restated in Section 6).
    """
    return float(gadget.bottleneck_distance * send_cap * message_bits)


def implied_round_lower_bound(
    gadget: KSSPGadget, message_bits: int, send_cap: int
) -> float:
    """The Theorem 1.5 lower bound ``Ω̃(√k)`` instantiated for this gadget.

    The bound is ``min(L, entropy / per-round capacity of the prefix)`` -- the
    adversary argument gives the minimum of the hop-distance bound and the
    information bound.
    """
    entropy = assignment_entropy_bits(gadget)
    capacity = bottleneck_capacity_bits_per_round(gadget, message_bits, send_cap)
    information_bound = entropy / capacity if capacity > 0 else float("inf")
    return min(float(gadget.bottleneck_distance), information_bound)
