"""Line-delimited JSON wire protocol of the serving layer (DESIGN.md §11).

One request per line, one response per line.  A request names an operation
(``sssp`` / ``apsp`` / ``diameter`` / ``shortest-paths`` / ``route-tokens``),
a tenant, and the operation's parameters; the server answers with either an
``ok`` response carrying the encoded result plus the batch it was served in,
or an error response with a machine-readable code:

==============  ============================================================
bad-request     the request line failed to parse or validate
queue-full      the server's bounded in-flight queue is at capacity
tenant-quota    the tenant's per-tenant pending quota is exhausted
shutting-down   the server is draining and accepts no new work
internal        the simulation raised (message carries the exception)
==============  ============================================================

Request/response examples live in the README's Serving runbook.  Distances
are encoded as dense lists with ``null`` for unreachable (``inf``) entries,
so responses stay valid JSON; APSP matrices are summarized by a CRC-32
checksum (the full ``n × n`` matrix rides along only on request).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.token_routing import RoutingToken
from repro.graphs.graph import INFINITY

#: Operations the server understands, in canonical (sorted) order.
OPERATIONS = ("apsp", "diameter", "route-tokens", "shortest-paths", "sssp")

#: Error codes a response may carry (see the module docstring's table).
ERROR_CODES = ("bad-request", "queue-full", "tenant-quota", "shutting-down", "internal")


class ProtocolError(Exception):
    """A request that cannot be served, with its wire-level error code.

    ``code`` is one of :data:`ERROR_CODES`; the server turns the exception
    into an :func:`error_response` line (DESIGN.md §11).
    """

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Query:
    """One validated request: operation, tenant, and canonical parameters.

    Instances are produced by :func:`parse_request` and consumed by the
    batching planner (:mod:`repro.serving.batching`); ``params`` holds only
    JSON-representable canonical values (DESIGN.md §11).
    """

    id: str
    tenant: str
    op: str
    params: dict[str, Any] = field(default_factory=dict)


def _require_int(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError("bad-request", f"{what} must be an integer, got {value!r}")
    return value


def parse_request(raw: str | bytes | dict[str, Any]) -> Query:
    """Parse and validate one request line into a :class:`Query`.

    Args:
        raw: The request -- a JSON text line, raw bytes, or an already
            decoded dict (the in-process path of :mod:`repro.serving.server`).

    Returns:
        The validated :class:`Query` with canonicalized parameters
        (``sources`` sorted and deduplicated, tokens as tuples).

    Raises:
        ProtocolError: with code ``bad-request`` on malformed JSON, unknown
            operations, or invalid parameters (DESIGN.md §11).
    """
    if isinstance(raw, bytes):
        raw = raw.decode("utf-8", errors="replace")
    if isinstance(raw, str):
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError("bad-request", f"invalid JSON: {exc}") from exc
    else:
        payload = raw
    if not isinstance(payload, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    op = payload.get("op")
    if op not in OPERATIONS:
        raise ProtocolError(
            "bad-request", f"unknown op {op!r}; expected one of {', '.join(OPERATIONS)}"
        )
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("bad-request", "request needs a non-empty string 'id'")
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("bad-request", "'tenant' must be a non-empty string")

    params: dict[str, Any] = {}
    if op == "sssp":
        params["source"] = _require_int(payload.get("source"), "'source'")
    elif op == "apsp":
        probability = payload.get("probability")
        if probability is not None:
            if not isinstance(probability, (int, float)) or not 0 < probability <= 1:
                raise ProtocolError("bad-request", "'probability' must be in (0, 1]")
            params["probability"] = float(probability)
        params["include_matrix"] = bool(payload.get("include_matrix", False))
    elif op == "shortest-paths":
        sources = payload.get("sources")
        if not isinstance(sources, list) or not sources:
            raise ProtocolError("bad-request", "'sources' must be a non-empty list")
        params["sources"] = tuple(
            sorted({_require_int(source, "each source") for source in sources})
        )
    elif op == "route-tokens":
        tokens = payload.get("tokens")
        if not isinstance(tokens, list):
            raise ProtocolError("bad-request", "'tokens' must be a list")
        canonical: list[tuple[int, int, str]] = []
        for entry in tokens:
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise ProtocolError(
                    "bad-request", "each token must be [sender, receiver, payload]"
                )
            sender, receiver, token_payload = entry
            canonical.append(
                (
                    _require_int(sender, "token sender"),
                    _require_int(receiver, "token receiver"),
                    str(token_payload),
                )
            )
        params["tokens"] = tuple(canonical)
    # "diameter" takes no parameters.
    return Query(id=request_id, tenant=tenant, op=op, params=params)


def build_tokens(query: Query) -> list[RoutingToken]:
    """Materialize a ``route-tokens`` query's :class:`RoutingToken` batch."""
    return [
        RoutingToken(sender=sender, receiver=receiver, index=index, payload=payload)
        for index, (sender, receiver, payload) in enumerate(query.params["tokens"])
    ]


def encode_distances(distances: dict[int, float], n: int) -> list[float | None]:
    """Dense JSON-safe distance list: ``None`` marks unreachable nodes."""
    return [
        None if (value := distances.get(node, INFINITY)) == INFINITY else value
        for node in range(n)
    ]


def matrix_checksum(matrix: Any) -> str:
    """CRC-32 of an APSP matrix's canonical text form (stable across planes)."""
    rows = [
        [None if value == INFINITY else float(value) for value in row] for row in matrix
    ]
    digest = zlib.crc32(json.dumps(rows, separators=(",", ":")).encode())
    return f"{digest:08x}"


def ok_response(query: Query, result: dict[str, Any], batch_size: int) -> dict[str, Any]:
    """Build a success response for ``query`` (see DESIGN.md §11).

    ``batch_size`` is the number of queries the serving pass answered
    together -- 1 when the query ran alone, larger when it was coalesced.
    """
    return {
        "id": query.id,
        "ok": True,
        "op": query.op,
        "tenant": query.tenant,
        "result": result,
        "batch_size": batch_size,
    }


def error_response(
    request_id: str | None, code: str, message: str
) -> dict[str, Any]:
    """Build an error response line (codes in :data:`ERROR_CODES`)."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}


def dumps(response: dict[str, Any]) -> str:
    """Serialize one response to its wire line (compact, sorted keys)."""
    return json.dumps(response, separators=(",", ":"), sort_keys=True)
