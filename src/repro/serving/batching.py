"""Cross-query coalescing policy of the serving layer (DESIGN.md §11).

Two queries may share one simulation pass when answering them together is
*exact* -- the fanned-out responses must be bit-identical to what each query
would have received alone on the same session.  The compatibility rules:

* ``sssp`` queries always coalesce: the batch runs through
  :meth:`HybridSession.sssp_batch`, which forces every source into the
  skeleton (Lemma 4.5) and answers each source exactly -- the multi-source
  pass shares skeleton, dissemination and the CLIQUE transport.
* ``apsp`` queries coalesce when they request the same skeleton probability:
  the session computes the matrix once and every query fans out the same
  result.
* ``diameter`` queries always coalesce (one estimate serves all).
* ``shortest-paths`` queries coalesce only on *identical* source sets: the
  Theorem 4.1 framework with several distinct sources is approximate, and
  merging different sets would change each query's representative detours.
* ``route-tokens`` never coalesces -- merging token batches changes the
  router key and the per-endpoint maxima, hence the rounds.

Groups are planned deterministically: queries keep arrival order within a
group, and groups execute in sorted key order, so a fixed queue content
yields a fixed execution schedule regardless of wall-clock timing.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.serving.protocol import Query

#: Key under which a query may share a pass with others (see module docstring).
BatchKey = tuple[object, ...]


def batch_key(query: Query, index: int) -> BatchKey:
    """The coalescing key of ``query``; unique per query where forbidden.

    ``index`` is the query's position in the drained queue -- it only enters
    the key for operations that must never share a pass (``route-tokens``),
    making their keys unique while keeping the plan deterministic.
    """
    if query.op == "sssp":
        return ("sssp",)
    if query.op == "apsp":
        return ("apsp", query.params.get("probability"))
    if query.op == "diameter":
        return ("diameter",)
    if query.op == "shortest-paths":
        return ("shortest-paths", query.params["sources"])
    return ("route-tokens", index)


def plan_batches(
    queries: Sequence[Query], max_batch: int, *, coalesce: bool = True
) -> list[list[int]]:
    """Partition drained ``queries`` into executable groups of indices.

    Args:
        queries: The queue content, in arrival order.
        max_batch: Upper bound on group size; larger compatible sets split
            into consecutive chunks (each chunk is one simulation pass).
        coalesce: When False every query forms its own group -- the
            one-query-per-pass baseline the E16 benchmark compares against.

    Returns:
        Groups of indices into ``queries``, in deterministic execution order
        (sorted by batch key, then chunk position); each inner list keeps
        arrival order.  Indices let the server map coalesced results back to
        the callers without relying on query-object identity.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    if not coalesce:
        return [[index] for index in range(len(queries))]
    grouped: dict[BatchKey, list[int]] = defaultdict(list)
    for index, query in enumerate(queries):
        grouped[batch_key(query, index)].append(index)
    plan: list[list[int]] = []
    for key in sorted(grouped, key=repr):
        members = grouped[key]
        for start in range(0, len(members), max_batch):
            plan.append(members[start : start + max_batch])
    return plan
