"""Async multi-tenant serving front end over :class:`repro.session.HybridSession`.

The package turns the session's amortization into a serving win: a
long-running :class:`QueryServer` accepts concurrent APSP / SSSP / diameter /
shortest-paths / token-routing requests over a line-delimited JSON protocol
(in-process, or TCP via :func:`serve_tcp`), coalesces compatible queries into
single simulation passes, enforces admission control, and keeps per-tenant
round/traffic ledgers.  Architecture, protocol, batching rules and
determinism caveats: DESIGN.md §11; operator guide: the README's Serving
section; throughput/latency characterization: experiment E16
(:mod:`repro.serving.benchmark`).
"""

from __future__ import annotations

from repro.serving.batching import batch_key, plan_batches
from repro.serving.protocol import (
    ERROR_CODES,
    OPERATIONS,
    ProtocolError,
    Query,
    error_response,
    ok_response,
    parse_request,
)
from repro.serving.server import (
    QueryServer,
    ServerConfig,
    ServerStats,
    TenantAccount,
    query_tcp,
    serve_tcp,
)

__all__ = [
    "ERROR_CODES",
    "OPERATIONS",
    "ProtocolError",
    "Query",
    "QueryServer",
    "ServerConfig",
    "ServerStats",
    "TenantAccount",
    "batch_key",
    "error_response",
    "ok_response",
    "parse_request",
    "plan_batches",
    "query_tcp",
    "serve_tcp",
]
