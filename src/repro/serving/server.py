"""Asyncio query server over one shared :class:`HybridSession` (DESIGN.md §11).

Request lifecycle: **accept → batch window → coalesce → simulate → fan out**.
:meth:`QueryServer.submit` validates and admits a request, parks it in the
bounded queue and wakes the batcher task; the batcher sleeps one batch
window, drains the queue, plans coalesced groups
(:func:`repro.serving.batching.plan_batches`) and runs each group as a single
simulation pass on a one-thread executor -- the session itself additionally
serializes with its internal lock, so the event loop stays responsive while
at most one simulation runs at a time.  Results fan out to the per-request
futures, tagged with the size of the pass that served them.

Admission control: at most ``max_pending`` requests may be in flight
(``queue-full`` otherwise), each tenant may hold at most ``tenant_quota`` of
them (``tenant-quota``), and once :meth:`QueryServer.close` starts draining,
new requests get ``shutting-down`` while everything already admitted is still
answered.

Accounting: every group runs inside one ambient scope per distinct tenant in
the group (``RoundMetrics.scoped(label="tenant:<name>")``), so a tenant's
ledger shows the full cost of every pass it took part in -- shared passes are
charged to *each* participating tenant, which is the honest amortized view
(the pass would have run for any one of them alone).

Determinism: results are a function of the session configuration and each
query's parameters only -- never of how queries were batched (DESIGN.md §11
states the caveats).  Batch *composition* does depend on arrival timing;
tests pin it by enqueueing all requests before yielding to the event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.graphs.graph import INFINITY
from repro.serving import protocol
from repro.serving.batching import plan_batches
from repro.serving.protocol import ProtocolError, Query
from repro.session import HybridSession


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one :class:`QueryServer` (see the README runbook).

    Attributes
    ----------
    batch_window:
        Seconds the batcher waits after waking before draining the queue --
        the window in which concurrent queries can coalesce.  ``0`` drains
        immediately (useful in tests).
    max_pending:
        Bound on requests admitted but not yet answered; beyond it new
        requests are rejected with ``queue-full`` (DESIGN.md §11).
    tenant_quota:
        Per-tenant bound within ``max_pending``; ``None`` disables the quota.
    max_batch:
        Upper bound on one coalesced group (one simulation pass).
    coalesce:
        When False the server degenerates to one-query-per-pass -- the E16
        baseline mode.
    """

    batch_window: float = 0.005
    max_pending: int = 64
    tenant_quota: int | None = None
    max_batch: int = 32
    coalesce: bool = True

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1 (or None)")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")


@dataclass
class TenantAccount:
    """Running totals of one tenant's served queries (DESIGN.md §11).

    ``amortized_rounds`` / ``messages`` / ``bits`` accumulate the
    tenant-labelled scopes of every pass the tenant took part in.  (The
    fields deliberately avoid ``RoundMetrics`` counter names: this is a
    read-side ledger, not an accounting object, and RL004 polices the
    distinction.)
    """

    queries: int = 0
    amortized_rounds: int = 0
    messages: int = 0
    bits: int = 0
    rejected: int = 0

    def as_dict(self) -> dict[str, int]:
        """Flat dict view (used by responses, the demo and E16 artifacts)."""
        return {
            "queries": self.queries,
            "amortized_rounds": self.amortized_rounds,
            "messages": self.messages,
            "bits": self.bits,
            "rejected": self.rejected,
        }


@dataclass
class _Pending:
    """One admitted request waiting for its pass: the query and its future."""

    query: Query
    future: asyncio.Future


@dataclass
class ServerStats:
    """Aggregate counters of one server lifetime (read via ``stats``).

    ``passes`` counts simulation passes executed and ``coalesced_queries``
    the queries that shared one -- the observability hook for the batching
    win (DESIGN.md §11).
    """

    admitted: int = 0
    answered: int = 0
    rejected: int = 0
    passes: int = 0
    coalesced_queries: int = 0


class QueryServer:
    """Multi-tenant asyncio front end over one :class:`HybridSession`.

    Use as an async context manager (starts the batcher, drains on exit)::

        async with QueryServer(session, config) as server:
            response = await server.submit({"id": "r1", "op": "sssp", "source": 3})

    The full protocol, batching and admission semantics live in
    DESIGN.md §11; :func:`serve_tcp` exposes the same server over a socket.
    """

    def __init__(self, session: HybridSession, config: ServerConfig | None = None) -> None:
        self.session = session
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        #: Per-tenant running totals, keyed by tenant name.
        self.tenants: dict[str, TenantAccount] = {}
        self._queue: list[_Pending] = []
        self._pending_by_tenant: dict[str, int] = {}
        self._pending_total = 0
        self._closing = False
        self._wakeup = asyncio.Event()
        self._batcher: asyncio.Task | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving"
        )

    # --------------------------------------------------------------- lifecycle
    async def __aenter__(self) -> "QueryServer":
        self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def start(self) -> None:
        """Start the batcher task (idempotent; implied by ``async with``)."""
        if self._batcher is None:
            self._batcher = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Drain gracefully: answer everything admitted, reject the rest.

        After this call returns every admitted request has been answered and
        the executor is shut down; further :meth:`submit` calls are rejected
        with ``shutting-down`` (DESIGN.md §11).
        """
        self._closing = True
        self._wakeup.set()
        if self._batcher is not None:
            await self._batcher
            self._batcher = None
        self._executor.shutdown(wait=True)

    # --------------------------------------------------------------- admission
    def _admit(self, query: Query) -> None:
        """Reserve queue room for ``query`` or raise the admission error."""
        if self._closing:
            raise ProtocolError("shutting-down", "server is draining")
        if self._pending_total >= self.config.max_pending:
            raise ProtocolError(
                "queue-full", f"in-flight queue at capacity ({self.config.max_pending})"
            )
        quota = self.config.tenant_quota
        held = self._pending_by_tenant.get(query.tenant, 0)
        if quota is not None and held >= quota:
            raise ProtocolError(
                "tenant-quota", f"tenant {query.tenant!r} at quota ({quota})"
            )
        self._pending_total += 1
        self._pending_by_tenant[query.tenant] = held + 1
        self.stats.admitted += 1

    def _release(self, query: Query) -> None:
        self._pending_total -= 1
        remaining = self._pending_by_tenant.get(query.tenant, 1) - 1
        if remaining <= 0:
            self._pending_by_tenant.pop(query.tenant, None)
        else:
            self._pending_by_tenant[query.tenant] = remaining

    def _account_rejection(self, tenant: str | None) -> None:
        self.stats.rejected += 1
        if tenant:
            self.tenants.setdefault(tenant, TenantAccount()).rejected += 1

    # ------------------------------------------------------------------ submit
    async def submit(self, raw: str | bytes | dict[str, Any]) -> dict[str, Any]:
        """Admit one request and await its response.

        Args:
            raw: A request line (JSON text/bytes) or a decoded request dict.

        Returns:
            The response dict -- :func:`repro.serving.protocol.ok_response`
            on success, :func:`~repro.serving.protocol.error_response` when
            parsing, admission or the simulation failed.  Never raises for
            request-level problems; the error rides in the response.
        """
        request_id = None
        if isinstance(raw, dict):
            candidate = raw.get("id")
            request_id = candidate if isinstance(candidate, str) else None
        try:
            query = protocol.parse_request(raw)
        except ProtocolError as exc:
            self._account_rejection(None)
            return protocol.error_response(request_id, exc.code, exc.message)
        try:
            self._admit(query)
        except ProtocolError as exc:
            self._account_rejection(query.tenant)
            return protocol.error_response(query.id, exc.code, exc.message)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.append(_Pending(query, future))
        self._wakeup.set()
        try:
            return await future
        finally:
            self._release(query)

    # ---------------------------------------------------------------- mutation
    async def mutate(
        self, kind: str, u: int, v: int, weight: float | None = None
    ) -> dict[str, Any]:
        """Apply one graph mutation without dropping the warm session (§12).

        Args:
            kind: ``"add"``, ``"remove"`` or ``"update"`` (see
                :meth:`~repro.session.HybridSession.update_weight`).
            u, v: Edge endpoints.
            weight: New edge weight; required for ``add`` and ``update``.

        Returns:
            ``{"kind", "u", "v", "weight", "version"}`` with the graph
            version after the mutation.

        The mutation runs on the same one-thread executor as the simulation
        passes, so it strictly serializes with them: passes already running
        finish on the graph they started with, and every later pass sees the
        new version.  Nothing is recomputed here -- the session's delta log
        lets the next pass that touches a warm context repair it in place
        (or fall back to a cold rebuild), with the repair rounds charged
        inside that pass and therefore on the ledgers of the tenants it
        serves (DESIGN.md §12).
        """
        if self._closing:
            raise ProtocolError("shutting-down", "server is draining")
        if kind in ("add", "update") and weight is None:
            raise ProtocolError("bad-request", f"mutation {kind!r} requires a weight")

        def apply() -> int:
            if kind == "add":
                self.session.add_edge(u, v, weight)
            elif kind == "remove":
                self.session.remove_edge(u, v)
            elif kind == "update":
                self.session.update_weight(u, v, weight)
            else:
                raise ProtocolError("bad-request", f"unknown mutation kind {kind!r}")
            return self.session.graph.version

        version = await asyncio.get_running_loop().run_in_executor(
            self._executor, apply
        )
        return {"kind": kind, "u": u, "v": v, "weight": weight, "version": version}

    # ----------------------------------------------------------------- batcher
    async def _run(self) -> None:
        while True:
            if not self._queue:
                if self._closing:
                    return
                await self._wakeup.wait()
                self._wakeup.clear()
                continue
            if self.config.batch_window > 0 and not self._closing:
                await asyncio.sleep(self.config.batch_window)
            drained, self._queue = self._queue, []
            queries = [pending.query for pending in drained]
            plan = plan_batches(
                queries, self.config.max_batch, coalesce=self.config.coalesce
            )
            loop = asyncio.get_running_loop()
            for group in plan:
                members = [drained[index] for index in group]
                try:
                    results = await loop.run_in_executor(
                        self._executor, self._execute_group, [m.query for m in members]
                    )
                except Exception as exc:  # noqa: BLE001 - becomes a wire error
                    for member in members:
                        if not member.future.done():
                            member.future.set_result(
                                protocol.error_response(
                                    member.query.id, "internal", str(exc)
                                )
                            )
                    continue
                self.stats.passes += 1
                if len(members) > 1:
                    self.stats.coalesced_queries += len(members)
                for member, result in zip(members, results):
                    self.stats.answered += 1
                    if not member.future.done():
                        member.future.set_result(
                            protocol.ok_response(member.query, result, len(members))
                        )

    # --------------------------------------------------------------- execution
    def _execute_group(self, group: list[Query]) -> list[dict[str, Any]]:
        """Run one coalesced group as a single pass (executor thread).

        Opens one tenant-labelled metrics scope per distinct tenant in the
        group, runs the group's operation once, and returns one encoded
        result per query, aligned with ``group`` order.
        """
        tenants = sorted({query.tenant for query in group})
        with contextlib.ExitStack() as stack:
            scopes = {
                tenant: stack.enter_context(
                    self.session.metrics.scoped(label=f"tenant:{tenant}")
                )
                for tenant in tenants
            }
            results = self._simulate(group)
        for query in group:
            account = self.tenants.setdefault(query.tenant, TenantAccount())
            account.queries += 1
        for tenant in tenants:
            scope = scopes[tenant]
            account = self.tenants[tenant]
            account.amortized_rounds += scope.total_rounds
            account.messages += scope.global_messages
            account.bits += scope.global_bits
        return results

    def _simulate(self, group: list[Query]) -> list[dict[str, Any]]:
        """Dispatch one group to the session; one encoded result per query."""
        op = group[0].op
        n = self.session.network.n
        if op == "sssp":
            sources = [query.params["source"] for query in group]
            batch = self.session.sssp_batch(sources)
            # Answers live at the top level; pass-dependent cost metadata is
            # nested under "cost" so clients (and the E16 identity check) can
            # compare answers across batching modes (DESIGN.md §11).
            return [
                {
                    "source": result.source,
                    "distances": protocol.encode_distances(result.distances, n),
                    "cost": {
                        "rounds": result.rounds,
                        "skeleton_size": result.skeleton_size,
                    },
                }
                for result in batch
            ]
        if op == "apsp":
            probability = group[0].params.get("probability")
            result = self.session.apsp(probability=probability)
            encoded: dict[str, Any] = {
                "n": n,
                "checksum": protocol.matrix_checksum(result.matrix),
                "cost": {"rounds": result.rounds, "skeleton_size": result.skeleton_size},
            }
            out = []
            for query in group:
                entry = dict(encoded)
                if query.params.get("include_matrix"):
                    entry["matrix"] = [
                        [None if value == INFINITY else float(value) for value in row]
                        for row in result.matrix
                    ]
                out.append(entry)
            return out
        if op == "diameter":
            result = self.session.diameter()
            return [
                {
                    "estimate": result.estimate,
                    "used_local_estimate": result.used_local_estimate,
                    "cost": {"rounds": result.rounds},
                }
            ] * len(group)
        if op == "shortest-paths":
            sources = list(group[0].params["sources"])
            result = self.session.shortest_paths(sources)
            per_source = {
                source: protocol.encode_distances(
                    {
                        node: estimates.get(source, INFINITY)
                        for node, estimates in result.estimates.items()
                    },
                    n,
                )
                for source in sources
            }
            encoded_sp = {
                "sources": sources,
                "distances": {str(source): per_source[source] for source in sources},
                "cost": {"rounds": result.rounds},
            }
            return [encoded_sp] * len(group)
        if op == "route-tokens":
            assert len(group) == 1, "route-tokens never coalesces"
            tokens = protocol.build_tokens(group[0])
            result = self.session.route_tokens(tokens)
            delivered = {
                str(receiver): sorted(
                    (token.sender, token.payload) for token in received
                )
                for receiver, received in sorted(result.delivered.items())
            }
            return [
                {
                    "delivered": delivered,
                    "token_count": result.token_count,
                    "cost": {"rounds": result.rounds},
                }
            ]
        raise ProtocolError("bad-request", f"unknown op {op!r}")

    # ------------------------------------------------------------- observation
    def tenant_summary(self) -> dict[str, dict[str, int]]:
        """Per-tenant totals in sorted tenant order (demo + E16 artifacts)."""
        return {tenant: self.tenants[tenant].as_dict() for tenant in sorted(self.tenants)}


async def serve_tcp(
    server: QueryServer, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Expose ``server`` over TCP with the line-delimited JSON protocol.

    Args:
        server: A started :class:`QueryServer` (its lifecycle stays with the
            caller; closing the TCP listener does not drain it).
        host: Bind address.
        port: Bind port; ``0`` picks a free one (read it back from
            ``sockets[0].getsockname()``).

    Returns:
        The listening :class:`asyncio.AbstractServer`.
    """

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        # Requests pipeline: each line is submitted as its own task so queries
        # sent back to back on one connection land in the same batch window
        # and can coalesce.  Responses are written as they complete (possibly
        # out of request order -- clients match on "id"), serialized by a
        # per-connection lock.
        write_lock = asyncio.Lock()
        tasks: list[asyncio.Task] = []

        async def answer(raw: bytes) -> None:
            response = await server.submit(raw)
            async with write_lock:
                writer.write((protocol.dumps(response) + "\n").encode())
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                tasks.append(asyncio.get_running_loop().create_task(answer(stripped)))
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    return await asyncio.start_server(handle, host=host, port=port)


async def query_tcp(host: str, port: int, requests: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Minimal client: send ``requests`` over one connection, gather replies.

    Used by ``repro.cli client`` and the tests; sends every line before
    reading any response so the server can coalesce the whole batch.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = "".join(
            json.dumps(request, separators=(",", ":")) + "\n" for request in requests
        )
        writer.write(payload.encode())
        await writer.drain()
        responses = []
        for _ in requests:
            line = await reader.readline()
            if not line:
                break
            responses.append(json.loads(line))
        return responses
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
