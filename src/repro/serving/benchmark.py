"""E16: QPS and tail latency of the serving layer, batched vs sequential.

Runs one deterministic multi-tenant workload twice against fresh
:class:`~repro.serving.server.QueryServer` instances -- once with coalescing
on, once in one-query-per-pass mode -- and measures both the *deterministic*
cost (total network rounds consumed, simulation passes executed, response
payloads) and the *wall-clock* serving quality (QPS, p50/p99 latency).  The
two live in different places on disk, following the artifact discipline of
the experiment engine (DESIGN.md §7) and SNIPPETS.md Snippet 1:

* ``manifest.json`` -- the run's spec and a hash over its deterministic
  results only; byte-identical across repeat runs at a fixed seed, which is
  what the CI smoke step and the regression gate check.
* ``metrics.jsonl`` -- one line per (mode, query) with the measured latency.
* ``summary.json`` -- the full comparison: per-mode QPS/p50/p99/rounds and
  the headline ``round_throughput_ratio`` (sequential rounds / batched
  rounds; the ISSUE's ≥2× batching win, deterministic and gate-able).

The responses themselves must be bit-identical between the two modes -- the
batching layer may only change *cost*, never *answers* (DESIGN.md §11); the
run records that check as ``responses_identical``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from pathlib import Path
from typing import Any

from repro.graphs import generators
from repro.hybrid.config import ModelConfig
from repro.serving.server import QueryServer, ServerConfig
from repro.session import HybridSession
from repro.util.rand import RandomSource

#: Tenants of the synthetic workload, in round-robin assignment order.
TENANTS = ("acme", "globex")

#: summary.json top-level keys (the CI smoke step asserts this schema).
SUMMARY_SCHEMA = (
    "experiment",
    "n",
    "query_count",
    "seed",
    "batch_window",
    "modes",
    "round_throughput_ratio",
    "wall_speedup",
    "responses_identical",
    "payload_hash",
)


def build_workload(n: int, query_count: int, seed: int) -> list[dict[str, Any]]:
    """The deterministic request mix of one E16 run.

    ``query_count`` SSSP queries from seeded sources, two APSP queries and
    one diameter query, alternating between :data:`TENANTS` -- the mix keeps
    every coalescing rule of DESIGN.md §11 exercised while staying
    SSSP-heavy (the op that amortizes best).
    """
    rng = RandomSource(seed).fork("serving:workload")
    requests: list[dict[str, Any]] = []
    for index in range(query_count):
        requests.append(
            {
                "id": f"sssp-{index:03d}",
                "tenant": TENANTS[index % len(TENANTS)],
                "op": "sssp",
                "source": rng.randrange(n),
            }
        )
    requests.append({"id": "apsp-000", "tenant": TENANTS[0], "op": "apsp"})
    requests.append({"id": "apsp-001", "tenant": TENANTS[1], "op": "apsp"})
    requests.append({"id": "diam-000", "tenant": TENANTS[0], "op": "diameter"})
    return requests


def _workload_graph(n: int, seed: int):
    return generators.random_geometric_like_graph(
        n, neighbourhood=2, rng=RandomSource(seed), extra_edge_probability=0.01
    )


def _responses_digest(responses: list[dict[str, Any]]) -> str:
    """SHA-256 over the answers only.

    ``batch_size`` and the per-result ``cost`` metadata legitimately differ
    between batching modes; the answers must not (DESIGN.md §11).
    """
    lines = []
    for response in responses:
        stripped = {k: v for k, v in response.items() if k != "batch_size"}
        if isinstance(stripped.get("result"), dict):
            stripped["result"] = {
                k: v for k, v in stripped["result"].items() if k != "cost"
            }
        lines.append(json.dumps(stripped, sort_keys=True, separators=(",", ":")))
    return hashlib.sha256("\n".join(sorted(lines)).encode()).hexdigest()


def _percentile(sorted_values: list[float], fraction: float) -> float:
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_mode(
    graph: Any,
    requests: list[dict[str, Any]],
    *,
    seed: int,
    coalesce: bool,
    batch_window: float,
) -> dict[str, Any]:
    """Serve ``requests`` once on a fresh server; measure cost and latency.

    Returns a dict with the deterministic fields (``total_rounds``,
    ``passes``, ``responses_digest``, ``tenants``, ``answered``) and the
    wall-clock fields (``qps``, ``p50_ms``, ``p99_ms``, ``elapsed_s``).
    """

    async def _serve() -> dict[str, Any]:
        session = HybridSession(graph, ModelConfig(rng_seed=seed))
        config = ServerConfig(
            batch_window=batch_window,
            max_pending=len(requests) + 1,
            max_batch=max(1, len(requests)),
            coalesce=coalesce,
        )
        latencies: list[float] = []

        async def timed(request: dict[str, Any]) -> dict[str, Any]:
            # repro-lint: waive[RL001] -- E16 latency stamps; ride outside the hashed payload
            started = time.perf_counter()
            response = await server.submit(request)
            # repro-lint: waive[RL001] -- E16 latency stamps; ride outside the hashed payload
            latencies.append(time.perf_counter() - started)
            return response

        async with QueryServer(session, config) as server:
            # repro-lint: waive[RL001] -- E16 QPS measurement; rides outside the hashed payload
            run_started = time.perf_counter()
            # Every request is enqueued before the batch window closes (task
            # creation does not yield), so batch composition -- and with it
            # the deterministic cost profile -- is reproducible.
            tasks = [asyncio.ensure_future(timed(request)) for request in requests]
            responses = await asyncio.gather(*tasks)
            # repro-lint: waive[RL001] -- E16 QPS measurement; rides outside the hashed payload
            elapsed = time.perf_counter() - run_started
        ordered = sorted(latencies)
        return {
            "total_rounds": session.metrics.total_rounds,
            "passes": server.stats.passes,
            "answered": server.stats.answered,
            "responses_digest": _responses_digest(responses),
            "tenants": server.tenant_summary(),
            "qps": round(len(requests) / elapsed, 2) if elapsed > 0 else 0.0,
            "p50_ms": round(1000 * _percentile(ordered, 0.50), 3),
            "p99_ms": round(1000 * _percentile(ordered, 0.99), 3),
            "elapsed_s": round(elapsed, 4),
        }

    return asyncio.run(_serve())


#: Keys of a mode result that are deterministic at a fixed seed (hashed);
#: everything else is wall-clock measurement and stays outside the hash.
DETERMINISTIC_MODE_KEYS = ("total_rounds", "passes", "answered", "responses_digest", "tenants")


def run_comparison(
    n: int, query_count: int, seed: int, *, batch_window: float = 0.005
) -> dict[str, Any]:
    """One full E16 run: batched vs sequential on the same workload.

    Returns the summary dict (schema :data:`SUMMARY_SCHEMA`); the headline
    ``round_throughput_ratio`` is sequential rounds / batched rounds -- the
    deterministic measure of the batching win (≥2 at the acceptance point).
    """
    graph = _workload_graph(n, seed)
    requests = build_workload(n, query_count, seed)
    batched = run_mode(
        graph, requests, seed=seed, coalesce=True, batch_window=batch_window
    )
    sequential = run_mode(
        graph, requests, seed=seed, coalesce=False, batch_window=batch_window
    )
    deterministic = {
        "n": n,
        "query_count": len(requests),
        "seed": seed,
        "modes": {
            mode: {key: result[key] for key in DETERMINISTIC_MODE_KEYS}
            for mode, result in (("batched", batched), ("sequential", sequential))
        },
        "round_throughput_ratio": round(
            sequential["total_rounds"] / max(1, batched["total_rounds"]), 3
        ),
        "responses_identical": batched["responses_digest"]
        == sequential["responses_digest"],
    }
    payload_hash = hashlib.sha256(
        json.dumps(deterministic, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    return {
        "experiment": "E16",
        "n": n,
        "query_count": len(requests),
        "seed": seed,
        "batch_window": batch_window,
        "modes": {"batched": batched, "sequential": sequential},
        "round_throughput_ratio": deterministic["round_throughput_ratio"],
        "wall_speedup": round(
            sequential["elapsed_s"] / max(1e-9, batched["elapsed_s"]), 2
        ),
        "responses_identical": deterministic["responses_identical"],
        "payload_hash": payload_hash,
    }


def write_run_artifacts(out_dir: str | Path, summary: dict[str, Any]) -> dict[str, Path]:
    """Persist one E16 run as manifest.json + metrics.jsonl + summary.json.

    ``manifest.json`` carries only the spec and the deterministic
    ``payload_hash`` (byte-identical across repeat runs at a fixed seed);
    ``metrics.jsonl`` one line per (mode, metric); ``summary.json`` the full
    comparison.  Returns the three paths.
    """
    root = Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    manifest = {
        "experiment": "E16",
        "spec": {
            "n": summary["n"],
            "query_count": summary["query_count"],
            "seed": summary["seed"],
            "batch_window": summary["batch_window"],
        },
        "payload_hash": summary["payload_hash"],
    }
    manifest_path = root / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    metrics_path = root / "metrics.jsonl"
    with metrics_path.open("w") as handle:
        for mode in sorted(summary["modes"]):
            result = summary["modes"][mode]
            for key in sorted(result):
                if key == "tenants":
                    continue
                handle.write(
                    json.dumps(
                        {"mode": mode, "metric": key, "value": result[key]},
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    + "\n"
                )
    summary_path = root / "summary.json"
    summary_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return {"manifest": manifest_path, "metrics": metrics_path, "summary": summary_path}
