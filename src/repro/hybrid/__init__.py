"""The HYBRID network model substrate (Augustine et al. SODA'20, Section 1 of the paper).

Exports the simulation engine (:class:`HybridNetwork`), its configuration
(:class:`ModelConfig`), the accounting object (:class:`RoundMetrics`) and the
engine's exception types.
"""

from repro.hybrid.batch import MessageBatch
from repro.hybrid.config import ModelConfig
from repro.hybrid.errors import (
    CapacityExceededError,
    FaultToleranceExceededError,
    HybridModelError,
    ProtocolError,
    StaleContextError,
)
from repro.hybrid.faults import FaultModel
from repro.hybrid.metrics import PhaseBreakdown, RoundMetrics
from repro.hybrid.network import HybridNetwork, Inboxes, Outboxes

__all__ = [
    "ModelConfig",
    "HybridNetwork",
    "MessageBatch",
    "RoundMetrics",
    "PhaseBreakdown",
    "FaultModel",
    "CapacityExceededError",
    "FaultToleranceExceededError",
    "HybridModelError",
    "ProtocolError",
    "StaleContextError",
    "Inboxes",
    "Outboxes",
]
