"""Configuration of the HYBRID model instance being simulated.

The paper parameterises hybrid networks by the local message size ``λ`` and
the per-node global budget ``γ`` (Section 1).  The combination studied is
LOCAL + NCC: ``λ = ∞`` and ``γ = O(log² n)`` bits, i.e. every node may send and
receive ``O(log n)`` messages of ``O(log n)`` bits per round over the global
network.  :class:`ModelConfig` pins down the constants hidden in those
``O(·)``'s for a concrete simulation, plus the w.h.p. constants used by the
skeleton / helper-set constructions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hybrid.faults import FaultModel


@dataclass
class ModelConfig:
    """Concrete constants for one simulated HYBRID network.

    Attributes
    ----------
    global_send_factor:
        Each node may send ``ceil(global_send_factor * log2 n)`` global
        messages per round (the ``O(log n)`` of the NCC mode).
    global_receive_factor:
        The receive budget used when ``strict_receive`` is enabled, and the
        reference value benchmarks compare the measured maximum against.
    message_bits:
        Nominal size of one global message in bits (``O(log n)``); only used
        for bit accounting, payloads themselves are Python objects.
    strict_send:
        If True (default) a protocol handing the engine more than the per-round
        send budget for a single node is a bug and raises
        :class:`~repro.hybrid.errors.CapacityExceededError`.  Batched helpers
        (``run_global_exchange``) always respect the budget automatically.
    strict_receive:
        If True, exceeding ``receive_cap`` raises instead of being recorded.
        The paper only guarantees the receive bound w.h.p. (Lemma D.2), so the
        default is to record violations and let tests assert on the metrics.
    skeleton_xi:
        The ``ξ`` constant in the skeleton hop length ``h = ξ x ln n``
        (Lemma C.1).  Asymptotically ``ξ ≥ 8c``; simulations at a few hundred
        nodes use a small value so that ``h << n`` and the skeleton machinery
        is actually exercised (see DESIGN.md, fidelity policy).
    helper_log_factor:
        The ``⌈log n⌉`` factors in Algorithm 1 / Algorithm 3 are multiplied by
        this scale; 1.0 reproduces the paper's pseudo-code literally.
    hash_independence_factor:
        Independence of the routing hash family is
        ``hash_independence_factor * ceil(log2 n)`` (Lemma D.2 needs Θ(log n)).
    cap_local_at_diameter:
        The paper notes that every round bound can be read as
        ``min(D, bound)`` because ``D`` rounds of the LOCAL mode let every node
        learn the whole graph.  When True (default), every local-phase charge
        is capped at the hop diameter of ``G``, which implements that remark
        per phase and keeps the accounting honest on small-diameter graphs.
    global_plane:
        How :class:`~repro.hybrid.batch.MessageBatch` traffic is executed:
        ``"auto"`` (default) uses the compiled njit kernels when numba is
        importable, else the vectorized whole-array scheduler when numpy is;
        ``"compiled"`` opts into the njit admission scan and fault hashing of
        :mod:`repro.hybrid.compiled` (requires numpy; degrades per kernel to
        the vectorized implementations when numba is absent);
        ``"vectorized"`` pins the numpy scheduler; ``"scalar"`` forces the
        per-message reference path.  All planes make identical admission
        decisions and record identical metrics (DESIGN.md §9); benchmarks pin
        each to measure the speedup.  Dict-form outboxes always take the
        scalar path.
    faults:
        Optional :class:`~repro.hybrid.faults.FaultModel` describing an
        unreliable network (seeded message drops, bursts, node crash /
        omission sets, local-edge outages).  ``None`` (the default) -- or a
        model whose :attr:`~repro.hybrid.faults.FaultModel.enabled` is False
        -- keeps the ideal engine paths, bit-identical to earlier releases
        (pinned by tests/test_faults.py).
    rng_seed:
        Root seed for all randomness of a simulation run.
    """

    global_send_factor: float = 1.0
    global_receive_factor: float = 4.0
    message_bits: int = 64
    strict_send: bool = True
    strict_receive: bool = False
    skeleton_xi: float = 0.75
    helper_log_factor: float = 1.0
    hash_independence_factor: int = 3
    cap_local_at_diameter: bool = True
    global_plane: str = "auto"
    faults: FaultModel | None = None
    rng_seed: int = 0
    extra: dict = field(default_factory=dict)

    def send_cap(self, n: int) -> int:
        """Per-node, per-round global send budget for an ``n``-node network."""
        return max(1, math.ceil(self.global_send_factor * math.log2(max(n, 2))))

    def receive_cap(self, n: int) -> int:
        """Per-node, per-round global receive budget (reference value)."""
        return max(1, math.ceil(self.global_receive_factor * math.log2(max(n, 2))))

    def log_rounds(self, n: int) -> int:
        """The ``⌈log n⌉`` factor used by the local exploration loops."""
        return max(1, math.ceil(self.helper_log_factor * math.log2(max(n, 2))))
