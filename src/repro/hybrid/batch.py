"""Batched representation of global-mode (NCC) message traffic.

The engine's scalar interface moves global messages as
``Dict[sender, List[(target, payload)]]`` outboxes and the mirror-image
``Dict[receiver, List[(sender, payload)]]`` inboxes.  That shape forces a
Python-level loop per message on both the protocol side (building the dicts
one tuple at a time) and the engine side (draining them one tuple at a time).

:class:`MessageBatch` is the array-backed alternative, mirroring the graph
core's dict/CSR dual-backend pattern (DESIGN.md §4): one batch of messages is
three parallel columns

* ``senders`` -- integer array, ``senders[i]`` sent message ``i``,
* ``targets`` -- integer array, ``targets[i]`` receives message ``i``, and
* ``payloads`` -- a plain Python list of the message payloads,

so the engine can do all round accounting (per-sender counts, per-receiver
``np.bincount``, cut crossings, budget scheduling) with whole-array
operations and only ever touches payloads to slice them.  Message ``i`` of a
batch is *earlier* than message ``j > i``: within one sender the array order
is the sender's queue order, exactly like the list order of a dict-form
outbox.

The same class serves as the batched inbox: :meth:`groupby_target` yields the
per-receiver message groups in delivery order, and :meth:`to_inboxes` /
:meth:`to_outboxes` convert to the scalar dict forms for interoperability.
Without numpy the columns degrade to Python lists and the engine falls back
to the scalar plane; every consumer keeps working.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

try:  # Arrays when available; plain lists otherwise (see module docstring).
    import numpy as _np

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only in stripped environments
    _np = None
    _HAS_NUMPY = False

Outboxes = Dict[int, List[Tuple[int, object]]]
Inboxes = Dict[int, List[Tuple[int, object]]]


def _as_index_column(values) -> "Sequence[int]":
    """Coerce a sender/target column to an int64 array (or list without numpy)."""
    if _HAS_NUMPY:
        return _np.asarray(values, dtype=_np.int64)
    return [int(value) for value in values]


class MessageBatch:
    """One batch of global messages as parallel sender/target/payload columns."""

    __slots__ = ("senders", "targets", "payloads")

    def __init__(self, senders, targets, payloads: Sequence[object]) -> None:
        self.senders = _as_index_column(senders)
        self.targets = _as_index_column(targets)
        self.payloads = list(payloads) if not isinstance(payloads, list) else payloads
        if not (len(self.senders) == len(self.targets) == len(self.payloads)):
            raise ValueError(
                f"column lengths differ: {len(self.senders)} senders, "
                f"{len(self.targets)} targets, {len(self.payloads)} payloads"
            )

    # ------------------------------------------------------------ constructors
    @classmethod
    def empty(cls) -> "MessageBatch":
        """A batch with no messages."""
        return cls([], [], [])

    @classmethod
    def from_outboxes(cls, outboxes: Mapping[int, Sequence[Tuple[int, object]]]) -> "MessageBatch":
        """Flatten dict-form outboxes (sender iteration order, then queue order)."""
        senders: List[int] = []
        targets: List[int] = []
        payloads: List[object] = []
        for sender, messages in outboxes.items():
            for target, payload in messages:
                senders.append(sender)
                targets.append(target)
                payloads.append(payload)
        return cls(senders, targets, payloads)

    @classmethod
    def from_inboxes(cls, inboxes: Mapping[int, Sequence[Tuple[int, object]]]) -> "MessageBatch":
        """Flatten dict-form inboxes; per-target message order is preserved."""
        senders: List[int] = []
        targets: List[int] = []
        payloads: List[object] = []
        for target, messages in inboxes.items():
            for sender, payload in messages:
                senders.append(sender)
                targets.append(target)
                payloads.append(payload)
        return cls(senders, targets, payloads)

    @classmethod
    def concat(cls, batches: Sequence["MessageBatch"]) -> "MessageBatch":
        """Concatenate batches in order (earlier batches are earlier messages)."""
        batches = [batch for batch in batches if len(batch)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        payloads: List[object] = []
        for batch in batches:
            payloads.extend(batch.payloads)
        if _HAS_NUMPY:
            senders = _np.concatenate([batch.senders for batch in batches])
            targets = _np.concatenate([batch.targets for batch in batches])
        else:
            senders = [s for batch in batches for s in batch.senders]
            targets = [t for batch in batches for t in batch.targets]
        return cls(senders, targets, payloads)

    # ------------------------------------------------------------- conversions
    def __len__(self) -> int:
        return len(self.payloads)

    def to_outboxes(self) -> Outboxes:
        """The scalar dict-of-tuples outbox form (per-sender queue order kept)."""
        outboxes: Outboxes = {}
        for sender, target, payload in zip(self.senders, self.targets, self.payloads):
            outboxes.setdefault(int(sender), []).append((int(target), payload))
        return outboxes

    def to_inboxes(self) -> Inboxes:
        """The scalar dict-of-tuples inbox form (per-receiver delivery order kept)."""
        inboxes: Inboxes = {}
        for sender, target, payload in zip(self.senders, self.targets, self.payloads):
            inboxes.setdefault(int(target), []).append((int(sender), payload))
        return inboxes

    def groupby_target(self) -> Iterator[Tuple[int, Sequence[int], List[object]]]:
        """Yield ``(target, senders, payloads)`` per distinct target.

        Groups appear in ascending target order; within a group, messages keep
        their batch (delivery) order, so per-target folds see exactly the
        sequence a dict-form inbox would hold.  With numpy the senders come
        back as an integer array (materialise with ``list(...)`` if needed).
        """
        if not len(self):
            return
        if _HAS_NUMPY:
            order = _np.argsort(self.targets, kind="stable")
            sorted_targets = self.targets[order]
            boundaries = _np.flatnonzero(sorted_targets[1:] != sorted_targets[:-1]) + 1
            starts = [0, *boundaries.tolist(), len(order)]
            payloads = self.payloads
            for begin, end in zip(starts[:-1], starts[1:]):
                indices = order[begin:end]
                yield (
                    int(sorted_targets[begin]),
                    self.senders[indices],
                    [payloads[i] for i in indices.tolist()],
                )
        else:
            grouped: Dict[int, Tuple[List[int], List[object]]] = {}
            for sender, target, payload in zip(self.senders, self.targets, self.payloads):
                bucket = grouped.setdefault(int(target), ([], []))
                bucket[0].append(int(sender))
                bucket[1].append(payload)
            for target in sorted(grouped):
                senders, payloads = grouped[target]
                yield target, senders, payloads

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageBatch(messages={len(self)})"
