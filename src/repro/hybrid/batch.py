"""Batched representation of global-mode (NCC) message traffic.

The engine's scalar interface moves global messages as
``dict[sender, list[(target, payload)]]`` outboxes and the mirror-image
``dict[receiver, list[(sender, payload)]]`` inboxes.  That shape forces a
Python-level loop per message on both the protocol side (building the dicts
one tuple at a time) and the engine side (draining them one tuple at a time).

:class:`MessageBatch` is the array-backed alternative, mirroring the graph
core's dict/CSR dual-backend pattern (DESIGN.md §4): one batch of messages is
three parallel columns

* ``senders`` -- integer array, ``senders[i]`` sent message ``i``,
* ``targets`` -- integer array, ``targets[i]`` receives message ``i``, and
* ``payloads`` -- a plain Python list of the message payloads,

so the engine can do all round accounting (per-sender counts, per-receiver
``np.bincount``, cut crossings, budget scheduling) with whole-array
operations and only ever touches payloads to slice them.  Message ``i`` of a
batch is *earlier* than message ``j > i``: within one sender the array order
is the sender's queue order, exactly like the list order of a dict-form
outbox.

The same class serves as the batched inbox: :meth:`groupby_target` yields the
per-receiver message groups in delivery order, and :meth:`to_inboxes` /
:meth:`to_outboxes` convert to the scalar dict forms for interoperability.
Without numpy the columns degrade to Python lists and the engine falls back
to the scalar plane; every consumer keeps working.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

try:  # Arrays when available; plain lists otherwise (see module docstring).
    import numpy as _np

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only in stripped environments
    _np = None
    _HAS_NUMPY = False

Outboxes = dict[int, list[tuple[int, object]]]
Inboxes = dict[int, list[tuple[int, object]]]

#: The compiled message plane's kernel surface (:mod:`repro.hybrid.compiled`):
#: each name must exist there as a function with exactly these leading
#: parameter names, or as an explicit ``name = None`` degradation entry (the
#: no-numba case).  The scalar oracles live beside the engine --
#: ``repro.hybrid.network._admit_scan`` and
#: ``repro.hybrid.faults.fault_hash_array`` -- and the vectorized plane in
#: this module is pinned bit-identical to both.  Checked statically by RL003
#: of :mod:`repro.analysis.lint`.
PLANE_KERNELS = {
    "admit_scan": ("senders", "targets", "scan_positions", "send_cap", "receive_cap", "n"),
    "fault_hash_columns": ("prefix", "senders", "targets", "occurrences"),
}


def _as_index_column(values) -> "Sequence[int]":
    """Coerce a sender/target column to an int64 array (or list without numpy)."""
    if _HAS_NUMPY:
        return _np.asarray(values, dtype=_np.int64)
    return [int(value) for value in values]


class MessageBatch:
    """One batch of global messages as parallel sender/target/payload columns."""

    __slots__ = ("senders", "targets", "payloads")

    def __init__(self, senders, targets, payloads: Sequence[object]) -> None:
        self.senders = _as_index_column(senders)
        self.targets = _as_index_column(targets)
        self.payloads = list(payloads) if not isinstance(payloads, list) else payloads
        if not (len(self.senders) == len(self.targets) == len(self.payloads)):
            raise ValueError(
                f"column lengths differ: {len(self.senders)} senders, "
                f"{len(self.targets)} targets, {len(self.payloads)} payloads"
            )

    # ------------------------------------------------------------ constructors
    @classmethod
    def empty(cls) -> "MessageBatch":
        """A batch with no messages."""
        return cls([], [], [])

    @classmethod
    def from_outboxes(cls, outboxes: Mapping[int, Sequence[tuple[int, object]]]) -> "MessageBatch":
        """Flatten dict-form outboxes (sender iteration order, then queue order)."""
        senders: list[int] = []
        targets: list[int] = []
        payloads: list[object] = []
        for sender, messages in outboxes.items():
            for target, payload in messages:
                senders.append(sender)
                targets.append(target)
                payloads.append(payload)
        return cls(senders, targets, payloads)

    @classmethod
    def from_inboxes(cls, inboxes: Mapping[int, Sequence[tuple[int, object]]]) -> "MessageBatch":
        """Flatten dict-form inboxes; per-target message order is preserved."""
        senders: list[int] = []
        targets: list[int] = []
        payloads: list[object] = []
        for target, messages in inboxes.items():
            for sender, payload in messages:
                senders.append(sender)
                targets.append(target)
                payloads.append(payload)
        return cls(senders, targets, payloads)

    @classmethod
    def concat(cls, batches: Sequence["MessageBatch"]) -> "MessageBatch":
        """Concatenate batches in order (earlier batches are earlier messages)."""
        batches = [batch for batch in batches if len(batch)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        payloads: list[object] = []
        for batch in batches:
            payloads.extend(batch.payloads)
        if _HAS_NUMPY:
            senders = _np.concatenate([batch.senders for batch in batches])
            targets = _np.concatenate([batch.targets for batch in batches])
        else:
            senders = [s for batch in batches for s in batch.senders]
            targets = [t for batch in batches for t in batch.targets]
        return cls(senders, targets, payloads)

    # ------------------------------------------------------------- conversions
    def __len__(self) -> int:
        return len(self.payloads)

    def to_outboxes(self) -> Outboxes:
        """The scalar dict-of-tuples outbox form (per-sender queue order kept)."""
        outboxes: Outboxes = {}
        for sender, target, payload in zip(self.senders, self.targets, self.payloads, strict=True):
            outboxes.setdefault(int(sender), []).append((int(target), payload))
        return outboxes

    def to_inboxes(self) -> Inboxes:
        """The scalar dict-of-tuples inbox form (per-receiver delivery order kept)."""
        inboxes: Inboxes = {}
        for sender, target, payload in zip(self.senders, self.targets, self.payloads, strict=True):
            inboxes.setdefault(int(target), []).append((int(sender), payload))
        return inboxes

    def groupby_target(self) -> Iterator[tuple[int, Sequence[int], list[object]]]:
        """Yield ``(target, senders, payloads)`` per distinct target.

        Groups appear in ascending target order; within a group, messages keep
        their batch (delivery) order, so per-target folds see exactly the
        sequence a dict-form inbox would hold.  With numpy the senders come
        back as an integer array (materialise with ``list(...)`` if needed).
        """
        if not len(self):
            return
        if _HAS_NUMPY:
            order = _np.argsort(self.targets, kind="stable")
            sorted_targets = self.targets[order]
            boundaries = _np.flatnonzero(sorted_targets[1:] != sorted_targets[:-1]) + 1
            starts = [0, *boundaries.tolist(), len(order)]
            payloads = self.payloads
            for begin, end in zip(starts[:-1], starts[1:], strict=True):
                indices = order[begin:end]
                yield (
                    int(sorted_targets[begin]),
                    self.senders[indices],
                    [payloads[i] for i in indices.tolist()],
                )
        else:
            grouped: dict[int, tuple[list[int], list[object]]] = {}
            columns = zip(self.senders, self.targets, self.payloads, strict=True)
            for sender, target, payload in columns:
                bucket = grouped.setdefault(int(target), ([], []))
                bucket[0].append(int(sender))
                bucket[1].append(payload)
            for target in sorted(grouped):
                senders, payloads = grouped[target]
                yield target, senders, payloads

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageBatch(messages={len(self)})"
