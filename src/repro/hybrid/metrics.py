"""Round and message accounting for the HYBRID model engine.

Every theorem in the paper is a statement about *rounds*, and the global-mode
capacity constraint is what makes those statements non-trivial, so the engine
keeps detailed counters:

* local rounds and global rounds, separately and per named protocol phase,
* global messages sent/received in total and the per-node per-round maxima
  (Lemma D.2 asserts these stay at ``O(log n)`` w.h.p.), and
* total global bits, which the lower-bound experiments (Sections 6-7) compare
  against the information-theoretic requirements.

Counters can additionally be observed through *scopes*
(:meth:`RoundMetrics.scoped`): a scope is a fresh ``RoundMetrics`` that
receives a copy of every charge recorded while it is active, so a caller can
read off exactly what one query (or one protocol phase) cost -- including the
per-round maxima, which a subtract-two-snapshots scheme could not recover.
The session layer (:mod:`repro.session`) uses scopes for its per-query
amortized accounting.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field


#: Process-local stack of ambient observers (see :func:`ambient_observer`).
#: Every :class:`~repro.hybrid.network.HybridNetwork` created while an
#: observer is active attaches it to its metrics via
#: :meth:`RoundMetrics.attach_ambient_observers`, so one observer sees the
#: combined charges of *all* networks a code region builds.  The experiment
#: engine opens one observer per shard: because the stack is per process and
#: shards run one at a time within a worker, the per-shard metrics recorded
#: in the artifact store are bit-identical between serial and parallel runs.
_AMBIENT_OBSERVERS: list["RoundMetrics"] = []


@contextmanager
def ambient_observer() -> Iterator["RoundMetrics"]:
    """Observe every metrics charge of networks created inside the context.

    Yields a fresh :class:`RoundMetrics` that is appended, as a scope, to the
    metrics of every ``HybridNetwork`` constructed while the context is
    active (the same mirroring machinery as :meth:`RoundMetrics.scoped`).
    Charges on networks created *before* the context opened are not seen.
    """
    scope = RoundMetrics()
    # repro-lint: waive[RL006] -- per-process ambient scope stack; each worker opens its own scope
    _AMBIENT_OBSERVERS.append(scope)
    try:
        yield scope
    finally:
        # repro-lint: waive[RL006] -- per-process ambient scope stack; scopes never cross processes
        for index, active in enumerate(_AMBIENT_OBSERVERS):
            if active is scope:
                # repro-lint: waive[RL006] -- removes only the scope this process appended above
                del _AMBIENT_OBSERVERS[index]
                break


@dataclass
class PhaseBreakdown:
    """Rounds attributed to one named protocol phase."""

    local_rounds: int = 0
    global_rounds: int = 0

    @property
    def total_rounds(self) -> int:
        """Local plus global rounds of this phase."""
        return self.local_rounds + self.global_rounds


@dataclass
class RoundMetrics:
    """Counters collected while simulating one protocol execution.

    ``label`` is an optional free-form tag for scope bookkeeping (the serving
    layer labels per-tenant scopes ``tenant:<name>``, see DESIGN.md §11); it
    never participates in equality or accounting.
    """

    local_rounds: int = 0
    global_rounds: int = 0
    global_messages: int = 0
    global_bits: int = 0
    max_sent_per_round: int = 0
    max_received_per_round: int = 0
    receive_cap_violations: int = 0
    #: Global messages lost to an active :class:`~repro.hybrid.faults.FaultModel`
    #: (sent -- they consume bandwidth and count in ``global_messages`` -- but
    #: never delivered) and messages re-sent by reliable exchanges to recover
    #: from those losses.  Both stay 0 on the ideal fault-free paths.
    global_dropped: int = 0
    global_retried: int = 0
    phases: dict[str, PhaseBreakdown] = field(default_factory=lambda: defaultdict(PhaseBreakdown))
    cut_bits: dict[str, int] = field(default_factory=dict)
    label: str | None = field(default=None, repr=False, compare=False)
    _scopes: list["RoundMetrics"] = field(default_factory=list, repr=False, compare=False)

    @property
    def total_rounds(self) -> int:
        """The quantity every theorem bounds: local + global rounds."""
        return self.local_rounds + self.global_rounds

    def attach_ambient_observers(self) -> None:
        """Subscribe this metrics object to the active ambient observers.

        Called by ``HybridNetwork`` at construction (and on metrics reset) so
        that :func:`ambient_observer` scopes see the charges of every network
        born inside them.  Only top-level network metrics attach -- plain
        ``RoundMetrics`` used as accumulators (e.g. the session's
        ``preprocessing`` ledger) never do, so merged charges are counted
        exactly once.
        """
        # repro-lint: waive[RL006] -- reads the per-process scope stack; never crosses processes
        for scope in _AMBIENT_OBSERVERS:
            self._scopes.append(scope)

    @contextmanager
    def scoped(self, label: str | None = None) -> Iterator["RoundMetrics"]:
        """Observe every charge recorded while the context is active.

        Yields a fresh :class:`RoundMetrics`; all charges (rounds, traffic,
        cut bits, merges) recorded on *this* object while the scope is open
        are mirrored into it.  Scopes nest -- an inner scope sees a subset of
        what the outer one sees -- and unlike a snapshot subtraction the
        scope's ``max_sent_per_round`` / ``max_received_per_round`` are the
        true per-round maxima *within* the scope.  ``label`` tags the scope
        (e.g. ``tenant:<name>`` in the serving layer) without affecting the
        accounting or equality.
        """
        scope = RoundMetrics(label=label)
        self._scopes.append(scope)
        try:
            yield scope
        finally:
            # Remove by identity: two nested scopes that observed the same
            # charges compare equal, so value-based list.remove would pop
            # the wrong one.
            for index, active in enumerate(self._scopes):
                if active is scope:
                    del self._scopes[index]
                    break

    def charge_local(self, rounds: int, phase: str = "local") -> None:
        """Add ``rounds`` local rounds attributed to ``phase``."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self.local_rounds += rounds
        self.phases[phase].local_rounds += rounds
        for scope in self._scopes:
            scope.charge_local(rounds, phase)

    def charge_global(self, rounds: int, phase: str = "global") -> None:
        """Add ``rounds`` global rounds attributed to ``phase``."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self.global_rounds += rounds
        self.phases[phase].global_rounds += rounds
        for scope in self._scopes:
            scope.charge_global(rounds, phase)

    def record_global_traffic(
        self,
        messages: int,
        bits: int,
        max_sent: int,
        max_received: int,
        receive_cap: int | None = None,
    ) -> None:
        """Record one global round's traffic statistics."""
        self.global_messages += messages
        self.global_bits += bits
        self.max_sent_per_round = max(self.max_sent_per_round, max_sent)
        self.max_received_per_round = max(self.max_received_per_round, max_received)
        if receive_cap is not None and max_received > receive_cap:
            self.receive_cap_violations += 1
        for scope in self._scopes:
            scope.record_global_traffic(messages, bits, max_sent, max_received, receive_cap)

    def record_fault_losses(self, dropped: int = 0, retried: int = 0) -> None:
        """Tally fault-injected message losses and the retransmissions that
        answer them.  Only called with non-zero counts, and only by the
        faulty engine paths, so fault-free metrics never even see the call."""
        self.global_dropped += dropped
        self.global_retried += retried
        for scope in self._scopes:
            scope.record_fault_losses(dropped, retried)

    def record_cut_bits(self, cut_name: str, bits: int) -> None:
        """Accumulate global bits that crossed a named cut (lower-bound experiments)."""
        self.cut_bits[cut_name] = self.cut_bits.get(cut_name, 0) + bits
        for scope in self._scopes:
            scope.record_cut_bits(cut_name, bits)

    def merge(self, other: "RoundMetrics") -> None:
        """Fold another metrics object into this one (used by nested protocols)."""
        for scope in self._scopes:
            scope.merge(other)
        self.local_rounds += other.local_rounds
        self.global_rounds += other.global_rounds
        self.global_messages += other.global_messages
        self.global_bits += other.global_bits
        self.max_sent_per_round = max(self.max_sent_per_round, other.max_sent_per_round)
        self.max_received_per_round = max(self.max_received_per_round, other.max_received_per_round)
        self.receive_cap_violations += other.receive_cap_violations
        self.global_dropped += other.global_dropped
        self.global_retried += other.global_retried
        for phase, breakdown in other.phases.items():
            self.phases[phase].local_rounds += breakdown.local_rounds
            self.phases[phase].global_rounds += breakdown.global_rounds
        for cut, bits in other.cut_bits.items():
            self.cut_bits[cut] = self.cut_bits.get(cut, 0) + bits

    def rounds_for_phase_prefix(self, prefix: str) -> int:
        """Total rounds of all phases whose name starts with ``prefix``.

        Protocol phases are named hierarchically (e.g. ``apsp:routing:push``),
        so the cost of a whole sub-protocol can be read off with its prefix.
        """
        return sum(
            breakdown.total_rounds
            for name, breakdown in self.phases.items()
            if name.startswith(prefix)
        )

    def phase_summary(self) -> list[str]:
        """Human-readable per-phase round counts (largest first)."""
        rows = sorted(self.phases.items(), key=lambda item: -item[1].total_rounds)
        return [
            f"{name}: {breakdown.total_rounds} rounds "
            f"({breakdown.local_rounds} local, {breakdown.global_rounds} global)"
            for name, breakdown in rows
        ]

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary used by benchmarks' ``extra_info``."""
        return {
            "total_rounds": self.total_rounds,
            "local_rounds": self.local_rounds,
            "global_rounds": self.global_rounds,
            "global_messages": self.global_messages,
            "global_bits": self.global_bits,
            "max_sent_per_round": self.max_sent_per_round,
            "max_received_per_round": self.max_received_per_round,
            "receive_cap_violations": self.receive_cap_violations,
            "global_dropped": self.global_dropped,
            "global_retried": self.global_retried,
        }
