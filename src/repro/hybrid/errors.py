"""Exceptions raised by the HYBRID model engine."""

from __future__ import annotations


class HybridModelError(Exception):
    """Base class for all errors raised by the simulation engine."""


class CapacityExceededError(HybridModelError):
    """A node attempted to send (or was forced to receive) more global messages
    in one round than the model allows under the configured policy."""


class ProtocolError(HybridModelError):
    """A protocol implementation violated one of its own preconditions
    (e.g. a receiver was asked for a token it never announced)."""


class StaleContextError(HybridModelError):
    """A prepared :class:`~repro.core.context.SkeletonContext` was asked to
    serve (or derive) answers after the underlying graph mutated past the
    version it was built at.  Raised instead of silently answering for a
    graph that no longer exists; the owner resolves staleness by delta
    repair or a cold rebuild (DESIGN.md §12)."""


class FaultToleranceExceededError(HybridModelError):
    """A reliable exchange exhausted its retransmission budget with messages
    still undelivered (the injected faults beat the configured
    :attr:`~repro.hybrid.faults.FaultModel.max_attempts`).  Protocols raise
    this instead of silently returning partial results, so a caller can
    distinguish "the w.h.p. guarantee failed under this fault schedule" from
    a wrong answer."""
