"""Fault injection for unreliable HYBRID networks.

The paper's algorithms carry w.h.p. guarantees, but the engine historically
only simulated the *ideal* model: every global message admitted by the
capacity caps is delivered and every node survives.  :class:`FaultModel`
describes an adversarial-but-seeded environment on top of the same engine:

* **i.i.d. message drop** -- every global message is lost independently with
  probability ``drop_rate``,
* **burst drop** -- with probability ``burst_rate`` per global round a burst
  starts and elevates the drop probability to ``burst_drop_rate`` for
  ``burst_length`` consecutive rounds (a crude Gilbert-Elliott channel),
* **node crash / omission sets** -- a crashed node neither sends nor receives
  global messages from its crash round on; an omission set silences a node
  for exactly one round, and
* **local-edge outages** -- listed local edges are down for the whole run
  (the LOCAL mode computes on the graph minus those edges).

Faults are *deterministic given the model's seed*: each message's fate is a
pure function of ``(seed, global round index, sender, target, occurrence)``
where the occurrence index counts the round's earlier messages between the
same (sender, target) pair.  That function is evaluated with the same
splitmix64 construction by the scalar per-message plane (Python integers)
and the vectorized plane (``uint64`` arrays), so the two planes drop exactly
the same messages and stay bit-identical under faults -- the same contract
the fault-free planes already pin (tests/test_faults.py).

Dropped messages still consume the sender's bandwidth (they were sent; the
send cap and the per-round message/bit totals count them) but are never
delivered: they are excluded from inboxes, receive maxima, cumulative
receive totals and cut crossings, and are tallied in
:attr:`~repro.hybrid.metrics.RoundMetrics.global_dropped`.  Recovery is the
*protocols'* job: see :meth:`HybridNetwork.run_reliable_exchange` and
DESIGN.md §8.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

try:  # The vectorized fault plane needs numpy; the scalar plane never does.
    import numpy as _np

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only in stripped environments
    _np = None
    _HAS_NUMPY = False

_MASK64 = (1 << 64) - 1
#: splitmix64 constants (Steele et al.); the golden-ratio increment separates
#: the hash lanes, the two multipliers are the finalizer's avalanche steps.
_PHI = 0x9E3779B97F4A7C15
_MULT1 = 0xBF58476D1CE4E5B9
_MULT2 = 0x94D049BB133111EB

#: Domain-separation tags so per-message and per-round decisions never share
#: a hash stream.
MESSAGE_LANE = 1
BURST_LANE = 2


def _mix64(value: int) -> int:
    """The splitmix64 finalizer on one Python integer (mod 2^64)."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * _MULT1) & _MASK64
    value = ((value ^ (value >> 27)) * _MULT2) & _MASK64
    return value ^ (value >> 31)


def fault_hash(seed: int, *lanes: int) -> int:
    """A 64-bit hash of ``(seed, lanes...)``; uniform over ``[0, 2^64)``.

    The scalar reference evaluation.  :func:`fault_hash_array` computes the
    same function column-wise; tests pin that the two agree bit for bit.
    """
    state = _mix64((seed & _MASK64) ^ _PHI)
    for lane in lanes:
        state = _mix64(state ^ ((lane * _PHI) & _MASK64))
    return state


def fault_hash_from_prefix(prefix: int, *lanes: int) -> int:
    """Fold further lanes into an already-computed :func:`fault_hash` prefix.

    ``fault_hash_from_prefix(fault_hash(s, a, b), c) == fault_hash(s, a, b, c)``
    by construction -- the hash is a left fold, so the shared lanes (seed,
    domain tag, round index) can be mixed once per round and only the
    per-message lanes folded per message.
    """
    state = prefix & _MASK64
    for lane in lanes:
        state = _mix64(state ^ ((lane * _PHI) & _MASK64))
    return state


def _mix64_array(values):
    """The splitmix64 finalizer on a ``uint64`` array (wrapping arithmetic)."""
    values = values ^ (values >> _np.uint64(30))
    values = values * _np.uint64(_MULT1)
    values = values ^ (values >> _np.uint64(27))
    values = values * _np.uint64(_MULT2)
    return values ^ (values >> _np.uint64(31))


def fault_hash_array(prefix: int, *columns):
    """Fold integer columns into a prefix hash, column-wise.

    ``prefix`` is the scalar :func:`fault_hash` of the shared lanes (seed,
    domain tag, round index); each column is folded with exactly the
    arithmetic of the scalar loop, so
    ``fault_hash_array(fault_hash(s, a), xs)[i] == fault_hash(s, a, xs[i])``.
    """
    state = _np.full(columns[0].shape, prefix, dtype=_np.uint64)
    for column in columns:
        state = _mix64_array(state ^ (column.astype(_np.uint64) * _np.uint64(_PHI)))
    return state


#: Sentinel distinguishing "not yet resolved" from "resolved to None".
_COMPILED_UNRESOLVED = object()
_compiled_hash_columns = _COMPILED_UNRESOLVED


def _compiled_hasher():
    """The njit column hasher from :mod:`repro.hybrid.compiled`, if importable.

    Resolved lazily (that module imports this one's constants) and memoized;
    ``None`` means no compiled kernel, i.e. keep :func:`fault_hash_array`.
    """
    global _compiled_hash_columns
    # repro-lint: waive[RL006] -- idempotent import memo; every process resolves the same callable
    if _compiled_hash_columns is _COMPILED_UNRESOLVED:
        try:
            from repro.hybrid.compiled import fault_hash_columns

            # repro-lint: waive[RL006] -- idempotent import memo; same resolution in every process
            _compiled_hash_columns = fault_hash_columns
        except ImportError:  # pragma: no cover - defensive; the module always imports
            # repro-lint: waive[RL006] -- idempotent import memo; same resolution in every process
            _compiled_hash_columns = None
    # repro-lint: waive[RL006] -- idempotent import memo; every process reads the same resolution
    return _compiled_hash_columns


def _drop_threshold(rate: float) -> int:
    """The integer threshold a 64-bit hash is compared against for ``rate``."""
    if rate <= 0.0:
        return 0
    if rate >= 1.0:
        return 1 << 64
    return int(rate * float(1 << 64))


def _normalize_pairs(value) -> tuple[tuple[int, int], ...]:
    """Coerce a mapping or iterable of pairs to a sorted tuple of int pairs."""
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = value
    return tuple(sorted((int(a), int(b)) for a, b in items))


@dataclass(frozen=True)
class FaultModel:
    """A seeded description of how an unreliable HYBRID network misbehaves.

    Attach it to :attr:`~repro.hybrid.config.ModelConfig.faults` (or pass it
    as :class:`~repro.session.HybridSession`'s ``fault_model=``).  The
    default-constructed model injects nothing: a network configured with
    ``FaultModel()`` is bit-identical to one configured with ``faults=None``
    (the engine checks :attr:`enabled` once and takes the ideal path).
    Semantics, retransmission layer and the fault-free-identity contract:
    DESIGN.md §8.

    Attributes
    ----------
    drop_rate:
        Per-message i.i.d. loss probability on the global plane.
    burst_rate / burst_length / burst_drop_rate:
        Per-round probability that a loss burst starts, how many global
        rounds a burst lasts, and the drop probability while one is active
        (it replaces ``drop_rate`` for those rounds).
    crash_schedule:
        ``node -> global round index`` (mapping or iterable of pairs): from
        that round on the node's sends and receives are all lost.
    omission_schedule:
        ``global round index -> nodes`` silenced for exactly that round
        (mapping or iterable of ``(round, nodes)`` pairs).
    edge_outages:
        Local edges (as ``(u, v)`` pairs, order-insensitive) that are down
        for the whole run; the LOCAL mode -- balls, hop-limited exploration,
        the diameter cap -- computes on the graph minus these edges.
    max_attempts:
        Retransmission budget of one :meth:`HybridNetwork.run_reliable_exchange`
        call (send + ACK counts as one attempt).  Retrying ``Θ(log n)`` times
        amplifies a constant per-attempt success probability to w.h.p.,
        matching the paper's analysis style; when the budget is exhausted
        with messages still undelivered the engine raises
        :class:`~repro.hybrid.errors.FaultToleranceExceededError` instead of
        silently returning a partial result.
    seed:
        Root seed of every fault decision (independent of the protocol RNG).
    """

    drop_rate: float = 0.0
    burst_rate: float = 0.0
    burst_length: int = 0
    burst_drop_rate: float = 1.0
    crash_schedule: Mapping[int, int] | Iterable[tuple[int, int]] = ()
    omission_schedule: Mapping[int, Iterable[int]] | Iterable[tuple[int, Iterable[int]]] = ()
    edge_outages: Iterable[tuple[int, int]] = ()
    max_attempts: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "burst_rate", "burst_drop_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.burst_length < 0:
            raise ValueError("burst_length must be non-negative")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        # Duplicate keys in the pair forms merge rather than overwrite: a node
        # crashes at its *earliest* scheduled round, and a round's omission
        # set is the union of every pair naming it.
        crashes: dict[int, int] = {}
        for node, crash_round in _normalize_pairs(self.crash_schedule):
            if node not in crashes or crash_round < crashes[node]:
                crashes[node] = crash_round
        object.__setattr__(self, "crash_schedule", tuple(sorted(crashes.items())))
        omissions = self.omission_schedule
        if isinstance(omissions, Mapping):
            omission_items = omissions.items()
        else:
            omission_items = omissions
        merged: dict[int, set] = {}
        for round_index, nodes in omission_items:
            merged.setdefault(int(round_index), set()).update(int(node) for node in nodes)
        object.__setattr__(
            self,
            "omission_schedule",
            tuple(
                (round_index, tuple(sorted(nodes)))
                for round_index, nodes in sorted(merged.items())
            ),
        )
        object.__setattr__(
            self,
            "edge_outages",
            tuple(
                sorted(
                    (min(int(u), int(v)), max(int(u), int(v))) for u, v in self.edge_outages
                )
            ),
        )

    @property
    def affects_global(self) -> bool:
        """Whether any global-plane fault can ever fire."""
        return bool(
            self.drop_rate > 0.0
            or (self.burst_rate > 0.0 and self.burst_length > 0 and self.burst_drop_rate > 0.0)
            or self.crash_schedule
            or any(nodes for _, nodes in self.omission_schedule)
        )

    @property
    def enabled(self) -> bool:
        """Whether the model injects any fault at all (global or local)."""
        return self.affects_global or bool(self.edge_outages)


class FaultState:
    """Per-network runtime of one :class:`FaultModel`: the global-round clock
    plus the (scalar and vectorized) per-message drop decisions.

    The clock counts *every* executed global round of the network, so a
    message's fate is stable across metric scopes and resets are explicit
    (:meth:`HybridNetwork.reset_metrics` re-creates the state, replaying the
    same fault schedule for e.g. benchmark repetitions).
    """

    def __init__(self, model: FaultModel) -> None:
        self.model = model
        self.round_index = 0
        self._crash_rounds: dict[int, int] = dict(model.crash_schedule)
        self._omissions: dict[int, frozenset[int]] = {
            round_index: frozenset(nodes) for round_index, nodes in model.omission_schedule
        }
        self._iid_threshold = _drop_threshold(model.drop_rate)
        self._burst_threshold = _drop_threshold(model.burst_drop_rate)
        self._burst_start_threshold = _drop_threshold(model.burst_rate)
        # Memoized per-round context (see round_context): one entry suffices
        # because both planes consume a round's decisions before the clock
        # advances.
        self._context_round = -1
        self._context: tuple[int, frozenset[int], int] = (0, frozenset(), 0)

    def next_round(self) -> int:
        """Advance the global-round clock; returns the round just started."""
        index = self.round_index
        self.round_index += 1
        return index

    # ----------------------------------------------------------- round status
    def in_burst(self, round_index: int) -> bool:
        """Whether a loss burst covers this global round."""
        model = self.model
        if self._burst_start_threshold <= 0 or model.burst_length <= 0:
            return False
        earliest = max(0, round_index - model.burst_length + 1)
        return any(
            fault_hash(model.seed, BURST_LANE, start) < self._burst_start_threshold
            for start in range(earliest, round_index + 1)
        )

    def drop_threshold(self, round_index: int) -> int:
        """The message-hash drop threshold in effect this round."""
        if self.in_burst(round_index):
            return self._burst_threshold
        return self._iid_threshold

    def faulty_nodes(self, round_index: int) -> frozenset[int]:
        """Nodes that neither send nor receive in this global round."""
        crashed = {
            node for node, crash_round in self._crash_rounds.items() if round_index >= crash_round
        }
        omitted = self._omissions.get(round_index)
        if omitted:
            crashed |= omitted
        return frozenset(crashed)

    def round_context(self, round_index: int) -> tuple[int, frozenset[int], int]:
        """``(drop threshold, faulty node set, message-hash prefix)`` for a round.

        All three are pure functions of the round index, so they are computed
        once per global round and memoized rather than re-derived per message
        (the burst check alone re-hashes ``burst_length`` lanes): the scalar
        plane folds per-message lanes onto the returned prefix via
        :func:`fault_hash_from_prefix`, the vectorized/compiled planes via
        :func:`fault_hash_array` or its njit port.
        """
        if round_index != self._context_round:
            self._context = (
                self.drop_threshold(round_index),
                self.faulty_nodes(round_index),
                fault_hash(self.model.seed, MESSAGE_LANE, round_index),
            )
            self._context_round = round_index
        return self._context

    # ------------------------------------------------------- per-message fate
    def drops(
        self,
        round_index: int,
        sender: int,
        target: int,
        occurrence: int,
        threshold: int,
        faulty: frozenset[int],
    ) -> bool:
        """The scalar plane's drop decision for one message."""
        if faulty and (sender in faulty or target in faulty):
            return True
        if threshold <= 0:
            return False
        # Fold only the per-message lanes onto the round's memoized prefix;
        # identical to hashing the full (seed, lane, round, ...) chain.
        prefix = self.round_context(round_index)[2]
        coin = fault_hash_from_prefix(prefix, sender, target, occurrence)
        return coin < threshold

    def keep_mask(self, senders, targets, round_index: int, n: int):
        """The vectorized plane's keep mask for one round (None = keep all).

        ``senders`` / ``targets`` are the round's messages in delivery scan
        order; the occurrence index (rank among the round's earlier messages
        of the same (sender, target) pair) is recovered with a stable sort,
        so the mask equals the scalar plane's per-message decisions exactly.
        """
        count = int(senders.size)
        if count == 0:
            return None
        threshold, faulty, prefix = self.round_context(round_index)
        drop = None
        if threshold >= (1 << 64):
            drop = _np.ones(count, dtype=bool)
        elif threshold > 0:
            keys = senders.astype(_np.int64) * _np.int64(n) + targets.astype(_np.int64)
            order = _np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            change = _np.empty(count, dtype=bool)
            change[0] = True
            _np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=change[1:])
            positions = _np.arange(count)
            starts = _np.maximum.accumulate(_np.where(change, positions, 0))
            occurrences = _np.empty(count, dtype=_np.int64)
            occurrences[order] = positions - starts
            hasher = _compiled_hasher()
            if hasher is not None:
                hashes = hasher(prefix, senders, targets, occurrences)
            else:
                hashes = fault_hash_array(prefix, senders, targets, occurrences)
            drop = hashes < _np.uint64(threshold)
        if faulty:
            faulty_column = _np.fromiter(faulty, dtype=_np.int64, count=len(faulty))
            node_fault = _np.isin(senders, faulty_column) | _np.isin(targets, faulty_column)
            drop = node_fault if drop is None else (drop | node_fault)
        if drop is None or not drop.any():
            return None
        return ~drop
