"""Compiled message-plane kernels: njit admission scan and fault hashing.

The vectorized NCC plane (DESIGN.md §4) replaced the scalar per-message scan
with whole-array numpy operations, but its two remaining hot spots are still
interpreter-shaped:

* the admission recurrence of :func:`repro.hybrid.network._admit_scan` is
  solved by Jacobi iteration -- several full-array prefix-sum sweeps where a
  compiled loop needs exactly one pass over the scan order; and
* :func:`repro.hybrid.faults.fault_hash_array` evaluates splitmix64 as a
  chain of whole-array uint64 ops, allocating several temporaries per column.

When numba is importable this module compiles both to single-pass
``@njit(cache=True)`` loops; without numba every entry point is ``None`` and
the callers keep their numpy implementations -- the same per-kernel
degradation contract as :mod:`repro.graphs.compiled`.  Both kernels are exact
ports of the scalar reference semantics (the admission scan *is* the scalar
scheduler's loop; the hash is the same wrapping uint64 arithmetic), so the
compiled plane stays bit-identical to the scalar oracle, which
tests/test_compiled_plane.py pins.

``ModelConfig.global_plane = "compiled"`` selects this plane; ``"auto"``
prefers it when numba is importable.
"""

from __future__ import annotations

import numpy as np

from repro.hybrid.faults import _MASK64, _MULT1, _MULT2, _PHI

try:  # Optional accelerator; None entry points mean "use the numpy plane".
    from numba import njit as _njit

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - numba is absent in the base container
    _njit = None
    HAS_NUMBA = False


if HAS_NUMBA:

    @_njit(cache=True)
    def _admit_scan_njit(senders, targets, scan_positions, send_cap, receive_cap, n):
        """One sequential pass of the scalar admission scan, compiled.

        Identical semantics to the reference scheduler: walking the messages
        in scan order, admit iff the sender has admitted fewer than
        ``send_cap`` and the target fewer than ``receive_cap`` so far;
        skipped messages consume no budget.  (The numpy plane reaches the
        same fixpoint by Jacobi iteration on prefix sums.)
        """  # pragma: no cover - exercised only when numba is installed
        length = senders.shape[0]
        order = np.argsort(scan_positions)
        sent = np.zeros(n, dtype=np.int64)
        received = np.zeros(n, dtype=np.int64)
        admitted = np.zeros(length, dtype=np.bool_)
        for k in range(length):
            i = order[k]
            s = senders[i]
            t = targets[i]
            if sent[s] < send_cap and received[t] < receive_cap:
                admitted[i] = True
                sent[s] += 1
                received[t] += 1
        return admitted

    @_njit(cache=True)
    def _fault_hash_njit(prefix, senders, targets, occurrences):
        """splitmix64 fold of three lane columns from a shared prefix.

        The same arithmetic as the scalar loop in
        :func:`repro.hybrid.faults.fault_hash`, elementwise on uint64.
        """  # pragma: no cover - exercised only when numba is installed
        length = senders.shape[0]
        out = np.empty(length, dtype=np.uint64)
        phi = np.uint64(_PHI)
        mult1 = np.uint64(_MULT1)
        mult2 = np.uint64(_MULT2)
        start = np.uint64(prefix)
        for i in range(length):
            state = start
            for lane in (np.uint64(senders[i]), np.uint64(targets[i]), np.uint64(occurrences[i])):
                state = state ^ (lane * phi)
                state = state ^ (state >> np.uint64(30))
                state = state * mult1
                state = state ^ (state >> np.uint64(27))
                state = state * mult2
                state = state ^ (state >> np.uint64(31))
            out[i] = state
        return out

    def admit_scan(senders, targets, scan_positions, send_cap: int, receive_cap: int, n: int):
        """Compiled admission decisions (see :func:`_admit_scan_njit`)."""
        return _admit_scan_njit(
            np.ascontiguousarray(senders, dtype=np.int64),
            np.ascontiguousarray(targets, dtype=np.int64),
            np.ascontiguousarray(scan_positions, dtype=np.int64),
            send_cap,
            receive_cap,
            n,
        )

    def fault_hash_columns(prefix: int, senders, targets, occurrences):
        """Compiled per-message splitmix64 hashes from a per-round prefix."""
        return _fault_hash_njit(
            prefix & _MASK64,
            np.ascontiguousarray(senders, dtype=np.int64),
            np.ascontiguousarray(targets, dtype=np.int64),
            np.ascontiguousarray(occurrences, dtype=np.int64),
        )

else:
    admit_scan = None
    fault_hash_columns = None
