"""The HYBRID model engine.

A :class:`HybridNetwork` wraps the local communication graph ``G`` and gives
protocol implementations exactly the two communication modes of the model:

* **Local mode (LOCAL).**  Per-edge bandwidth is unbounded, so the engine does
  not move local messages one by one.  Protocols call
  :meth:`HybridNetwork.charge_local_rounds` with the number of rounds their
  local phase takes (e.g. flooding to depth ``d`` costs ``d`` rounds) and then
  compute the phase's outcome directly from the graph restricted to the
  corresponding neighbourhoods.  This is semantically what the LOCAL model
  allows and keeps Python simulations tractable (see DESIGN.md §2).

* **Global mode (NCC).**  Each round every node may send at most
  ``ModelConfig.send_cap(n)`` messages of ``O(log n)`` bits to arbitrary node
  IDs; the engine enforces the send budget, counts every round and message,
  and records the per-round receive maxima that Lemma D.2 bounds.  Messages
  travel in one of two interchangeable forms: the scalar dict-of-tuples
  outboxes/inboxes, simulated message by message, or an array-backed
  :class:`~repro.hybrid.batch.MessageBatch`, scheduled and accounted with
  whole-array numpy operations (``ModelConfig.global_plane`` selects the
  plane; all planes produce identical :class:`RoundMetrics` by construction,
  see tests/test_message_plane.py).  The ``"compiled"`` plane is the
  vectorized plane with its admission scan and fault hashing swapped for the
  njit kernels of :mod:`repro.hybrid.compiled` when numba is importable
  (DESIGN.md §9).

All counters live in :class:`~repro.hybrid.metrics.RoundMetrics`; the sum of
local and global rounds is the quantity the paper's theorems are about.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.graphs.graph import WeightedGraph
from repro.hybrid import compiled as _compiled
from repro.hybrid.batch import MessageBatch
from repro.hybrid.config import ModelConfig
from repro.hybrid.errors import CapacityExceededError, FaultToleranceExceededError
from repro.hybrid.faults import FaultState
from repro.hybrid.metrics import RoundMetrics
from repro.util.rand import RandomSource

try:  # The vectorized message plane needs numpy; the scalar plane never does.
    import numpy as _np

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only in stripped environments
    _np = None
    _HAS_NUMPY = False

# A global outbox maps a sender to the list of (target, payload) messages it
# wants to send; an inbox maps a receiver to the list of (sender, payload)
# messages it got.  MessageBatch is the array-backed equivalent of either.
Outboxes = dict[int, list[tuple[int, object]]]
Inboxes = dict[int, list[tuple[int, object]]]
GlobalMessages = Mapping[int, Sequence[tuple[int, object]]] | MessageBatch


def _group_starts(keys):
    """For a key array whose equal keys are contiguous: index of each run's start."""
    length = keys.size
    change = _np.empty(length, dtype=bool)
    change[0] = True
    _np.not_equal(keys[1:], keys[:-1], out=change[1:])
    return _np.maximum.accumulate(_np.where(change, _np.arange(length), 0))


def _admit_scan(senders, targets, scan_positions, send_cap: int, receive_cap: int):
    """Which messages the scalar admission scan would admit this round.

    The arrays are in canonical order -- sorted by (sender, queue position),
    each sender's messages contiguous -- and ``scan_positions`` gives each
    message's rank in the round's rotated scan order (the rotation moves
    whole sender runs, so within a sender canonical order *is* scan order).
    The scalar scheduler admits a message iff, among messages scanned before
    it, fewer than ``send_cap`` of the same sender and fewer than
    ``receive_cap`` to the same target were admitted (skipped messages
    consume no budget).  That recurrence is solved by Jacobi iteration on
    whole-array prefix sums: re-evaluating every message against the
    previous iterate's admission vector fixes the decisions of the first
    ``k`` scan positions after ``k`` sweeps (each decision depends only on
    earlier positions), so the loop converges to the unique fixpoint -- the
    exact scalar outcome -- and in practice stops after two or three sweeps.
    """
    length = senders.size
    positions = _np.arange(length)
    sender_starts = _group_starts(senders)
    # One argsort orders the messages by (target, scan position); groupwise
    # exclusive prefix sums over it count each message's admitted
    # predecessors at the same target.
    target_order = _np.argsort(targets * _np.int64(length) + scan_positions)
    sorted_target_starts = _group_starts(targets[target_order])
    inverse = _np.empty(length, dtype=positions.dtype)
    inverse[target_order] = positions
    admitted = _np.ones(length, dtype=bool)
    for _ in range(length):
        exclusive = _np.cumsum(admitted) - admitted
        prior_sender = exclusive - exclusive[sender_starts]
        admitted_by_target = admitted[target_order]
        exclusive_target = _np.cumsum(admitted_by_target) - admitted_by_target
        prior_target = (exclusive_target - exclusive_target[sorted_target_starts])[inverse]
        refined = (prior_sender < send_cap) & (prior_target < receive_cap)
        if _np.array_equal(refined, admitted):
            break
        admitted = refined
    return admitted


class HybridNetwork:
    """One simulated HYBRID network: graph + global channel + accounting."""

    def __init__(self, graph: WeightedGraph, config: ModelConfig | None = None) -> None:
        self.graph = graph
        self.config = config or ModelConfig()
        self.n = graph.node_count
        self.metrics = RoundMetrics()
        # Shard-level accounting: the experiment engine observes every network
        # born inside one shard through an ambient scope (no-op otherwise).
        self.metrics.attach_ambient_observers()
        self.rng = RandomSource(self.config.rng_seed)
        self.send_cap = self.config.send_cap(self.n)
        self.receive_cap = self.config.receive_cap(self.n)
        self._states: list[dict[str, object]] = [dict() for _ in range(self.n)]
        # (name, node_set, membership mask or None) per registered cut.
        self._cut_watchers: list[tuple[str, set[int], object]] = []
        plane = self.config.global_plane
        if plane not in ("auto", "scalar", "vectorized", "compiled"):
            raise ValueError(f"unknown global_plane {plane!r}")
        if plane in ("vectorized", "compiled") and not _HAS_NUMPY:
            raise ValueError(f"global_plane={plane!r} requires numpy")
        self.vectorized_plane = plane in ("vectorized", "compiled") or (
            plane == "auto" and _HAS_NUMPY
        )
        # The compiled plane is the vectorized plane with its admission scan
        # and fault hashing swapped for the njit kernels of
        # repro.hybrid.compiled.  "compiled" opts in even without numba
        # (degrading per kernel to the numpy implementations -- same results,
        # see DESIGN.md §9); "auto" takes it only when numba is importable.
        self.compiled_plane = self.vectorized_plane and (
            plane == "compiled" or (plane == "auto" and _compiled.HAS_NUMBA)
        )
        # Cumulative global messages received per node over the whole run;
        # the busiest node's total is the bandwidth bottleneck the paper's
        # trade-offs are about.
        if _HAS_NUMPY:
            self.received_totals = _np.zeros(self.n, dtype=_np.int64)
        else:
            self.received_totals = [0] * self.n
        # Per-round receive counters for the scalar plane, kept allocated
        # across rounds: only the entries touched in a round are read and
        # re-zeroed, so accounting cost scales with the round's traffic
        # rather than with n.
        self._receive_counts: list[int] = [0] * self.n
        # Fault injection (DESIGN.md §8).  A disabled/absent FaultModel keeps
        # every engine path on the ideal branch -- `_fault_state is None` is
        # the single check the hot loops make.
        faults = self.config.faults
        self.faults = faults if faults is not None and faults.enabled else None
        self._fault_state = (
            FaultState(self.faults)
            if self.faults is not None and self.faults.affects_global
            else None
        )
        self._outage_graph: WeightedGraph | None = None
        self._outage_version: int | None = None

    # ------------------------------------------------------------------ state
    def state(self, node: int) -> dict[str, object]:
        """The mutable per-node knowledge dictionary of ``node``.

        Protocols must only read/write the state of the node they are
        currently acting as; tests rely on this discipline to check locality.
        """
        return self._states[node]

    def states(self) -> list[dict[str, object]]:
        """All node states (index = node ID)."""
        return self._states

    def clear_states(self) -> None:
        """Drop all per-node knowledge (keeps the metrics)."""
        # repro-lint: waive[RL008] -- protocol state, not graph-derived; the outage cache keys on graph.version
        self._states = [dict() for _ in range(self.n)]

    def reset_metrics(self) -> None:
        """Zero all counters (e.g. between benchmark repetitions).

        An active fault schedule restarts with the counters: the fault clock
        is part of the run being measured, so every repetition replays the
        same seeded drops.
        """
        # repro-lint: waive[RL008] -- accounting reset by design; no graph-derived cache reads metrics
        self.metrics = RoundMetrics()
        self.metrics.attach_ambient_observers()
        if self._fault_state is not None:
            # repro-lint: waive[RL008] -- fault clock restart, documented above; independent of the outage cache
            self._fault_state = FaultState(self.faults)

    def fork_rng(self, label: str) -> RandomSource:
        """A child random source for one protocol phase (reproducible per label)."""
        # repro-lint: waive[RL005] -- the blessed forwarding wrapper; RL005 audits its call sites
        return self.rng.fork(label)

    # ------------------------------------------------------------- local mode
    @property
    def local_graph(self) -> WeightedGraph:
        """The graph the LOCAL mode computes on.

        Identical to :attr:`graph` unless the fault model declares local-edge
        outages, in which case it is the graph minus the outage edges
        (rebuilt lazily when the underlying graph mutates).  The global plane
        is unaffected -- NCC messages travel point to point by node ID.
        """
        if self.faults is None or not self.faults.edge_outages:
            return self.graph
        if self._outage_graph is None or self._outage_version != self.graph.version:
            survivor = WeightedGraph(self.n, backend=self.graph.backend)
            outages = set(self.faults.edge_outages)
            for u, v, weight in self.graph.edges():
                if (min(u, v), max(u, v)) not in outages:
                    survivor.add_edge(u, v, weight)
            self._outage_graph = survivor
            self._outage_version = self.graph.version
        return self._outage_graph

    def hop_diameter(self) -> int:
        """The hop diameter ``D(G)``, with infinity clamped to ``n``.

        Delegates to the graph's own mutation-invalidated cache, so a session
        that mutates the graph between queries never charges local rounds
        against a stale diameter cap.  Under local-edge outages the diameter
        of the surviving graph applies (a disconnected survivor clamps to
        ``n``): the paper's ``min(D, ·)`` shortcut only holds for edges that
        actually carry messages.
        """
        diameter = self.local_graph.hop_diameter()
        return self.n if diameter == float("inf") else int(diameter)

    def charge_local_rounds(self, rounds: int, phase: str = "local") -> None:
        """Account for a local-mode phase of the given length.

        The caller is responsible for only using information that ``rounds``
        rounds of flooding could have delivered (i.e. the ``rounds``-hop
        neighbourhood of each node); see the module docstring.

        When ``cap_local_at_diameter`` is enabled (the default), the charge is
        capped at ``D(G)``: after ``D`` rounds of the unbounded local mode
        every node knows the entire graph state at the start of the phase, so
        no local phase ever needs more (the paper's "min(D, ·)" remark).
        """
        if self.config.cap_local_at_diameter:
            rounds = min(rounds, self.hop_diameter())
        self.metrics.charge_local(rounds, phase)

    # ------------------------------------------------------------ global mode
    def add_cut_watcher(self, name: str, node_set: Iterable[int]) -> None:
        """Track global bits crossing between ``node_set`` and its complement.

        Used by the lower-bound experiments (Section 7): the Alice/Bob
        simulation argument only charges for information crossing the cut via
        the global network.
        """
        members = set(node_set)
        mask = None
        if _HAS_NUMPY:
            mask = _np.zeros(self.n, dtype=bool)
            for node in sorted(members):
                mask[node] = True
        self._cut_watchers.append((name, members, mask))

    def global_round(self, outboxes: GlobalMessages, phase: str = "global"):
        """Execute exactly one round of the global (NCC) mode.

        Parameters
        ----------
        outboxes:
            Either dict-form outboxes -- for each sending node, the list of
            ``(target, payload)`` messages it sends this round -- or a
            :class:`MessageBatch` holding the same messages as parallel
            sender/target/payload columns.  With ``strict_send`` (default) a
            node exceeding the send budget raises
            :class:`~repro.hybrid.errors.CapacityExceededError` -- a correct
            protocol never does.
        phase:
            Name under which the round is accounted.

        Returns
        -------
        dict or MessageBatch
            Dict-form outboxes yield ``receiver -> [(sender, payload), ...]``
            inboxes; a :class:`MessageBatch` yields the delivered messages as
            a :class:`MessageBatch` (accounting done with whole-array
            operations when the vectorized plane is active).  Both planes
            record identical metrics for the same messages.  With an active
            :class:`~repro.hybrid.faults.FaultModel`, messages it drops are
            excluded from the returned inboxes (both planes drop the same
            messages) and tallied in ``metrics.global_dropped``.
        """
        # No traffic means no use of the global mode: an empty round charges
        # zero global rounds on either plane and in either input form
        # (regression tests in tests/test_message_plane.py, next to the n=1
        # cases), and leaves the fault clock untouched.
        if isinstance(outboxes, MessageBatch):
            if len(outboxes) == 0:
                return MessageBatch.empty()
            if self.vectorized_plane:
                keep = self._account_batched_round(outboxes.senders, outboxes.targets, phase)
                if keep is None:
                    return outboxes
                payloads = outboxes.payloads
                return MessageBatch(
                    outboxes.senders[keep],
                    outboxes.targets[keep],
                    [payloads[i] for i in _np.flatnonzero(keep).tolist()],
                )
            return MessageBatch.from_inboxes(
                self._global_round_scalar(outboxes.to_outboxes(), phase)
            )
        if not any(outboxes.values()):
            return {}
        return self._global_round_scalar(outboxes, phase)

    def _global_round_scalar(
        self, outboxes: Mapping[int, Sequence[tuple[int, object]]], phase: str
    ) -> Inboxes:
        """One global round, simulated message by message (the scalar plane)."""
        inboxes: Inboxes = {}
        total_messages = 0
        max_sent = 0
        dropped = 0
        watchers = self._cut_watchers
        cut_crossings = {name: 0 for name, _, _ in watchers}
        fault_state = self._fault_state
        if fault_state is not None:
            fault_round = fault_state.next_round()
            # Threshold, faulty set and hash prefix are memoized per round
            # (FaultState.round_context); drops() folds per-message lanes
            # onto the same prefix.
            drop_threshold, faulty_nodes, _ = fault_state.round_context(fault_round)
            occurrences: dict[tuple[int, int], int] = {}
        # Accounting is batched: receive counts accumulate in a reusable
        # per-node counter array and are folded into the totals/maximum once
        # per touched receiver, instead of dict lookups per message.  The
        # per-message loop only builds inboxes (and, when cut watchers are
        # installed, classifies crossings); semantics -- message order, round,
        # message and cut-bit counts, strict_send/strict_receive errors -- are
        # identical to the per-message accounting it replaces.
        receive_counts = self._receive_counts
        touched: list[int] = []
        n = self.n

        try:
            for sender, messages in outboxes.items():
                if not 0 <= sender < n:
                    raise ValueError(f"sender {sender} outside the network")
                count = len(messages)
                if count == 0:
                    continue
                if count > self.send_cap and self.config.strict_send:
                    raise CapacityExceededError(
                        f"node {sender} tried to send {count} global messages in one "
                        f"round (cap {self.send_cap})"
                    )
                if count > max_sent:
                    max_sent = count
                total_messages += count
                for target, payload in messages:
                    if not 0 <= target < n:
                        raise ValueError(f"target {target} outside the network")
                    if fault_state is not None:
                        # The occurrence index makes the fate of the k-th
                        # message between a (sender, target) pair this round a
                        # stable per-message coin, independent of iteration
                        # order -- the vectorized plane recovers the same
                        # index with a stable sort (FaultState.keep_mask).
                        pair = (sender, target)
                        occurrence = occurrences.get(pair, 0)
                        occurrences[pair] = occurrence + 1
                        if fault_state.drops(
                            fault_round, sender, target, occurrence, drop_threshold, faulty_nodes
                        ):
                            dropped += 1
                            continue
                    bucket = inboxes.get(target)
                    if bucket is None:
                        bucket = inboxes[target] = []
                    bucket.append((sender, payload))
                    if receive_counts[target] == 0:
                        touched.append(target)
                    receive_counts[target] += 1
                    if watchers:
                        for name, node_set, _ in watchers:
                            if (sender in node_set) != (target in node_set):
                                cut_crossings[name] += 1
        except Exception:
            for target in touched:
                receive_counts[target] = 0
            raise

        max_received = 0
        received_totals = self.received_totals
        for target in touched:
            count = receive_counts[target]
            received_totals[target] += count
            if count > max_received:
                max_received = count
            receive_counts[target] = 0
        if max_received > self.receive_cap and self.config.strict_receive:
            raise CapacityExceededError(
                f"a node received {max_received} global messages in one round "
                f"(cap {self.receive_cap})"
            )
        self.metrics.charge_global(1, phase)
        self.metrics.record_global_traffic(
            messages=total_messages,
            bits=total_messages * self.config.message_bits,
            max_sent=max_sent,
            max_received=max_received,
            receive_cap=self.receive_cap,
        )
        if dropped:
            self.metrics.record_fault_losses(dropped=dropped)
        for name, crossings in cut_crossings.items():
            if crossings:
                self.metrics.record_cut_bits(name, crossings * self.config.message_bits)
        return inboxes

    def _account_batched_round(self, senders, targets, phase: str):
        """Validate and account one global round given as sender/target arrays.

        Whole-array replacement for the scalar round bookkeeping: per-sender
        counts for the send-cap check, ``np.bincount`` receive accounting, and
        mask comparisons for cut crossings.  Produces exactly the values the
        scalar plane records for the same messages.

        Returns the boolean keep mask of the messages the fault model let
        through, or ``None`` when every message was delivered (in particular
        always ``None`` on the ideal fault-free path).  Sends -- message and
        bit totals, the send-cap check -- count all attempted messages;
        receives (inboxes, maxima, cumulative totals, cut crossings) only the
        delivered ones, matching the scalar plane.
        """
        n = self.n
        count = int(senders.size)
        max_sent = 0
        max_received = 0
        keep = None
        dropped = 0
        # The fault clock ticks once per round, before any validation, exactly
        # like the scalar plane's tick at function entry.
        fault_round = self._fault_state.next_round() if self._fault_state is not None else None
        if count:
            if int(senders.min()) < 0 or int(senders.max()) >= n:
                bad = senders[(senders < 0) | (senders >= n)][0]
                raise ValueError(f"sender {int(bad)} outside the network")
            if int(targets.min()) < 0 or int(targets.max()) >= n:
                bad = targets[(targets < 0) | (targets >= n)][0]
                raise ValueError(f"target {int(bad)} outside the network")
            sent_counts = _np.bincount(senders, minlength=n)
            max_sent = int(sent_counts.max())
            if max_sent > self.send_cap and self.config.strict_send:
                offender = int(sent_counts.argmax())
                raise CapacityExceededError(
                    f"node {offender} tried to send {max_sent} global messages in one "
                    f"round (cap {self.send_cap})"
                )
            delivered_targets = targets
            delivered_senders = senders
            if fault_round is not None:
                keep = self._fault_state.keep_mask(senders, targets, fault_round, n)
                if keep is not None:
                    delivered_senders = senders[keep]
                    delivered_targets = targets[keep]
                    dropped = count - int(delivered_targets.size)
            if delivered_targets.size:
                receive_counts = _np.bincount(delivered_targets, minlength=n)
                max_received = int(receive_counts.max())
                if max_received > self.receive_cap and self.config.strict_receive:
                    raise CapacityExceededError(
                        f"a node received {max_received} global messages in one round "
                        f"(cap {self.receive_cap})"
                    )
                # repro-lint: waive[RL008] -- monotone traffic counter, never derived from the graph
                self.received_totals += receive_counts
        self.metrics.charge_global(1, phase)
        self.metrics.record_global_traffic(
            messages=count,
            bits=count * self.config.message_bits,
            max_sent=max_sent,
            max_received=max_received,
            receive_cap=self.receive_cap,
        )
        if dropped:
            self.metrics.record_fault_losses(dropped=dropped)
        if count and delivered_targets.size:
            for name, _, mask in self._cut_watchers:
                crossings = int(
                    _np.count_nonzero(mask[delivered_senders] != mask[delivered_targets])
                )
                if crossings:
                    self.metrics.record_cut_bits(name, crossings * self.config.message_bits)
        return keep

    def run_global_exchange(
        self,
        outboxes: GlobalMessages,
        phase: str = "global",
        receiver_limited: bool = True,
    ):
        """Deliver an arbitrary-size batch of global messages over several rounds.

        Each node sends its queued messages at most ``send_cap`` per round and,
        when ``receiver_limited`` (the default), each node also receives at
        most ``receive_cap`` messages per round -- excess messages simply wait
        in their sender's queue for a later round.  This models the NCC-mode
        bandwidth constraint on both endpoints and is the workhorse behind
        "send each of your tokens, Θ(log n) tokens at a time" style loops in
        the paper's pseudo-code.

        Senders are served in round-robin order: the ID-sorted sender list is
        rotated by one position each round, so a contested receive budget is
        shared fairly.  (A fixed ``sorted(queues)`` order would hand low-ID
        senders the whole budget every round and starve high-ID senders
        behind a saturated receiver; see the regression test in
        tests/test_hybrid_engine.py.)  Every round makes progress: the receive
        budget is rebuilt per round, so the first message scanned is always
        admissible -- the schedulers assert this invariant rather than
        charging idle rounds.

        Dict-form outboxes are drained by the scalar per-message scheduler
        and yield dict-form inboxes; a :class:`MessageBatch` is scheduled by
        the vectorized plane (whole-array budget accounting, identical
        admission decisions and metrics) and yields a :class:`MessageBatch`.
        Returns the accumulated inboxes and the number of global rounds used.
        """
        if isinstance(outboxes, MessageBatch):
            if self.vectorized_plane:
                return self._run_exchange_batched(outboxes, phase, receiver_limited)
            inboxes, rounds = self._run_exchange_scalar(
                outboxes.to_outboxes(), phase, receiver_limited
            )
            return MessageBatch.from_inboxes(inboxes), rounds
        return self._run_exchange_scalar(outboxes, phase, receiver_limited)

    def _run_exchange_scalar(
        self,
        outboxes: Mapping[int, Sequence[tuple[int, object]]],
        phase: str,
        receiver_limited: bool,
    ) -> tuple[Inboxes, int]:
        """The per-message reference scheduler (see run_global_exchange)."""
        queues: dict[int, list[tuple[int, object]]] = {
            sender: list(messages) for sender, messages in outboxes.items() if messages
        }
        inboxes: Inboxes = {}
        rounds = 0
        while queues:
            round_out: Outboxes = {}
            receive_budget: dict[int, int] = {}
            empty_senders = []
            order = sorted(queues)
            offset = rounds % len(order)
            for sender in order[offset:] + order[:offset]:
                queue = queues[sender]
                if not receiver_limited:
                    batch = queue[: self.send_cap]
                    del queue[: self.send_cap]
                else:
                    batch = []
                    kept: list[tuple[int, object]] = []
                    send_budget = self.send_cap
                    for position, message in enumerate(queue):
                        if send_budget == 0:
                            # The sender's budget is spent; everything after
                            # this point waits wholesale (same order, same
                            # outcome as inspecting each message).
                            kept.extend(queue[position:])
                            break
                        target = message[0]
                        target_budget = receive_budget.get(target, self.receive_cap)
                        if target_budget > 0:
                            batch.append(message)
                            send_budget -= 1
                            receive_budget[target] = target_budget - 1
                        else:
                            kept.append(message)
                    queue[:] = kept
                if batch:
                    round_out[sender] = batch
                if not queue:
                    empty_senders.append(sender)
            for sender in empty_senders:
                del queues[sender]
            # The receive budget is rebuilt each round, so the first message
            # of the first scheduled sender is always admitted; an empty
            # round would mean the scheduler lost messages.
            assert round_out, "global exchange scheduler made no progress"
            delivered = self._global_round_scalar(round_out, phase)
            rounds += 1
            for receiver, messages in delivered.items():
                inboxes.setdefault(receiver, []).extend(messages)
        return inboxes, rounds

    def _run_exchange_batched(
        self, batch: MessageBatch, phase: str, receiver_limited: bool
    ) -> tuple[MessageBatch, int]:
        """The whole-array scheduler: same admissions as the scalar plane.

        The pending messages are kept sorted by (sender, queue position) --
        sorted once up front and filtered in place afterwards, which
        preserves the order -- so each round's rotated scan order (senders
        rank ``offset`` and up, then the wrap-around) is a single
        array rotation at the offset sender's first message, and the active
        sender list falls out of the run boundaries.  The admissible batch is
        computed from send/receive budget arrays (:func:`_admit_scan`),
        accounted via ``np.bincount`` and removed; everything else waits.
        Payloads are only sliced once, at the end, by the accumulated
        delivery order.
        """
        if len(batch) == 0:
            return MessageBatch.empty(), 0
        order = _np.argsort(batch.senders, kind="stable")
        senders = batch.senders[order]
        targets = batch.targets[order]
        indices = order
        delivered_senders: list[object] = []
        delivered_targets: list[object] = []
        delivered_indices: list[object] = []
        send_cap = self.send_cap
        rounds = 0
        while senders.size:
            length = senders.size
            run_bounds = _np.empty(length, dtype=bool)
            run_bounds[0] = True
            _np.not_equal(senders[1:], senders[:-1], out=run_bounds[1:])
            run_starts = _np.flatnonzero(run_bounds)
            offset = rounds % run_starts.size
            split = int(run_starts[offset])
            positions = _np.arange(length)
            # The rotation moves the runs of senders ranked >= offset to the
            # front, which is an element-level rotation of the canonical
            # order at ``split`` -- expressed as a scan-rank array instead of
            # physically reordering the columns.
            scan_positions = positions - split
            scan_positions[scan_positions < 0] += length
            if receiver_limited:
                if self.compiled_plane and _compiled.admit_scan is not None:
                    admitted = _compiled.admit_scan(
                        senders, targets, scan_positions, send_cap, self.receive_cap, self.n
                    )
                else:
                    admitted = _admit_scan(
                        senders, targets, scan_positions, send_cap, self.receive_cap
                    )
            else:
                admitted = (positions - _group_starts(senders)) < send_cap
            # Progress invariant (mirrors the scalar scheduler's assertion).
            if not admitted.any():
                raise AssertionError("global exchange scheduler made no progress")
            admitted_at = _np.flatnonzero(admitted)
            # Deliveries are recorded in scan order (what the scalar plane's
            # per-round inbox building produces).
            in_round = admitted_at[_np.argsort(scan_positions[admitted_at])]
            keep = self._account_batched_round(senders[in_round], targets[in_round], phase)
            if keep is not None:
                # Fault-dropped messages consumed their sender's budget this
                # round but never arrived; they are simply not delivered (the
                # engine does not retry -- see run_reliable_exchange).
                in_round = in_round[keep]
            delivered_senders.append(senders[in_round])
            delivered_targets.append(targets[in_round])
            delivered_indices.append(indices[in_round])
            waiting = ~admitted
            senders = senders[waiting]
            targets = targets[waiting]
            indices = indices[waiting]
            rounds += 1
        payloads = batch.payloads
        delivery_order = _np.concatenate(delivered_indices)
        inbox = MessageBatch(
            _np.concatenate(delivered_senders),
            _np.concatenate(delivered_targets),
            [payloads[i] for i in delivery_order.tolist()],
        )
        return inbox, rounds

    def run_reliable_exchange(
        self,
        batch: MessageBatch,
        phase: str = "global",
        receiver_limited: bool = True,
    ) -> tuple[MessageBatch, int]:
        """Deliver *every* message of ``batch`` despite an unreliable network.

        Without active global faults this is exactly
        :meth:`run_global_exchange` -- same rounds, same phases, same metrics
        -- so loss-tolerant protocols cost nothing on the ideal model (the
        bit-identity tests pin this).  With faults, the exchange runs the
        acknowledged-retransmission scheme the paper's w.h.p. analyses
        license: after each delivery attempt every receiver returns one ACK
        per arrived message (ACKs cross the same lossy global plane), and
        senders re-send everything unacknowledged.  Each attempt succeeds
        per message with constant probability, so
        ``max_attempts = Θ(log n)`` amplifies delivery to w.h.p. -- the
        classic success-amplification argument.  Duplicates caused by lost
        ACKs are absorbed here (receivers deduplicate by message identity),
        so callers keep exactly-once semantics.

        Returns the delivered messages (in the order of ``batch``, which is
        what full delivery means) and the total global rounds consumed,
        ACK rounds included.  Raises
        :class:`~repro.hybrid.errors.FaultToleranceExceededError` if messages
        remain undelivered when the model's ``max_attempts`` budget runs out
        -- the injected faults beat the configured amplification, and a
        partial result must not masquerade as a correct one.
        """
        if self._fault_state is None:
            return self.run_global_exchange(batch, phase, receiver_limited)
        total = len(batch)
        if total == 0:
            return MessageBatch.empty(), 0
        senders = batch.senders
        targets = batch.targets
        payloads = batch.payloads
        pending = list(range(total))
        rounds = 0
        max_attempts = self.faults.max_attempts
        for attempt in range(max_attempts):
            if attempt:
                self.metrics.record_fault_losses(retried=len(pending))
            attempt_phase = phase if attempt == 0 else phase + ":retry"
            # Payloads ride with their original batch index so receivers can
            # acknowledge (and deduplicate) by message identity.
            sub_batch = MessageBatch(
                [int(senders[i]) for i in pending],
                [int(targets[i]) for i in pending],
                [(i, payloads[i]) for i in pending],
            )
            inbox, attempt_rounds = self.run_global_exchange(
                sub_batch, attempt_phase, receiver_limited
            )
            rounds += attempt_rounds
            arrived = [identity for identity, _ in inbox.payloads]
            acked: set = set()
            if arrived:
                # One ACK per arrival, back over the same faulty plane.
                ack_inbox, ack_rounds = self.run_global_exchange(
                    MessageBatch(inbox.targets, inbox.senders, arrived),
                    phase + ":ack",
                    receiver_limited,
                )
                rounds += ack_rounds
                acked = set(ack_inbox.payloads)
            if acked:
                pending = [i for i in pending if i not in acked]
            if not pending:
                break
        if pending:
            raise FaultToleranceExceededError(
                f"{len(pending)} of {total} messages undelivered after "
                f"{max_attempts} attempts in phase {phase!r}"
            )
        # Everything arrived (possibly more than once; duplicates are
        # dropped), so the delivered set is the original batch itself.
        return MessageBatch(senders, targets, list(payloads)), rounds

    # ------------------------------------------------------------- shortcuts
    def max_total_received(self) -> int:
        """Largest cumulative global receive count of any node over the run."""
        return int(max(self.received_totals)) if self.n else 0

    def local_ball(self, node: int, radius: int) -> list[int]:
        """The ``radius``-hop neighbourhood of ``node`` (no rounds charged).

        Computed on :attr:`local_graph`, so local-edge outages shrink the
        ball exactly as they would shrink real flooding.
        """
        return self.local_graph.ball(node, radius)

    def local_hop_limited_distances(self, node: int, hop_limit: int) -> dict[int, float]:
        """``d_h(node, ·)`` for the node's local exploration (no rounds charged).

        Callers must separately charge the exploration depth via
        :meth:`charge_local_rounds`; splitting the two keeps phase accounting
        explicit in the protocol code.  Computed on :attr:`local_graph`.
        """
        return self.local_graph.hop_limited_distances(node, hop_limit)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HybridNetwork(n={self.n}, m={self.graph.edge_count}, "
            f"send_cap={self.send_cap}, rounds={self.metrics.total_rounds})"
        )
