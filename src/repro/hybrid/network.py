"""The HYBRID model engine.

A :class:`HybridNetwork` wraps the local communication graph ``G`` and gives
protocol implementations exactly the two communication modes of the model:

* **Local mode (LOCAL).**  Per-edge bandwidth is unbounded, so the engine does
  not move local messages one by one.  Protocols call
  :meth:`HybridNetwork.charge_local_rounds` with the number of rounds their
  local phase takes (e.g. flooding to depth ``d`` costs ``d`` rounds) and then
  compute the phase's outcome directly from the graph restricted to the
  corresponding neighbourhoods.  This is semantically what the LOCAL model
  allows and keeps Python simulations tractable (see DESIGN.md §2).

* **Global mode (NCC).**  Simulated message by message.  Each round every node
  may send at most ``ModelConfig.send_cap(n)`` messages of ``O(log n)`` bits to
  arbitrary node IDs; the engine enforces the send budget, counts every round
  and message, and records the per-round receive maxima that Lemma D.2 bounds.

All counters live in :class:`~repro.hybrid.metrics.RoundMetrics`; the sum of
local and global rounds is the quantity the paper's theorems are about.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.graphs.graph import WeightedGraph
from repro.hybrid.config import ModelConfig
from repro.hybrid.errors import CapacityExceededError
from repro.hybrid.metrics import RoundMetrics
from repro.util.rand import RandomSource

# A global outbox maps a sender to the list of (target, payload) messages it
# wants to send; an inbox maps a receiver to the list of (sender, payload)
# messages it got.
Outboxes = Dict[int, List[Tuple[int, object]]]
Inboxes = Dict[int, List[Tuple[int, object]]]


class HybridNetwork:
    """One simulated HYBRID network: graph + global channel + accounting."""

    def __init__(self, graph: WeightedGraph, config: Optional[ModelConfig] = None) -> None:
        self.graph = graph
        self.config = config or ModelConfig()
        self.n = graph.node_count
        self.metrics = RoundMetrics()
        self.rng = RandomSource(self.config.rng_seed)
        self.send_cap = self.config.send_cap(self.n)
        self.receive_cap = self.config.receive_cap(self.n)
        self._states: List[Dict[str, object]] = [dict() for _ in range(self.n)]
        self._cut_watchers: List[Tuple[str, Set[int]]] = []
        self._hop_diameter: Optional[int] = None
        # Cumulative global messages received per node over the whole run;
        # the busiest node's total is the bandwidth bottleneck the paper's
        # trade-offs are about.
        self.received_totals: List[int] = [0] * self.n
        # Per-round receive counters, kept allocated across rounds: only the
        # entries touched in a round are read and re-zeroed, so accounting
        # cost scales with the round's traffic rather than with n.
        self._receive_counts: List[int] = [0] * self.n

    # ------------------------------------------------------------------ state
    def state(self, node: int) -> Dict[str, object]:
        """The mutable per-node knowledge dictionary of ``node``.

        Protocols must only read/write the state of the node they are
        currently acting as; tests rely on this discipline to check locality.
        """
        return self._states[node]

    def states(self) -> List[Dict[str, object]]:
        """All node states (index = node ID)."""
        return self._states

    def clear_states(self) -> None:
        """Drop all per-node knowledge (keeps the metrics)."""
        self._states = [dict() for _ in range(self.n)]

    def reset_metrics(self) -> None:
        """Zero all counters (e.g. between benchmark repetitions)."""
        self.metrics = RoundMetrics()

    def fork_rng(self, label: str) -> RandomSource:
        """A child random source for one protocol phase (reproducible per label)."""
        return self.rng.fork(label)

    # ------------------------------------------------------------- local mode
    def hop_diameter(self) -> int:
        """The hop diameter ``D(G)`` (computed once and cached)."""
        if self._hop_diameter is None:
            diameter = self.graph.hop_diameter()
            self._hop_diameter = self.n if diameter == float("inf") else int(diameter)
        return self._hop_diameter

    def charge_local_rounds(self, rounds: int, phase: str = "local") -> None:
        """Account for a local-mode phase of the given length.

        The caller is responsible for only using information that ``rounds``
        rounds of flooding could have delivered (i.e. the ``rounds``-hop
        neighbourhood of each node); see the module docstring.

        When ``cap_local_at_diameter`` is enabled (the default), the charge is
        capped at ``D(G)``: after ``D`` rounds of the unbounded local mode
        every node knows the entire graph state at the start of the phase, so
        no local phase ever needs more (the paper's "min(D, ·)" remark).
        """
        if self.config.cap_local_at_diameter:
            rounds = min(rounds, self.hop_diameter())
        self.metrics.charge_local(rounds, phase)

    # ------------------------------------------------------------ global mode
    def add_cut_watcher(self, name: str, node_set: Iterable[int]) -> None:
        """Track global bits crossing between ``node_set`` and its complement.

        Used by the lower-bound experiments (Section 7): the Alice/Bob
        simulation argument only charges for information crossing the cut via
        the global network.
        """
        self._cut_watchers.append((name, set(node_set)))

    def global_round(self, outboxes: Mapping[int, Sequence[Tuple[int, object]]], phase: str = "global") -> Inboxes:
        """Execute exactly one round of the global (NCC) mode.

        Parameters
        ----------
        outboxes:
            For each sending node, the list of ``(target, payload)`` messages
            it sends this round.  With ``strict_send`` (default) a node
            exceeding the send budget raises
            :class:`~repro.hybrid.errors.CapacityExceededError` -- a correct
            protocol never does.
        phase:
            Name under which the round is accounted.

        Returns
        -------
        dict
            ``receiver -> [(sender, payload), ...]`` for this round.
        """
        inboxes: Inboxes = {}
        total_messages = 0
        max_sent = 0
        watchers = self._cut_watchers
        cut_crossings = {name: 0 for name, _ in watchers}
        # Accounting is batched: receive counts accumulate in a reusable
        # per-node counter array and are folded into the totals/maximum once
        # per touched receiver, instead of dict lookups per message.  The
        # per-message loop only builds inboxes (and, when cut watchers are
        # installed, classifies crossings); semantics -- message order, round,
        # message and cut-bit counts, strict_send/strict_receive errors -- are
        # identical to the per-message accounting it replaces.
        receive_counts = self._receive_counts
        touched: List[int] = []
        n = self.n

        try:
            for sender, messages in outboxes.items():
                if not 0 <= sender < n:
                    raise ValueError(f"sender {sender} outside the network")
                count = len(messages)
                if count == 0:
                    continue
                if count > self.send_cap and self.config.strict_send:
                    raise CapacityExceededError(
                        f"node {sender} tried to send {count} global messages in one "
                        f"round (cap {self.send_cap})"
                    )
                if count > max_sent:
                    max_sent = count
                total_messages += count
                for target, payload in messages:
                    if not 0 <= target < n:
                        raise ValueError(f"target {target} outside the network")
                    bucket = inboxes.get(target)
                    if bucket is None:
                        bucket = inboxes[target] = []
                    bucket.append((sender, payload))
                    if receive_counts[target] == 0:
                        touched.append(target)
                    receive_counts[target] += 1
                    if watchers:
                        for name, node_set in watchers:
                            if (sender in node_set) != (target in node_set):
                                cut_crossings[name] += 1
        except Exception:
            for target in touched:
                receive_counts[target] = 0
            raise

        max_received = 0
        received_totals = self.received_totals
        for target in touched:
            count = receive_counts[target]
            received_totals[target] += count
            if count > max_received:
                max_received = count
            receive_counts[target] = 0
        if max_received > self.receive_cap and self.config.strict_receive:
            raise CapacityExceededError(
                f"a node received {max_received} global messages in one round "
                f"(cap {self.receive_cap})"
            )
        self.metrics.charge_global(1, phase)
        self.metrics.record_global_traffic(
            messages=total_messages,
            bits=total_messages * self.config.message_bits,
            max_sent=max_sent,
            max_received=max_received,
            receive_cap=self.receive_cap,
        )
        for name, crossings in cut_crossings.items():
            if crossings:
                self.metrics.record_cut_bits(name, crossings * self.config.message_bits)
        return inboxes

    def run_global_exchange(
        self,
        outboxes: Mapping[int, Sequence[Tuple[int, object]]],
        phase: str = "global",
        receiver_limited: bool = True,
    ) -> Tuple[Inboxes, int]:
        """Deliver an arbitrary-size batch of global messages over several rounds.

        Each node sends its queued messages at most ``send_cap`` per round and,
        when ``receiver_limited`` (the default), each node also receives at
        most ``receive_cap`` messages per round -- excess messages simply wait
        in their sender's queue for a later round.  This models the NCC-mode
        bandwidth constraint on both endpoints and is the workhorse behind
        "send each of your tokens, Θ(log n) tokens at a time" style loops in
        the paper's pseudo-code.

        Senders are served in round-robin order: the ID-sorted sender list is
        rotated by one position each round, so a contested receive budget is
        shared fairly.  (A fixed ``sorted(queues)`` order would hand low-ID
        senders the whole budget every round and starve high-ID senders
        behind a saturated receiver; see the regression test in
        tests/test_hybrid_engine.py.)

        Returns the accumulated inboxes and the number of global rounds used.
        """
        queues: Dict[int, List[Tuple[int, object]]] = {
            sender: list(messages) for sender, messages in outboxes.items() if messages
        }
        inboxes: Inboxes = {}
        rounds = 0
        while queues:
            round_out: Outboxes = {}
            receive_budget: Dict[int, int] = {}
            empty_senders = []
            order = sorted(queues)
            offset = rounds % len(order)
            for sender in order[offset:] + order[:offset]:
                queue = queues[sender]
                if not receiver_limited:
                    batch = queue[: self.send_cap]
                    del queue[: self.send_cap]
                else:
                    batch = []
                    kept: List[Tuple[int, object]] = []
                    send_budget = self.send_cap
                    for position, message in enumerate(queue):
                        if send_budget == 0:
                            # The sender's budget is spent; everything after
                            # this point waits wholesale (same order, same
                            # outcome as inspecting each message).
                            kept.extend(queue[position:])
                            break
                        target = message[0]
                        target_budget = receive_budget.get(target, self.receive_cap)
                        if target_budget > 0:
                            batch.append(message)
                            send_budget -= 1
                            receive_budget[target] = target_budget - 1
                        else:
                            kept.append(message)
                    queue[:] = kept
                if batch:
                    round_out[sender] = batch
                if not queue:
                    empty_senders.append(sender)
            for sender in empty_senders:
                del queues[sender]
            if not round_out:
                # Every remaining message targets a saturated receiver; the
                # round still elapses (receivers are busy draining).
                self.metrics.charge_global(1, phase)
                rounds += 1
                continue
            delivered = self.global_round(round_out, phase)
            rounds += 1
            for receiver, messages in delivered.items():
                inboxes.setdefault(receiver, []).extend(messages)
        return inboxes, rounds

    # ------------------------------------------------------------- shortcuts
    def max_total_received(self) -> int:
        """Largest cumulative global receive count of any node over the run."""
        return max(self.received_totals) if self.received_totals else 0

    def local_ball(self, node: int, radius: int) -> List[int]:
        """The ``radius``-hop neighbourhood of ``node`` (no rounds charged)."""
        return self.graph.ball(node, radius)

    def local_hop_limited_distances(self, node: int, hop_limit: int) -> Dict[int, float]:
        """``d_h(node, ·)`` for the node's local exploration (no rounds charged).

        Callers must separately charge the exploration depth via
        :meth:`charge_local_rounds`; splitting the two keeps phase accounting
        explicit in the protocol code.
        """
        return self.graph.hop_limited_distances(node, hop_limit)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HybridNetwork(n={self.n}, m={self.graph.edge_count}, "
            f"send_cap={self.send_cap}, rounds={self.metrics.total_rounds})"
        )
