"""Command-line interface for regenerating the paper's evaluation.

Usage::

    python -m repro.cli list
    python -m repro.cli run E2 [--scale medium]
    python -m repro.cli run-all [--scale small] [--output EXPERIMENTS_GENERATED.md]
    python -m repro.cli query [--n 200] [--seed 1] [--repeat 2]

``run`` prints one experiment's markdown table; ``run-all`` renders every
registered experiment (the content recorded in EXPERIMENTS.md); ``query``
serves a mixed SSSP/diameter/APSP workload from one
:class:`~repro.session.HybridSession` and prints the per-query amortized vs
cold-equivalent accounting.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import SCALES, available_experiments, run_all, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Computing Shortest Paths and Diameter in the "
            "Hybrid Network Model' (Kuhn & Schneider, PODC 2020)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", help="experiment id, e.g. E2")
    run_parser.add_argument(
        "--scale", choices=list(SCALES), default="small", help="sweep size"
    )

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    run_all_parser.add_argument(
        "--scale", choices=list(SCALES), default="small", help="sweep size"
    )
    run_all_parser.add_argument(
        "--output", default=None, help="write the markdown report to this file instead of stdout"
    )

    query_parser = subparsers.add_parser(
        "query", help="serve a mixed SSSP/diameter/APSP workload from one session"
    )
    query_parser.add_argument("--n", type=int, default=200, help="graph size")
    query_parser.add_argument("--seed", type=int, default=1, help="graph and model seed")
    query_parser.add_argument(
        "--repeat", type=int, default=2, help="how many times to repeat the workload"
    )
    return parser


def serve_query_workload(n: int, seed: int, repeat: int) -> int:
    """Answer a mixed workload from one session and print the accounting.

    The workload interleaves SSSP, diameter and APSP queries ``repeat`` times
    against a single :class:`~repro.session.HybridSession`; only the first
    pass pays preprocessing, which is exactly what the printed amortized vs
    cold-equivalent columns show.
    """
    from repro.graphs import generators
    from repro.session import HybridSession
    from repro.hybrid import ModelConfig
    from repro.util.rand import RandomSource

    if n < 2:
        print("--n must be at least 2", file=sys.stderr)
        return 2
    if repeat < 1:
        print("--repeat must be at least 1", file=sys.stderr)
        return 2
    graph = generators.random_geometric_like_graph(
        n, neighbourhood=2, rng=RandomSource(seed), extra_edge_probability=0.01
    )
    session = HybridSession(graph, ModelConfig(rng_seed=seed))
    source_rng = RandomSource(seed + 1)
    print(
        f"serving on n={n}, m={graph.edge_count}, hop diameter "
        f"{graph.hop_diameter():.0f} (seed {seed})\n"
    )
    header = f"{'query':>14s} {'amortized':>10s} {'cold-equiv':>10s} {'new prep':>9s} {'wall ms':>8s}"
    print(header)
    print("-" * len(header))
    for _ in range(repeat):
        workload = [
            ("sssp", source_rng.randrange(n)),
            ("diameter", None),
            ("sssp", source_rng.randrange(n)),
            ("apsp", None),
        ]
        for kind, argument in workload:
            started = time.perf_counter()
            if kind == "sssp":
                session.sssp(argument)
            elif kind == "diameter":
                session.diameter()
            else:
                session.apsp()
            elapsed_ms = (time.perf_counter() - started) * 1e3
            record = session.last_query
            label = kind if argument is None else f"{kind}({argument})"
            print(
                f"{label:>14s} {record.amortized_rounds:>10d} {record.cold_rounds:>10d} "
                f"{record.preparation_rounds:>9d} {elapsed_ms:>8.1f}"
            )
    total_amortized = sum(record.amortized_rounds for record in session.queries)
    print(
        f"\n{len(session.queries)} queries: {total_amortized} amortized rounds total "
        f"+ {session.preprocessing_rounds} preprocessing rounds (paid once); "
        f"cold-equivalent total {sum(record.cold_rounds for record in session.queries)}."
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        try:
            table = run_experiment(args.experiment, scale=args.scale)
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(table.to_markdown())
        return 0

    if args.command == "query":
        return serve_query_workload(args.n, args.seed, args.repeat)

    if args.command == "run-all":
        sections = [table.to_markdown() for table in run_all(scale=args.scale)]
        report = (
            "# Regenerated experiment tables\n\n"
            + f"Scale: {args.scale}\n\n"
            + "\n\n".join(sections)
            + "\n"
        )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report)
            print(f"wrote {args.output}")
        else:
            print(report)
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
