"""Command-line interface for regenerating the paper's evaluation.

Usage::

    python -m repro.cli list
    python -m repro.cli run E2 [--scale medium]
    python -m repro.cli run-all [--scale small] [--output EXPERIMENTS_GENERATED.md]

``run`` prints one experiment's markdown table; ``run-all`` renders every
registered experiment (the content recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import available_experiments, run_all, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Computing Shortest Paths and Diameter in the "
            "Hybrid Network Model' (Kuhn & Schneider, PODC 2020)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", help="experiment id, e.g. E2")
    run_parser.add_argument(
        "--scale", choices=["small", "medium"], default="small", help="sweep size"
    )

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    run_all_parser.add_argument(
        "--scale", choices=["small", "medium"], default="small", help="sweep size"
    )
    run_all_parser.add_argument(
        "--output", default=None, help="write the markdown report to this file instead of stdout"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        try:
            table = run_experiment(args.experiment, scale=args.scale)
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(table.to_markdown())
        return 0

    if args.command == "run-all":
        sections = [table.to_markdown() for table in run_all(scale=args.scale)]
        report = (
            "# Regenerated experiment tables\n\n"
            + f"Scale: {args.scale}\n\n"
            + "\n\n".join(sections)
            + "\n"
        )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report)
            print(f"wrote {args.output}")
        else:
            print(report)
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
