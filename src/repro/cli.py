"""Command-line interface for regenerating the paper's evaluation.

Usage::

    python -m repro.cli list
    python -m repro.cli run E2 [--scale medium]
    python -m repro.cli run-all [--scale small] [--output EXPERIMENTS_GENERATED.md]
    python -m repro.cli sweep [--jobs 4] [--resume] [--only E3,E14] [--scale medium]
    python -m repro.cli regress --baseline benchmarks/BENCH_baseline.json
    python -m repro.cli query [--n 200] [--seed 1] [--repeat 2]
    python -m repro.cli bench [--n 4096] [--profile]
    python -m repro.cli lint [--format json|github] [--select RL001,RL006] [--waiver-report]

``run`` prints one experiment's markdown table; ``run-all`` renders every
registered experiment serially (the content recorded in EXPERIMENTS.md).
``sweep`` is the scalable path: it decomposes the selected experiments into
independent shards, executes them across a process pool, persists each shard
to a resumable artifact store and assembles the same tables from the stored
payloads -- including the E15 robustness sweep (``--only E15``), which runs
the loss-tolerant protocols under seeded
:class:`~repro.hybrid.faults.FaultModel` drop schedules and reports round
overhead and accuracy per drop rate and graph family.
``regress`` diffs a fresh ``BENCH_core.json`` (or sweep manifest)
against a committed baseline and exits non-zero on tolerance violations --
the CI regression gate.  ``query`` serves a mixed SSSP/diameter/APSP workload
from one :class:`~repro.session.HybridSession` and prints the per-query
amortized vs cold-equivalent accounting.  ``bench`` times the hot graph
kernels on the numpy plane vs the compiled plane of
:mod:`repro.graphs.compiled` (bit-identity checked), with ``--profile``
adding a cProfile per-kernel breakdown.  ``lint`` runs the static invariant
linter (:mod:`repro.analysis.lint`): AST-level checks RL001-RL005 for
nondeterminism sources, unordered iteration, plane parity, metrics-accounting
discipline and RNG fork labels, plus the whole-program rules RL006-RL008
(fork safety, njit nopython subset, cache-invalidation discipline) built on
the symbol-table/call-graph layer, honouring inline
``# repro-lint: waive[CODE] -- reason`` comments and exiting non-zero on any
unwaived finding or stale waiver -- the CI invariant gate.  ``--format
github`` emits workflow ``::error`` annotations; ``--waiver-report`` lists
every reviewed waiver with its reason instead of linting.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments import SCALES, available_experiments, run_all, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Computing Shortest Paths and Diameter in the "
            "Hybrid Network Model' (Kuhn & Schneider, PODC 2020)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", help="experiment id, e.g. E2")
    run_parser.add_argument(
        "--scale", choices=list(SCALES), default="small", help="sweep size"
    )

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment serially")
    run_all_parser.add_argument(
        "--scale", choices=list(SCALES), default="small", help="sweep size"
    )
    run_all_parser.add_argument(
        "--output", default=None, help="write the markdown report to this file instead of stdout"
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run experiments as parallel, resumable shards through the artifact store",
    )
    sweep_parser.add_argument(
        "--scale", choices=list(SCALES), default="small", help="sweep size"
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial, the default)"
    )
    sweep_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip shards whose artifact already matches (finish an interrupted sweep)",
    )
    sweep_parser.add_argument(
        "--only",
        default=None,
        help="comma-separated experiment ids to run (default: all), e.g. E3,E14",
    )
    sweep_parser.add_argument(
        "--artifacts", default="artifacts", help="artifact store root directory"
    )
    sweep_parser.add_argument(
        "--trials",
        type=int,
        default=1,
        help="replica trials per shard for reseedable sweeps (spawned seed stream)",
    )
    sweep_parser.add_argument(
        "--root-seed",
        type=int,
        default=2020,
        help="entropy of the SeedSequence stream replica trials draw from",
    )
    sweep_parser.add_argument(
        "--output", default=None, help="write the markdown report to this file instead of stdout"
    )

    regress_parser = subparsers.add_parser(
        "regress",
        help="diff fresh benchmark records / sweep manifest against a committed baseline",
    )
    regress_parser.add_argument(
        "--baseline", required=True, help="committed baseline JSON (records or manifest)"
    )
    regress_parser.add_argument(
        "--current",
        default="BENCH_core.json",
        help="freshly produced JSON to check (default: BENCH_core.json)",
    )
    regress_parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.25,
        help="relative wall-clock tolerance (default 0.25 = ±25%%)",
    )
    regress_parser.add_argument(
        "--no-normalize",
        action="store_true",
        help="disable median machine-speed normalization of wall-clock ratios",
    )
    regress_parser.add_argument(
        "--min-wall-seconds",
        type=float,
        default=0.05,
        help=(
            "skip the wall-clock check (only) for records whose baseline wall time "
            "is below this; round counts still gate them (default 0.05)"
        ),
    )
    regress_parser.add_argument(
        "--report", default=None, help="write the machine-readable JSON report to this file"
    )

    query_parser = subparsers.add_parser(
        "query", help="serve a mixed SSSP/diameter/APSP workload from one session"
    )
    query_parser.add_argument("--n", type=int, default=200, help="graph size")
    query_parser.add_argument("--seed", type=int, default=1, help="graph and model seed")
    query_parser.add_argument(
        "--repeat", type=int, default=2, help="how many times to repeat the workload"
    )
    query_parser.add_argument(
        "--mutate",
        type=int,
        default=0,
        help="edge-weight mutations applied between repetitions; the warm "
        "session repairs its contexts through the delta log (DESIGN.md §12)",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="time the hot graph kernels on the numpy vs compiled plane",
    )
    bench_parser.add_argument("--n", type=int, default=1024, help="graph size")
    bench_parser.add_argument("--seed", type=int, default=3, help="graph seed")
    bench_parser.add_argument(
        "--sources", type=int, default=64, help="number of traversal sources per kernel"
    )
    bench_parser.add_argument(
        "--max-weight",
        type=int,
        default=8,
        help="edge weights drawn from [1, max-weight]; 1 = unit weights",
    )
    bench_parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile each kernel run and print the hottest functions",
    )
    bench_parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows of the per-kernel profile breakdown (with --profile)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the asyncio multi-tenant query server over TCP (DESIGN.md §11)",
    )
    serve_parser.add_argument("--n", type=int, default=200, help="graph size")
    serve_parser.add_argument("--seed", type=int, default=1, help="graph and model seed")
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8642, help="bind port (0 picks a free one)"
    )
    serve_parser.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        help="seconds the batcher waits before draining the queue",
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=64, help="bound on admitted, unanswered requests"
    )
    serve_parser.add_argument(
        "--tenant-quota",
        type=int,
        default=None,
        help="per-tenant bound within --max-pending (default: no quota)",
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=32, help="largest coalesced group (one pass)"
    )
    serve_parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="serve one query per pass (the E16 baseline mode)",
    )

    client_parser = subparsers.add_parser(
        "client",
        help="send newline-delimited JSON requests (stdin or args) to a running server",
    )
    client_parser.add_argument("--host", default="127.0.0.1", help="server address")
    client_parser.add_argument("--port", type=int, default=8642, help="server port")
    client_parser.add_argument(
        "requests",
        nargs="*",
        default=None,
        help="request JSON objects; with none given, lines are read from stdin",
    )

    serve_bench_parser = subparsers.add_parser(
        "serve-bench",
        help="run the E16 serving benchmark (batched vs sequential) and write its artifacts",
    )
    serve_bench_parser.add_argument("--n", type=int, default=256, help="graph size")
    serve_bench_parser.add_argument(
        "--queries", type=int, default=40, help="SSSP queries in the workload mix"
    )
    serve_bench_parser.add_argument("--seed", type=int, default=7, help="workload seed")
    serve_bench_parser.add_argument(
        "--batch-window", type=float, default=0.005, help="server batch window in seconds"
    )
    serve_bench_parser.add_argument(
        "--out",
        default=None,
        help="directory for manifest.json + metrics.jsonl + summary.json (default: print only)",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the static invariant linter (RL001-RL009) over the source tree",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/repro)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "output format (json is the nightly artifact schema; github "
            "emits ::error workflow annotations)"
        ),
    )
    lint_parser.add_argument(
        "--select",
        default=None,
        help="comma-separated checker codes to run (default: all), e.g. RL001,RL006",
    )
    lint_parser.add_argument(
        "--show-waived",
        action="store_true",
        help="also print waived findings in text format",
    )
    lint_parser.add_argument(
        "--waiver-report",
        action="store_true",
        help="list every reviewed waiver (code, location, reason) instead of linting",
    )
    return parser


def run_lint_command(args) -> int:
    """Run the invariant linter; exit 0 only with zero unwaived findings."""
    from repro.analysis.lint import lint_paths, waiver_inventory

    if args.waiver_report:
        waivers = waiver_inventory(args.paths or None)
        if args.format == "json":
            print(json.dumps(waivers_as_dict(waivers), indent=2))
        else:
            for waiver in waivers:
                codes = ",".join(waiver.codes)
                print(
                    f"{waiver.path}:{waiver.target_line} [{codes}] {waiver.reason}"
                )
            print(f"waivers: {len(waivers)} reviewed")
        return 0
    select = None
    if args.select:
        select = [token for token in args.select.split(",") if token.strip()]
    try:
        report = lint_paths(args.paths or None, select=select)
    except ValueError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    elif args.format == "github":
        print(report.format_github())
    else:
        print(report.format_text(show_waived=args.show_waived))
    return 0 if report.ok else 1


def waivers_as_dict(waivers) -> dict:
    """The ``--waiver-report --format json`` document (mirrors the report schema)."""
    return {
        "version": 1,
        "count": len(waivers),
        "waivers": [
            {
                "path": waiver.path,
                "comment_line": waiver.comment_line,
                "target_line": waiver.target_line,
                "codes": list(waiver.codes),
                "reason": waiver.reason,
            }
            for waiver in waivers
        ],
    }


def run_sweep_command(args) -> int:
    """Plan, execute (parallel + resumable) and render the selected sweeps."""
    from repro.experiments import (
        ArtifactStore,
        ExperimentEngine,
        assemble_tables,
        plan_shards,
    )

    if args.only:
        # dict.fromkeys: dedupe (--only E6,E6) while keeping the given order.
        ids = list(
            dict.fromkeys(token.strip().upper() for token in args.only.split(",") if token.strip())
        )
    else:
        ids = None
    try:
        shards = plan_shards(
            ids, scale=args.scale, trials=args.trials, root_seed=args.root_seed
        )
    except (KeyError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2

    store = ArtifactStore(args.artifacts)
    engine = ExperimentEngine(store, jobs=args.jobs, resume=args.resume)
    total = len(shards)
    done = {"count": 0}

    def progress(status: str, shard, wall: float) -> None:
        done["count"] += 1
        if status == "executed":
            detail = f"({wall:.2f}s)"
        else:
            detail = f"({status})"
        print(f"[{done['count']}/{total}] {shard.key} {detail}")

    print(
        f"sweep: {total} shard(s) across {len(set(s.experiment for s in shards))} "
        f"experiment(s) at scale {args.scale!r}, jobs={args.jobs}, "
        f"resume={'on' if args.resume else 'off'}, store={args.artifacts}"
    )
    report = engine.run(shards, progress=progress)
    print(f"engine: {report.summary()}; manifest: {store.manifest_path()}")
    if report.failed:
        for key, error in report.failed.items():
            print(f"FAILED {key}: {error}", file=sys.stderr)
        return 1

    sections = [table.to_markdown() for table in assemble_tables(store, shards)]
    rendered = (
        "# Regenerated experiment tables (sharded engine)\n\n"
        + f"Scale: {args.scale}\n\n"
        + "\n\n".join(sections)
        + "\n"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


def run_regress_command(args) -> int:
    """Run the regression gate; exit 0 on pass, 1 on violations."""
    from repro.analysis.regression import run_regression

    try:
        report = run_regression(
            args.baseline,
            args.current,
            wall_tolerance=args.wall_tolerance,
            normalize=not args.no_normalize,
            min_wall_seconds=args.min_wall_seconds,
        )
    except (OSError, ValueError) as error:
        print(f"regress: {error}", file=sys.stderr)
        return 2
    print(report.format_text())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.report}")
    return 0 if report.status == "pass" else 1


def serve_query_workload(n: int, seed: int, repeat: int, mutate: int = 0) -> int:
    """Answer a mixed workload from one session and print the accounting.

    The workload interleaves SSSP, diameter and APSP queries ``repeat`` times
    against a single :class:`~repro.session.HybridSession`; only the first
    pass pays preprocessing, which is exactly what the printed amortized vs
    cold-equivalent columns show.  With ``mutate > 0`` that many random
    edge-weight updates land between repetitions and the session repairs its
    warm contexts through the delta log instead of rebuilding them
    (DESIGN.md §12); the per-key repair decisions are printed at the end.
    """
    from repro.graphs import generators
    from repro.session import HybridSession
    from repro.hybrid import ModelConfig
    from repro.util.rand import RandomSource

    if n < 2:
        print("--n must be at least 2", file=sys.stderr)
        return 2
    if repeat < 1:
        print("--repeat must be at least 1", file=sys.stderr)
        return 2
    if mutate < 0:
        print("--mutate must be at least 0", file=sys.stderr)
        return 2
    graph = generators.random_geometric_like_graph(
        n, neighbourhood=2, rng=RandomSource(seed), extra_edge_probability=0.01
    )
    session = HybridSession(graph, ModelConfig(rng_seed=seed))
    source_rng = RandomSource(seed + 1)
    print(
        f"serving on n={n}, m={graph.edge_count}, hop diameter "
        f"{graph.hop_diameter():.0f} (seed {seed})\n"
    )
    header = (
        f"{'query':>14s} {'amortized':>10s} {'cold-equiv':>10s} {'new prep':>9s} {'wall ms':>8s}"
    )
    print(header)
    print("-" * len(header))
    mutation_rng = RandomSource(seed).fork("cli:mutations")
    edges = sorted((u, v) for u, v, _ in graph.edges())
    for repetition in range(repeat):
        if mutate and repetition:
            for _ in range(mutate):
                u, v = edges[mutation_rng.randrange(len(edges))]
                new_weight = graph.weight(u, v) + 1 + mutation_rng.randrange(4)
                session.update_weight(u, v, new_weight)
                print(f"{'mutate':>14s} edge {{{u}, {v}}} -> weight {new_weight}")
        workload = [
            ("sssp", source_rng.randrange(n)),
            # Weight mutations leave the unit-weight regime, where the
            # Section 5 diameter algorithm does not apply.
            ("diameter", None) if not mutate else ("sssp", source_rng.randrange(n)),
            ("sssp", source_rng.randrange(n)),
            ("apsp", None),
        ]
        for kind, argument in workload:
            # repro-lint: waive[RL001] -- wall-clock display only; never feeds simulation state
            started = time.perf_counter()
            if kind == "sssp":
                session.sssp(argument)
            elif kind == "diameter":
                session.diameter()
            else:
                session.apsp()
            # repro-lint: waive[RL001] -- wall-clock display only; never feeds simulation state
            elapsed_ms = (time.perf_counter() - started) * 1e3
            record = session.last_query
            label = kind if argument is None else f"{kind}({argument})"
            print(
                f"{label:>14s} {record.amortized_rounds:>10d} {record.cold_rounds:>10d} "
                f"{record.preparation_rounds:>9d} {elapsed_ms:>8.1f}"
            )
    total_amortized = sum(record.amortized_rounds for record in session.queries)
    print(
        f"\n{len(session.queries)} queries: {total_amortized} amortized rounds total "
        f"+ {session.preprocessing_rounds} preprocessing rounds (paid once); "
        f"cold-equivalent total {sum(record.cold_rounds for record in session.queries)}."
    )
    if session.repairs:
        decisions = ", ".join(
            f"{record.key_tag}: {record.action} ({record.rounds} rounds)"
            for record in session.repairs
        )
        print(f"context repairs after mutations: {decisions}")
    return 0


def run_serve_command(args) -> int:
    """Start the asyncio query server over TCP and block until interrupted.

    Builds the seeded workload graph, wraps it in a
    :class:`~repro.session.HybridSession`, and serves the line-delimited JSON
    protocol of DESIGN.md §11 on ``--host``/``--port`` until Ctrl-C; the
    shutdown path drains every admitted request before exiting.
    """
    import asyncio

    from repro.graphs import generators
    from repro.hybrid import ModelConfig
    from repro.serving import QueryServer, ServerConfig, serve_tcp
    from repro.session import HybridSession
    from repro.util.rand import RandomSource

    if args.n < 2:
        print("--n must be at least 2", file=sys.stderr)
        return 2
    graph = generators.random_geometric_like_graph(
        args.n, neighbourhood=2, rng=RandomSource(args.seed), extra_edge_probability=0.01
    )
    session = HybridSession(graph, ModelConfig(rng_seed=args.seed))
    config = ServerConfig(
        batch_window=args.batch_window,
        max_pending=args.max_pending,
        tenant_quota=args.tenant_quota,
        max_batch=args.max_batch,
        coalesce=not args.no_coalesce,
    )

    async def _serve() -> int:
        import contextlib
        import signal

        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            # Graceful drain on both signals; add_signal_handler is
            # unavailable on some platforms (then Ctrl-C still interrupts).
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
        async with QueryServer(session, config) as server:
            listener = await serve_tcp(server, host=args.host, port=args.port)
            bound = listener.sockets[0].getsockname()
            print(
                f"serving n={args.n} (seed {args.seed}) on {bound[0]}:{bound[1]} -- "
                f"window {config.batch_window}s, max_pending {config.max_pending}, "
                f"quota {config.tenant_quota}, coalesce {config.coalesce}",
                flush=True,
            )
            try:
                await stop.wait()
            finally:
                listener.close()
                await listener.wait_closed()
        summary = server.tenant_summary()
        if summary:
            print(f"drained; per-tenant totals: {json.dumps(summary, sort_keys=True)}")
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nserver stopped")
        return 0


def run_client_command(args) -> int:
    """Send requests to a running server and print one response per line."""
    import asyncio

    from repro.serving import query_tcp

    lines = args.requests if args.requests else [line for line in sys.stdin if line.strip()]
    requests = []
    for line in lines:
        try:
            requests.append(json.loads(line))
        except ValueError as error:
            print(f"client: bad request line {line!r}: {error}", file=sys.stderr)
            return 2
    if not requests:
        print("client: no requests given", file=sys.stderr)
        return 2
    try:
        responses = asyncio.run(query_tcp(args.host, args.port, requests))
    except OSError as error:
        print(f"client: cannot reach {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    for response in responses:
        print(json.dumps(response, sort_keys=True))
    return 0 if all(response.get("ok") for response in responses) else 1


def run_serve_bench_command(args) -> int:
    """Run the E16 benchmark and optionally persist its artifact trio."""
    from repro.serving import benchmark as serving_benchmark

    if args.n < 2 or args.queries < 1:
        print("--n must be >= 2 and --queries >= 1", file=sys.stderr)
        return 2
    summary = serving_benchmark.run_comparison(
        args.n, args.queries, args.seed, batch_window=args.batch_window
    )
    batched = summary["modes"]["batched"]
    sequential = summary["modes"]["sequential"]
    print(
        f"E16 n={summary['n']} queries={summary['query_count']} seed={summary['seed']}:\n"
        f"  batched:    {batched['passes']} passes, {batched['total_rounds']} rounds, "
        f"{batched['qps']} qps, p50 {batched['p50_ms']}ms, p99 {batched['p99_ms']}ms\n"
        f"  sequential: {sequential['passes']} passes, {sequential['total_rounds']} rounds, "
        f"{sequential['qps']} qps, p50 {sequential['p50_ms']}ms, p99 {sequential['p99_ms']}ms\n"
        f"  round ratio {summary['round_throughput_ratio']}x, "
        f"answers identical: {summary['responses_identical']}"
    )
    if args.out:
        paths = serving_benchmark.write_run_artifacts(args.out, summary)
        print(f"wrote {paths['manifest']}, {paths['metrics']}, {paths['summary']}")
    return 0 if summary["responses_identical"] else 1


def run_bench_command(args) -> int:
    """Time the hot graph kernels on the numpy plane vs the compiled plane.

    Runs multi-source exact distances, BFS levels and hop-limited ``d_h`` on
    one random connected graph through both :mod:`repro.graphs.csr` (the
    numpy oracle) and :mod:`repro.graphs.compiled`, verifies the outputs are
    bit-identical, and prints wall clock plus speedup per kernel.  With
    ``--profile`` each plane's run happens under :mod:`cProfile` and the
    hottest functions are printed per kernel -- the quickest way to see where
    a slow configuration actually spends its time.
    """
    import cProfile
    import io
    import pstats

    import numpy as np

    from repro.graphs import compiled as compiled_plane
    from repro.graphs import csr as numpy_plane
    from repro.graphs import generators
    from repro.util.rand import RandomSource

    if args.n < 2:
        print("--n must be at least 2", file=sys.stderr)
        return 2
    if args.sources < 1:
        print("--sources must be at least 1", file=sys.stderr)
        return 2
    graph = generators.random_connected_graph(
        args.n, 4.0, RandomSource(args.seed), max_weight=max(1, args.max_weight)
    )
    csr = graph.csr()
    sources = list(range(min(args.sources, args.n)))
    hop_limit = max(1, int(args.n).bit_length())
    report = compiled_plane.kernel_report()
    print(
        f"bench: n={args.n}, m={graph.edge_count}, sources={len(sources)}, "
        f"hop_limit={hop_limit}, unit_weights={csr.unit_weights}"
    )
    print(
        f"compiled plane: numba={'yes' if report['numba'] else 'no'}, "
        f"scipy={'yes' if report['scipy'] else 'no'} "
        f"(distance={report['distance_matrix']}, bfs={report['bfs_level_matrix']}, "
        f"hop-limited={report['hop_limited_matrix']})"
    )
    kernels = [
        ("distance_matrix", lambda plane: plane.distance_matrix(csr, sources)),
        ("bfs_level_matrix", lambda plane: plane.bfs_level_matrix(csr, sources)),
        ("hop_limited_matrix", lambda plane: plane.hop_limited_matrix(csr, sources, hop_limit)),
    ]
    profiles: list[tuple[str, pstats.Stats]] = []

    def timed(plane, kernel, label):
        if args.profile:
            profiler = cProfile.Profile()
            profiler.enable()
        # repro-lint: waive[RL001] -- kernel timing harness; measures, never decides
        started = time.perf_counter()
        result = kernel(plane)
        # repro-lint: waive[RL001] -- kernel timing harness; measures, never decides
        elapsed = time.perf_counter() - started
        if args.profile:
            profiler.disable()
            profiles.append((label, pstats.Stats(profiler)))
        return result, elapsed

    header = (
        f"{'kernel':>20s} {'numpy s':>9s} {'compiled s':>11s} {'speedup':>8s} {'identical':>9s}"
    )
    print()
    print(header)
    print("-" * len(header))
    mismatched = False
    for name, kernel in kernels:
        # Warm-up run so one-time costs (njit compilation, the cached sparse
        # view) are not billed to the measured pass.
        kernel(compiled_plane)
        baseline, baseline_s = timed(numpy_plane, kernel, f"{name} [numpy]")
        candidate, candidate_s = timed(compiled_plane, kernel, f"{name} [compiled]")
        identical = bool(np.array_equal(baseline, candidate))
        mismatched = mismatched or not identical
        speedup = baseline_s / candidate_s if candidate_s > 0 else float("inf")
        print(
            f"{name:>20s} {baseline_s:>9.4f} {candidate_s:>11.4f} {speedup:>7.2f}x "
            f"{'yes' if identical else 'NO':>9s}"
        )
    if args.profile:
        for label, stats in profiles:
            buffer = io.StringIO()
            stats.stream = buffer
            stats.sort_stats("cumulative").print_stats(args.top)
            print(f"\n=== profile: {label} (top {args.top} by cumulative time) ===")
            # Drop the pstats preamble (ordering banner etc.) down to the table.
            lines = buffer.getvalue().splitlines()
            for line in lines:
                if line.strip():
                    print(line)
    if mismatched:
        print("\nbench: compiled plane DIVERGED from the numpy oracle", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        try:
            table = run_experiment(args.experiment, scale=args.scale)
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(table.to_markdown())
        return 0

    if args.command == "sweep":
        return run_sweep_command(args)

    if args.command == "regress":
        return run_regress_command(args)

    if args.command == "query":
        return serve_query_workload(args.n, args.seed, args.repeat, args.mutate)

    if args.command == "serve":
        return run_serve_command(args)

    if args.command == "client":
        return run_client_command(args)

    if args.command == "serve-bench":
        return run_serve_bench_command(args)

    if args.command == "bench":
        return run_bench_command(args)

    if args.command == "lint":
        return run_lint_command(args)

    if args.command == "run-all":
        sections = [table.to_markdown() for table in run_all(scale=args.scale)]
        report = (
            "# Regenerated experiment tables\n\n"
            + f"Scale: {args.scale}\n\n"
            + "\n\n".join(sections)
            + "\n"
        )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report)
            print(f"wrote {args.output}")
        else:
            print(report)
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # e.g. `repro.cli lint | head`: the reader closed the pipe; suppress
        # the traceback and exit with the conventional SIGPIPE status.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        code = 128 + 13
    raise SystemExit(code)
