"""Utility substrate shared by the whole library.

This package contains the small, paper-mandated building blocks that are not
graph algorithms themselves:

* :mod:`repro.util.rand` -- seeded random number helpers used everywhere a
  sampling step appears in the paper ("sample each node with probability p").
* :mod:`repro.util.hashing` -- the k-wise independent hash family of
  Definition D.1 / Lemma D.1, used by the token routing protocol (Section 2)
  to pick pseudo-random intermediate nodes.
* :mod:`repro.util.chernoff` -- the Chernoff / union bound calculators of
  Appendix A, used by tests and by the analysis layer to compute "w.h.p."
  thresholds that measured quantities are compared against.
"""

from repro.util.chernoff import (
    chernoff_upper_tail,
    chernoff_lower_tail,
    whp_threshold_above,
    whp_threshold_below,
    union_bound_failure,
)
from repro.util.hashing import KWiseHashFamily, KWiseHashFunction
from repro.util.rand import RandomSource, sample_nodes, split_evenly

__all__ = [
    "KWiseHashFamily",
    "KWiseHashFunction",
    "RandomSource",
    "sample_nodes",
    "split_evenly",
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "whp_threshold_above",
    "whp_threshold_below",
    "union_bound_failure",
]
