"""Chernoff and union bound helpers (Appendix A of the paper).

The paper's correctness statements hold "w.h.p." via the bounds of Lemma A.1
and Lemma A.2.  The simulator cannot run at ``n → ∞`` so tests and benchmarks
instead check measured quantities against explicit tail thresholds computed by
these helpers: e.g. "no node receives more than ``whp_threshold_above(mu, n)``
global messages in any round".
"""

from __future__ import annotations

import math


def chernoff_upper_tail(mean: float, delta: float) -> float:
    """Upper tail bound ``P(X > (1+delta) * mean) <= exp(-delta * mean / 3)``.

    This is the form used in Lemma A.1 for ``delta >= 1``; for ``0 < delta < 1``
    the standard ``exp(-delta^2 * mean / 3)`` form is returned, which is still a
    valid (slightly weaker than optimal) bound.
    """
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if delta >= 1:
        exponent = -delta * mean / 3.0
    else:
        exponent = -delta * delta * mean / 3.0
    return math.exp(exponent)


def chernoff_lower_tail(mean: float, delta: float) -> float:
    """Lower tail bound ``P(X < (1-delta) * mean) <= exp(-delta^2 * mean / 2)``."""
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if not 0 <= delta <= 1:
        raise ValueError("delta must lie in [0, 1]")
    return math.exp(-delta * delta * mean / 2.0)


def union_bound_failure(single_failure: float, event_count: int) -> float:
    """Boole's inequality: probability that any of ``event_count`` events fails."""
    if single_failure < 0 or event_count < 0:
        raise ValueError("arguments must be non-negative")
    return min(1.0, single_failure * event_count)


def whp_threshold_above(mean: float, n: int, c: float = 1.0, events: int = 1) -> float:
    """Smallest value ``t >= mean`` such that ``P(X > t) <= 1/n^c`` after a union bound.

    Solves ``exp(-delta * mean / 3) * events <= n^{-c}`` for ``delta`` (using the
    ``delta >= 1`` branch which upper bounds both regimes once we also enforce
    ``delta >= 1``), i.e. ``delta = max(1, 3 * (c ln n + ln events) / mean)``.
    For ``mean == 0`` the threshold degenerates to the additive form
    ``3 (c ln n + ln events)``, matching the additive-slack argument used for
    helper-set membership in Lemma 2.2.
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    log_term = c * math.log(n) + math.log(max(events, 1))
    if mean <= 0:
        return 3.0 * log_term
    delta = max(1.0, 3.0 * log_term / mean)
    return (1.0 + delta) * mean


def whp_threshold_below(mean: float, n: int, c: float = 1.0, events: int = 1) -> float:
    """Largest value ``t <= mean`` such that ``P(X < t) <= 1/n^c`` after a union bound.

    Solves ``exp(-delta^2 * mean / 2) * events <= n^{-c}``; if no ``delta <= 1``
    works the threshold is 0 (i.e. no non-trivial lower guarantee at this scale),
    which mirrors how the paper's lower-tail statements only kick in once
    ``mean ∈ Ω(log n)``.
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    if mean <= 0:
        return 0.0
    log_term = c * math.log(n) + math.log(max(events, 1))
    delta_squared = 2.0 * log_term / mean
    if delta_squared >= 1.0:
        return 0.0
    delta = math.sqrt(delta_squared)
    return (1.0 - delta) * mean
