"""k-wise independent hash functions (Definition D.1 / Lemma D.1).

The token routing protocol of Section 2 routes each token labelled ``(s, r, i)``
via the intermediate node ``h(s, r, i)`` where ``h`` is drawn from a k-wise
independent family for ``k ∈ Θ(log n)``.  Lemma D.2 shows that this keeps the
number of messages any node receives per round at ``O(log n)`` w.h.p.

We implement the classic polynomial construction over a prime field: a degree
``k-1`` polynomial with random coefficients evaluated at the (encoded) key is a
k-wise independent map into the field, which we then reduce onto the target
range.  Selecting a function requires ``k`` field elements, i.e. ``O(k log n)``
= ``O(log^2 n)`` random bits, matching Lemma 2.3.
"""

from __future__ import annotations


from collections.abc import Sequence
from repro.util.rand import RandomSource

try:  # The batched evaluator needs numpy; the scalar path never does.
    import numpy as _np

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only in stripped environments
    _np = None
    _HAS_NUMPY = False

# A Mersenne prime comfortably larger than any node-id / token-label encoding
# we use; arithmetic mod a Mersenne prime is exact in Python integers.
_FIELD_PRIME = (1 << 61) - 1

_LIMB_BITS = 31
_LIMB_MASK = (1 << _LIMB_BITS) - 1


def _vec_reduce(values):
    """Reduce uint64 values ``< 2^63`` modulo the Mersenne prime ``2^61 - 1``."""
    values = (values >> 61) + (values & _FIELD_PRIME)
    return _np.where(values >= _FIELD_PRIME, values - _FIELD_PRIME, values)


def _vec_mulmod(a, b):
    """Vectorised ``(a * b) mod (2^61 - 1)`` for uint64 arrays ``< 2^61 - 1``.

    Products of 61-bit operands overflow uint64, so the multiplication is done
    in 31-bit limbs; the Mersenne modulus makes the carries cheap because
    ``2^61 ≡ 1`` and ``2^62 ≡ 2``.
    """
    a_hi, a_lo = a >> _LIMB_BITS, a & _LIMB_MASK
    b_hi, b_lo = b >> _LIMB_BITS, b & _LIMB_MASK
    high = a_hi * b_hi  # contributes high * 2^62 ≡ high * 2
    mid = a_hi * b_lo + a_lo * b_hi  # contributes mid * 2^31
    low = a_lo * b_lo  # < 2^62, fold once
    mid_hi, mid_lo = mid >> 30, mid & ((1 << 30) - 1)  # mid * 2^31 ≡ mid_hi + mid_lo * 2^31
    total = (high << 1) + mid_hi + (mid_lo << _LIMB_BITS) + ((low >> 61) + (low & _FIELD_PRIME))
    return _vec_reduce(total)


def _encode_key(key: tuple[int, ...] | int) -> int:
    """Injectively encode an integer tuple key into a field element.

    Token labels are triples ``(sender, receiver, index)``; we pack them with
    fixed 20-bit lanes which is ample for the network sizes a Python
    simulation can reach, and fold anything larger with a mixing step.
    """
    if isinstance(key, int):
        parts: tuple[int, ...] = (key,)
    else:
        parts = tuple(key)
    encoded = 0
    for part in parts:
        encoded = (encoded * 1048583 + (part + 1)) % _FIELD_PRIME
    return encoded


class KWiseHashFunction:
    """A single member of a k-wise independent family mapping keys to ``[range)``."""

    def __init__(self, coefficients: Sequence[int], output_range: int) -> None:
        if output_range <= 0:
            raise ValueError("output_range must be positive")
        if not coefficients:
            raise ValueError("need at least one coefficient")
        self._coefficients = list(coefficients)
        self._range = output_range

    @property
    def independence(self) -> int:
        """The independence parameter k (the polynomial degree plus one)."""
        return len(self._coefficients)

    @property
    def output_range(self) -> int:
        """Hash values lie in ``[0, output_range)``."""
        return self._range

    @property
    def seed_bits(self) -> int:
        """Number of random bits used to select this function (Lemma 2.3)."""
        return len(self._coefficients) * _FIELD_PRIME.bit_length()

    def __call__(self, key: tuple[int, ...] | int) -> int:
        """Evaluate the hash on an integer or tuple-of-integers key."""
        x = _encode_key(key)
        value = 0
        # Horner evaluation of the random polynomial over the prime field.
        for coefficient in self._coefficients:
            value = (value * x + coefficient) % _FIELD_PRIME
        return value % self._range

    def many(self, lanes: Sequence) -> "list[int]":
        """Batched evaluation on tuple keys given as per-lane integer arrays.

        ``lanes`` holds one array-like per tuple position (e.g. the senders,
        receivers and indices of a batch of token labels); element ``i`` of
        the result equals ``self((lanes[0][i], lanes[1][i], ...))`` exactly.
        The whole batch is one vectorised Horner evaluation over the Mersenne
        field (31-bit limb arithmetic, see :func:`_vec_mulmod`); without numpy
        it falls back to the scalar path.
        """
        if not lanes:
            return []
        if not _HAS_NUMPY:
            return [
                self(key) for key in zip(*(list(lane) for lane in lanes), strict=True)
            ]
        lanes = [_np.asarray(lane, dtype=_np.uint64) for lane in lanes]
        # Vectorised _encode_key: fixed multiplier fold over the lanes.
        multiplier = _np.uint64(1048583)
        encoded = _np.zeros(lanes[0].shape[0], dtype=_np.uint64)
        for lane in lanes:
            encoded = _vec_reduce(_vec_mulmod(encoded, multiplier) + lane + _np.uint64(1))
        # Vectorised Horner evaluation of the polynomial.
        value = _np.zeros_like(encoded)
        for coefficient in self._coefficients:
            value = _vec_reduce(_vec_mulmod(value, encoded) + _np.uint64(coefficient))
        return (value % _np.uint64(self._range)).astype(_np.int64).tolist()


class KWiseHashFamily:
    """Factory for k-wise independent hash functions (Lemma D.1)."""

    def __init__(self, independence: int, output_range: int) -> None:
        if independence < 1:
            raise ValueError("independence must be at least 1")
        self.independence = independence
        self.output_range = output_range

    def sample(self, rng: RandomSource) -> KWiseHashFunction:
        """Draw a random member of the family.

        The leading coefficient is forced non-zero so the polynomial has full
        degree; this does not affect the independence guarantee.
        """
        coefficients = [rng.randrange(_FIELD_PRIME) for _ in range(self.independence)]
        if coefficients[0] == 0:
            coefficients[0] = 1
        return KWiseHashFunction(coefficients, self.output_range)


def hash_family_for_network(n: int, rng: RandomSource, constant: int = 3) -> KWiseHashFunction:
    """Convenience helper: draw the hash used by Routing-Scheme on an n-node network.

    Lemma D.2 needs independence ``k ∈ Θ(log n)``; we use ``constant * ceil(log2 n)``.
    The output range is the node-id space ``[0, n)``.
    """
    import math

    independence = max(2, constant * max(1, math.ceil(math.log2(max(n, 2)))))
    return KWiseHashFamily(independence, n).sample(rng)
