"""Seeded randomness helpers.

Every randomized step in the paper ("sample each node into ``VS`` with
probability ``1/x``", "each node joins the helper set with probability ``q``",
"randomly seeded hash function") is driven through a :class:`RandomSource` so
that simulations are reproducible given a seed, and so that tests can control
the randomness of individual protocol phases independently.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")


class RandomSource:
    """A named, forkable random source.

    The HYBRID algorithms consist of several independent random phases
    (skeleton sampling, helper-set sampling, hash seeding, ...).  Forking a
    child source per phase keeps the phases statistically independent while
    remaining reproducible from a single root seed.
    """

    def __init__(self, seed: int | None = None) -> None:
        # repro-lint: waive[RL001] -- deliberate entropy for the seed=None convenience path
        self._seed = seed if seed is not None else random.SystemRandom().randrange(2**63)
        self._rng = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    def fork(self, label: str) -> "RandomSource":
        """Return a child source whose seed is derived from ``label``.

        Forks with distinct labels are independent; forks with the same label
        from the same parent produce identical streams, which is what lets a
        simulation be replayed phase by phase.  The derivation uses a stable
        hash (not Python's randomised ``hash``) so results are reproducible
        across processes and interpreter invocations.
        """
        digest = hashlib.sha256(f"{self._seed}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF
        return RandomSource(child_seed)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` (inclusive)."""
        return self._rng.randint(low, high)

    def randrange(self, upper: int) -> int:
        """Uniform integer in ``[0, upper)``."""
        return self._rng.randrange(upper)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly random element of a non-empty sequence."""
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """``count`` distinct elements chosen uniformly at random."""
        return self._rng.sample(items, count)

    def shuffle(self, items: list[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        return self._rng.random() < probability

    def python_rng(self) -> random.Random:
        """Expose the underlying :class:`random.Random` (for numpy-free code)."""
        return self._rng


def sample_nodes(nodes: Iterable[int], probability: float, rng: RandomSource) -> list[int]:
    """Sample each node independently with the given probability.

    This is the sampling primitive behind skeleton graphs (Lemma C.1) and the
    sender/receiver sets of Theorem 2.2.
    """
    return [node for node in nodes if rng.bernoulli(probability)]


def split_evenly(items: Sequence[T], bucket_count: int) -> list[list[T]]:
    """Deterministically split ``items`` into ``bucket_count`` balanced buckets.

    Used when a sender splits its tokens among its helpers (Fact 2.4): bucket
    sizes differ by at most one, matching the ``⌈k_S / µ_S⌉`` bound.
    """
    if bucket_count <= 0:
        raise ValueError("bucket_count must be positive")
    buckets: list[list[T]] = [[] for _ in range(bucket_count)]
    for index, item in enumerate(items):
        buckets[index % bucket_count].append(item)
    return buckets
