"""Pure-NCC baseline: distance computation without the local network.

With only the global mode, (approximate) APSP requires ``Ω̃(n)`` rounds because
every node can receive only ``O(log² n)`` bits per round but has to learn
``Ω(n)`` bits of output (Section 1).  This baseline makes that cost concrete:
the whole edge list is funnelled to a coordinator, solved centrally, and the
answers are scattered back -- all over the capacity-limited global network.
It is deliberately simple; its point in the benchmarks is the ``~n`` scaling,
not cleverness.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.graphs import reference
from repro.hybrid.network import HybridNetwork


@dataclass
class NCCOnlyResult:
    """Result of the global-only gather/solve/scatter baseline."""

    rounds: int
    distances: list[dict[int, float]]


def ncc_only_shortest_paths(
    network: HybridNetwork, sources: Sequence[int], phase: str = "ncc-only"
) -> NCCOnlyResult:
    """Exact k-SSP using only the global network.

    Every node ships its incident edges to node 0 (one message per edge), node
    0 solves the problem and ships each node its ``k`` distances back.  Both
    directions are dominated by node 0's ``O(log n)``-messages-per-round
    bottleneck, i.e. ``Θ̃(m + n·k)`` messages through one node.
    """
    rounds_before = network.metrics.total_rounds
    graph = network.graph

    gather_outboxes: dict[int, list[tuple[int, object]]] = {}
    for u, v, w in graph.edges():
        gather_outboxes.setdefault(u, []).append((0, ("edge", u, v, w)))
    network.run_global_exchange(gather_outboxes, phase + ":gather")

    per_source = reference.multi_source_distances(graph, list(sources))
    estimates: list[dict[int, float]] = [dict() for _ in range(network.n)]
    for source, distances in per_source.items():
        for node, value in distances.items():
            estimates[node][source] = value

    scatter_outboxes: dict[int, list[tuple[int, object]]] = {0: []}
    for node in range(network.n):
        for source in sources:
            value = estimates[node].get(source)
            if value is not None and node != 0:
                scatter_outboxes[0].append((node, ("distance", source, value)))
    network.run_global_exchange(scatter_outboxes, phase + ":scatter")

    rounds = network.metrics.total_rounds - rounds_before
    return NCCOnlyResult(rounds=rounds, distances=estimates)
