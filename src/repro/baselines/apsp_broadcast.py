"""The ``Õ(n^{2/3})`` exact APSP of Augustine et al. SODA'20 (the paper's baseline).

This is the algorithm Theorem 1.1 improves on.  Its structure is identical to
:mod:`repro.core.apsp` except for the last step: instead of token-routing the
connector labels to the skeleton nodes, *all* ``|V| · |V_S|`` distance labels
``d_h(v, s)`` are broadcast to the whole network with token dissemination.
The broadcast of ``Θ(n²/x)`` labels costs ``Θ̃(n/√x)`` rounds, which distorts
the local/global trade-off and pushes the optimum to ``x = n^{2/3}`` with total
runtime ``Õ(n^{2/3})`` (Section 3 of the paper).

Benchmark E2 runs this baseline side by side with the new algorithm so the
crossover in measured rounds can be compared with the analytic
``n^{2/3}`` vs ``√n`` prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.apsp import (
    _combine_distances,
    _distances_to_skeleton,
    _near_skeleton_matrix,
)
from repro.core.context import SkeletonContext, prepare_skeleton_context
from repro.hybrid.network import HybridNetwork
from repro.localnet.token_dissemination import disseminate_tokens


@dataclass
class BaselineAPSPResult:
    """Result of the SODA'20-style APSP baseline."""

    matrix: np.ndarray
    rounds: int
    skeleton_size: int
    hop_length: int
    broadcast_tokens: int

    def distance(self, u: int, v: int) -> float:
        """The computed distance ``d(u, v)``."""
        return float(self.matrix[u, v])


def apsp_broadcast_baseline(
    network: HybridNetwork,
    phase: str = "apsp-baseline",
    context: SkeletonContext | None = None,
) -> BaselineAPSPResult:
    """Exact APSP with the label-broadcast strategy of Augustine et al. SODA'20.

    The skeleton sampling probability is ``1/n^{2/3}`` (the optimum of the
    baseline's trade-off), so the skeleton has ``~n^{1/3}`` nodes and the label
    broadcast moves ``~n^{4/3}`` tokens.  ``context`` may supply a prepared
    skeleton, exactly as for :func:`repro.core.apsp.apsp_exact`.
    """
    rounds_before = network.metrics.total_rounds
    n = network.n

    if context is None:
        probability = min(1.0, n ** (-2.0 / 3.0))
        context = prepare_skeleton_context(
            network,
            probability,
            phase=phase + ":skeleton",
            keep_local_knowledge=True,
        )
    skeleton = context.skeleton
    if skeleton.knowledge_matrix is None:
        raise ValueError("the baseline needs a context prepared with keep_local_knowledge")
    n_s = skeleton.size

    # Publish the skeleton edges (as in the new algorithm).
    skeleton_distances = context.published_skeleton_distances(phase + ":publish-skeleton")

    # The baseline's bottleneck: broadcast every d_h(v, s) label to everyone.
    label_tokens: dict[int, list[tuple[int, int, float]]] = {}
    for v in range(n):
        labels = [
            (v, skeleton_node, distance)
            for skeleton_node, distance in skeleton.local_distances[v].items()
        ]
        if labels:
            label_tokens[v] = labels
    dissemination = disseminate_tokens(network, label_tokens, phase=phase + ":label-broadcast")

    # With global knowledge of the labels and of E_S every node computes all
    # distances locally; the computation is the same combination as in the new
    # algorithm, so we reuse its numpy helpers.
    near_matrix = _near_skeleton_matrix(network, skeleton)
    dist_to_skeleton, _ = _distances_to_skeleton(near_matrix, skeleton_distances)
    skeleton_to_all = dist_to_skeleton.T.copy()
    matrix = _combine_distances(network, skeleton, near_matrix, skeleton_to_all)

    rounds = network.metrics.total_rounds - rounds_before
    return BaselineAPSPResult(
        matrix=matrix,
        rounds=rounds,
        skeleton_size=n_s,
        hop_length=skeleton.hop_length,
        broadcast_tokens=dissemination.token_count,
    )
