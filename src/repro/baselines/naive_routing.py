"""Naive token "routing" by broadcasting everything (the Section 2 comparator).

The paper motivates token routing by noting that simply broadcasting all
point-to-point tokens with the dissemination protocol of Lemma B.1 costs
``Ω̃(√(k·|S|))`` rounds, whereas routing them costs ``Õ(K/n + √k + √|S|)``.
This module implements the broadcast strategy so benchmark E11 can measure the
gap (it is also the natural ablation of the helper-set machinery).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.token_routing import RoutingToken
from repro.hybrid.network import HybridNetwork
from repro.localnet.token_dissemination import disseminate_tokens


@dataclass
class NaiveRoutingResult:
    """Outcome of solving a token-routing instance by global broadcast."""

    delivered: dict[int, list[RoutingToken]]
    rounds: int
    token_count: int


def route_tokens_by_broadcast(
    network: HybridNetwork,
    tokens: Sequence[RoutingToken],
    phase: str = "naive-routing",
) -> NaiveRoutingResult:
    """Deliver all tokens by making every token known to every node.

    Correct but wasteful: each receiver ends up knowing all ``K`` tokens rather
    than only its own, and the round cost follows Lemma B.1's ``Õ(√K + ℓ)``
    instead of Theorem 2.2's ``Õ(K/n + √k_S + √k_R)``.
    """
    rounds_before = network.metrics.total_rounds
    per_sender: dict[int, list[RoutingToken]] = {}
    for token in tokens:
        per_sender.setdefault(token.sender, []).append(token)
    disseminate_tokens(network, per_sender, phase=phase + ":broadcast")

    delivered: dict[int, list[RoutingToken]] = {}
    for token in tokens:
        delivered.setdefault(token.receiver, []).append(token)
    rounds = network.metrics.total_rounds - rounds_before
    return NaiveRoutingResult(delivered=delivered, rounds=rounds, token_count=len(tokens))


def predicted_broadcast_rounds(token_count: int, max_per_sender: int) -> float:
    """The Lemma B.1 shape ``√K + ℓ`` the broadcast strategy follows."""
    return math.sqrt(max(token_count, 0)) + max_per_sender
