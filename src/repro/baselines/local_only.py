"""Pure-LOCAL baselines: distance computation without the global network.

With only the LOCAL mode, any distance or diameter computation takes ``Θ(D)``
rounds (Section 1): in ``D`` rounds every node can learn the entire graph and
solve everything locally, and no algorithm can do better because information
has to travel ``D`` hops.  These baselines mark the "no global network" end of
the spectrum in the benchmark plots.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.graphs import reference
from repro.hybrid.network import HybridNetwork


@dataclass
class LocalOnlyResult:
    """Result of a pure-LOCAL computation: exact answers after ``D`` rounds."""

    rounds: int
    distances: list[dict[int, float]]
    diameter: float


def local_only_shortest_paths(
    network: HybridNetwork, sources: Sequence[int], phase: str = "local-only"
) -> LocalOnlyResult:
    """Exact k-SSP using only the local network (``Θ(D)`` rounds)."""
    diameter = network.local_graph.hop_diameter()
    if diameter == float("inf"):
        raise ValueError("graph must be connected")
    rounds = int(diameter)
    network.charge_local_rounds(rounds, phase)
    per_source = reference.multi_source_distances(network.local_graph, list(sources))
    estimates: list[dict[int, float]] = [dict() for _ in range(network.n)]
    for source, distances in per_source.items():
        for node, value in distances.items():
            estimates[node][source] = value
    return LocalOnlyResult(rounds=rounds, distances=estimates, diameter=diameter)


def local_only_diameter(
    network: HybridNetwork, phase: str = "local-only-diameter"
) -> LocalOnlyResult:
    """Exact diameter using only the local network (``Θ(D)`` rounds)."""
    diameter = network.local_graph.hop_diameter()
    if diameter == float("inf"):
        raise ValueError("graph must be connected")
    rounds = int(diameter)
    network.charge_local_rounds(rounds, phase)
    return LocalOnlyResult(rounds=rounds, distances=[], diameter=diameter)
