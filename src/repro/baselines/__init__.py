"""Prior-work baselines the paper compares against analytically.

* :mod:`repro.baselines.apsp_broadcast` -- the ``Õ(n^{2/3})`` APSP of Augustine
  et al. SODA'20 (improved to ``Õ(√n)`` by Theorem 1.1).
* :mod:`repro.baselines.local_only` -- the ``Θ(D)``-round pure-LOCAL approach.
* :mod:`repro.baselines.ncc_only` -- the ``Ω̃(n)``-round pure-global approach.
* :mod:`repro.baselines.naive_routing` -- broadcasting instead of routing
  (the comparator / ablation for Section 2).
"""

from repro.baselines.apsp_broadcast import BaselineAPSPResult, apsp_broadcast_baseline
from repro.baselines.local_only import (
    LocalOnlyResult,
    local_only_diameter,
    local_only_shortest_paths,
)
from repro.baselines.naive_routing import (
    NaiveRoutingResult,
    predicted_broadcast_rounds,
    route_tokens_by_broadcast,
)
from repro.baselines.ncc_only import NCCOnlyResult, ncc_only_shortest_paths

__all__ = [
    "BaselineAPSPResult",
    "apsp_broadcast_baseline",
    "LocalOnlyResult",
    "local_only_diameter",
    "local_only_shortest_paths",
    "NaiveRoutingResult",
    "predicted_broadcast_rounds",
    "route_tokens_by_broadcast",
    "NCCOnlyResult",
    "ncc_only_shortest_paths",
]
