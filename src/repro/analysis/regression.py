"""The benchmark regression gate: diff fresh records against baselines.

``BENCH_core.json`` (one record per benchmark: wall time plus the simulated
round counts and traffic the paper is about) and the sweep engine's
``manifest.json`` are both machine-readable; this module turns them from logs
into enforceable contracts:

* **Round counts are exact.**  Every simulation is deterministic at fixed
  seeds, so any change in a ``*rounds*`` metric is a real behavioural change
  and fails the gate outright.
* **Wall-clock gets a relative tolerance** (default ±25%).  Because the
  baseline was recorded on a different machine than CI runs on, ratios are
  first normalized by the median current/baseline ratio across all records
  (the machine-speed factor); a single benchmark regressing >25% beyond that
  shared factor is flagged, while a uniformly slower runner is not.  Pass
  ``normalize=False`` (CLI ``--no-normalize``) for same-machine comparisons.
  Records whose baseline wall time is below ``min_wall_seconds`` (default
  50ms) are exempt from the wall-clock check only: timer jitter at that
  scale routinely exceeds any honest tolerance, and such micro-benchmarks
  remain fully gated through their exact round counts.
* **Everything else deterministic** (message counts, skeleton sizes, ...) is
  reported as drift but does not fail the gate, keeping the contract exactly
  "round counts exact, wall-clock within tolerance".

Sweep manifests are fully deterministic, so their comparison is exact on the
per-shard payload hashes.

``python -m repro.cli regress`` is the command-line entry point; CI's
``bench-regression`` job fails the build when :attr:`RegressionReport.status`
is ``"fail"``.
"""

from __future__ import annotations

import json
import statistics
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

#: Metric keys ignored entirely (identity / free-form, not measurements).
_IDENTITY_KEYS = {"name", "group", "note", "notes"}


def is_wall_clock_metric(key: str) -> bool:
    """Wall-clock metrics get the relative tolerance."""
    return "wall" in key or key.endswith("seconds")


def is_round_count_metric(key: str) -> bool:
    """Round-count metrics must match exactly."""
    return "rounds" in key


@dataclass
class Violation:
    """One tolerance violation (the machine-readable failure unit)."""

    record: str
    metric: str
    kind: str  # "round-count" | "wall-clock" | "missing-record" | "missing-metric" | "shard"
    baseline: object = None
    current: object = None
    message: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "record": self.record,
            "metric": self.metric,
            "kind": self.kind,
            "baseline": self.baseline,
            "current": self.current,
            "message": self.message,
        }


@dataclass
class RegressionReport:
    """Machine-readable pass/fail verdict of one baseline comparison."""

    kind: str  # "benchmarks" | "manifest"
    violations: list[Violation] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    checked_records: int = 0
    checked_metrics: int = 0
    wall_tolerance: float = 0.25
    min_wall_seconds: float = 0.05
    speed_factor: float | None = None

    @property
    def status(self) -> str:
        return "fail" if self.violations else "pass"

    def as_dict(self) -> dict[str, object]:
        return {
            "status": self.status,
            "kind": self.kind,
            "checked_records": self.checked_records,
            "checked_metrics": self.checked_metrics,
            "wall_tolerance": self.wall_tolerance,
            "min_wall_seconds": self.min_wall_seconds,
            "speed_factor": self.speed_factor,
            "violations": [violation.as_dict() for violation in self.violations],
            "notes": self.notes,
        }

    def format_text(self) -> str:
        """Human-readable report (the CLI prints this)."""
        lines = [
            f"regression gate [{self.kind}]: {self.status.upper()} "
            f"({self.checked_records} records, {self.checked_metrics} metrics checked)"
        ]
        if self.speed_factor is not None:
            lines.append(
                f"machine-speed normalization factor (median wall ratio): {self.speed_factor:.3f}"
            )
        for violation in self.violations:
            lines.append(
                f"  VIOLATION [{violation.kind}] {violation.record} :: {violation.metric}: "
                f"baseline={violation.baseline!r} current={violation.current!r} "
                f"{violation.message}"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _numeric(value: object) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def compare_benchmarks(
    baseline_records: Sequence[dict[str, object]],
    current_records: Sequence[dict[str, object]],
    wall_tolerance: float = 0.25,
    normalize: bool = True,
    min_wall_seconds: float = 0.05,
) -> RegressionReport:
    """Diff two ``BENCH_core.json``-style record lists (baseline vs fresh)."""
    report = RegressionReport(
        kind="benchmarks", wall_tolerance=wall_tolerance, min_wall_seconds=min_wall_seconds
    )
    baseline = {record["name"]: record for record in baseline_records}
    current = {record["name"]: record for record in current_records}

    for name in sorted(set(current) - set(baseline)):
        report.notes.append(f"new record (not in baseline, unchecked): {name}")
    for name in sorted(set(baseline) - set(current)):
        report.violations.append(
            Violation(name, "-", "missing-record", message="record absent from current run")
        )

    common = sorted(set(baseline) & set(current))

    # Machine-speed factor: the median wall-clock ratio across the records
    # that are actually wall-clock gated.  Micro-benchmarks below the floor
    # are excluded here too -- their ratios measure timer jitter and fixed
    # call overhead, not machine speed, and would skew the factor the real
    # benchmarks get normalized by.
    ratios = []
    for name in common:
        for key, base_value in baseline[name].items():
            if not is_wall_clock_metric(key):
                continue
            base_t, cur_t = _numeric(base_value), _numeric(current[name].get(key))
            if base_t and cur_t and base_t >= min_wall_seconds and cur_t > 0:
                ratios.append(cur_t / base_t)
    speed_factor = statistics.median(ratios) if (normalize and ratios) else 1.0
    report.speed_factor = speed_factor

    for name in common:
        report.checked_records += 1
        base_record, current_record = baseline[name], current[name]
        for key, base_value in base_record.items():
            if key in _IDENTITY_KEYS:
                continue
            if key not in current_record:
                report.violations.append(
                    Violation(name, key, "missing-metric", base_value, None,
                              message="metric absent from current record")
                )
                continue
            current_value = current_record[key]
            report.checked_metrics += 1
            if is_wall_clock_metric(key):
                base_t, cur_t = _numeric(base_value), _numeric(current_value)
                if not base_t or not cur_t or base_t <= 0 or cur_t <= 0:
                    continue  # smoke runs record null wall times
                if base_t < min_wall_seconds:
                    continue  # micro-benchmark: jitter dominates; rounds still gate it
                adjusted = (cur_t / base_t) / speed_factor
                if adjusted > 1.0 + wall_tolerance:
                    report.violations.append(
                        Violation(
                            name, key, "wall-clock", base_t, cur_t,
                            message=f"normalized ratio {adjusted:.2f} exceeds "
                                    f"1+{wall_tolerance:.2f}",
                        )
                    )
                elif adjusted < 1.0 - wall_tolerance:
                    report.notes.append(
                        f"improvement: {name} :: {key} normalized ratio {adjusted:.2f}"
                    )
            elif is_round_count_metric(key):
                if base_value != current_value:
                    report.violations.append(
                        Violation(name, key, "round-count", base_value, current_value,
                                  message="round counts must match the baseline exactly")
                    )
            else:
                if base_value != current_value:
                    report.notes.append(
                        f"drift (informational): {name} :: {key} "
                        f"{base_value!r} -> {current_value!r}"
                    )
    return report


def compare_manifests(
    baseline_manifest: dict[str, object], current_manifest: dict[str, object]
) -> RegressionReport:
    """Diff two sweep-engine manifests: exact on per-shard payload hashes."""
    report = RegressionReport(kind="manifest", wall_tolerance=0.0)
    baseline = dict(baseline_manifest.get("shards", {}))
    current = dict(current_manifest.get("shards", {}))
    for key in sorted(set(current) - set(baseline)):
        report.notes.append(f"new shard (not in baseline, unchecked): {key}")
    for key in sorted(set(baseline) - set(current)):
        report.violations.append(
            Violation(key, "-", "shard", message="shard absent from current manifest")
        )
    for key in sorted(set(baseline) & set(current)):
        report.checked_records += 1
        report.checked_metrics += 1
        base_hash = baseline[key].get("payload_hash")
        current_hash = current[key].get("payload_hash")
        if base_hash != current_hash:
            report.violations.append(
                Violation(key, "payload_hash", "shard", base_hash, current_hash,
                          message="shard payload diverged from the baseline manifest")
            )
    return report


def load_json(path) -> object:
    """Load one baseline/current file (explicit errors beat tracebacks)."""
    return json.loads(Path(path).read_text())


def run_regression(
    baseline_path,
    current_path,
    wall_tolerance: float = 0.25,
    normalize: bool = True,
    min_wall_seconds: float = 0.05,
) -> RegressionReport:
    """Compare two files, auto-detecting benchmark records vs sweep manifests."""
    baseline = load_json(baseline_path)
    current = load_json(current_path)
    baseline_is_manifest = isinstance(baseline, dict) and "shards" in baseline
    current_is_manifest = isinstance(current, dict) and "shards" in current
    if baseline_is_manifest != current_is_manifest:
        raise ValueError(
            "baseline and current files have different formats "
            "(one is a sweep manifest, the other a benchmark record list)"
        )
    if baseline_is_manifest:
        return compare_manifests(baseline, current)
    if not isinstance(baseline, list) or not isinstance(current, list):
        raise ValueError("benchmark records must be JSON lists of objects with a 'name'")
    return compare_benchmarks(
        baseline,
        current,
        wall_tolerance=wall_tolerance,
        normalize=normalize,
        min_wall_seconds=min_wall_seconds,
    )
