"""Analysis utilities: scaling-law fits and markdown reporting for EXPERIMENTS.md."""

from repro.analysis.complexity import (
    PowerLawFit,
    exponent_gap,
    fit_power_law,
    fit_power_law_with_log,
    geometric_sweep,
)
from repro.analysis.regression import (
    RegressionReport,
    Violation,
    compare_benchmarks,
    compare_manifests,
    run_regression,
)
from repro.analysis.report import (
    format_key_values,
    format_markdown_table,
    summarize_comparison,
)

__all__ = [
    "RegressionReport",
    "Violation",
    "compare_benchmarks",
    "compare_manifests",
    "run_regression",
    "PowerLawFit",
    "exponent_gap",
    "fit_power_law",
    "fit_power_law_with_log",
    "geometric_sweep",
    "format_key_values",
    "format_markdown_table",
    "summarize_comparison",
]
