"""Project-wide symbol table for the whole-program lint rules.

The per-file rules (RL001, RL002, RL004) read one AST at a time; the
whole-program rules (RL006 fork safety, RL007 njit subset, RL008 cache
invalidation) need to answer questions no single file can: *which function
does this imported name refer to?*, *is this module-level name mutable
state or a constant?*, *where is this class defined?*.  This module builds
that resolution layer once per lint run:

* :class:`ModuleSymbols` -- one parsed module's top-level functions,
  classes, module-level assignments, and import aliases (including
  ``import x as y`` / ``from x import f as g`` and relative imports);
* :class:`ProjectSymbols` -- every module keyed by all dotted suffixes of
  its path (so ``repro.experiments.engine`` and fixture-package paths both
  resolve), a global name -> definitions index for conservative fallbacks,
  and :meth:`ProjectSymbols.resolve_name`, which follows import/alias
  chains -- through ``__init__.py`` re-exports, with a cycle guard -- to
  the defining function, class, or module-level binding.

Mutability classification is deliberately conservative in the *sound*
direction for RL006: a module-level name counts as **mutable state** when
it is bound to a mutable container (dict/list/set/... display or
constructor) *and* some function in the project mutates it (method call,
subscript store, ``del``), or when any function rebinds it through a
``global`` statement.  Names only ever assigned at module level with
immutable constant values (ints, strings, tuples of constants, ...) are
constants and never flagged.

Everything here is static: nothing imports or executes the code under
analysis, and one :func:`project_symbols` result is memoized per lint run
so the three whole-program checkers share a single build.
"""

from __future__ import annotations

import ast
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.analysis.lint.framework import SourceFile

#: Constructor names whose call produces a mutable container.
MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "Counter", "deque", "OrderedDict"}
)

#: Container methods that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "add",
        "discard",
        "setdefault",
        "appendleft",
        "popleft",
        "sort",
        "reverse",
        "__setitem__",
    }
)


@dataclass
class FunctionInfo:
    """One function or method definition anywhere in the linted tree."""

    qualname: str  # "<path>::Outer.inner" -- unique across the project.
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    source: SourceFile
    module: "ModuleSymbols"
    class_name: str | None = None
    nested: bool = False  # Defined inside another function (a closure).

    @property
    def decorator_names(self) -> tuple[str, ...]:
        return tuple(dotted_name(d) or "" for d in self.node.decorator_list)


@dataclass
class ClassInfo:
    """One top-level class definition: its methods and class-level assigns."""

    name: str
    node: ast.ClassDef
    source: SourceFile
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Class-body assignments ``name = value`` / ``name: T = value``.
    class_assigns: dict[str, ast.expr | None] = field(default_factory=dict)


@dataclass
class ModuleGlobal:
    """One module-level name binding and its project-wide mutation record."""

    name: str
    source: SourceFile
    node: ast.stmt
    value: ast.expr | None
    mutable_value: bool = False
    constant_value: bool = False
    #: Sites (FunctionInfo) that mutate or rebind this global from inside a
    #: function body (filled by the project pass).
    function_mutators: list[FunctionInfo] = field(default_factory=list)
    #: Rebound through a ``global`` statement somewhere.
    global_rebound: bool = False

    @property
    def is_mutable_state(self) -> bool:
        """Whether RL006 should treat this name as cross-process hazard state.

        A mutable container that no function ever touches is a de-facto
        constant (e.g. a literal registry consulted read-only at class scope)
        -- only containers with an in-function mutation site, or names
        rebound via ``global``, count as state.
        """
        return (self.mutable_value and bool(self.function_mutators)) or self.global_rebound


@dataclass
class ImportAlias:
    """One imported local name: ``import m as a`` / ``from m import n as a``."""

    alias: str
    module: str  # Dotted module path (absolute form; relative dots resolved).
    original: str | None  # None for ``import m``; the source name otherwise.
    node: ast.stmt


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Call):  # e.g. ``@njit(cache=True)``
        return dotted_name(node.func)
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def module_path_of(source: SourceFile) -> str:
    """The dotted path of a source file (``a/b/c.py`` -> ``a.b.c``)."""
    path = source.path
    if path.endswith(".py"):
        path = path[: -len(".py")]
    parts = [part for part in path.split("/") if part not in ("", ".")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def is_mutable_container_value(value: ast.expr | None) -> bool:
    """Whether an assigned value is a mutable container display/constructor."""
    if value is None:
        return False
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is not None and name.split(".")[-1] in MUTABLE_CONSTRUCTORS:
            return True
    return False


def is_constant_value(value: ast.expr | None) -> bool:
    """Whether a value is an immutable constant expression (const-foldable).

    Covers literals, tuples of constants, unary/binary arithmetic over
    constants (``(1 << 64) - 1``), and ``frozenset(...)`` / ``tuple(...)`` of
    constants -- everything an ``@njit`` kernel may safely close over and
    everything RL006 may safely ignore.
    """
    if value is None:
        return False
    if isinstance(value, ast.Constant):
        return True
    if isinstance(value, ast.Tuple):
        return all(is_constant_value(element) for element in value.elts)
    if isinstance(value, ast.UnaryOp):
        return is_constant_value(value.operand)
    if isinstance(value, ast.BinOp):
        return is_constant_value(value.left) and is_constant_value(value.right)
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name in ("frozenset", "tuple") and not value.keywords:
            return all(is_constant_value(argument) for argument in value.args)
    return False


class ModuleSymbols:
    """Top-level symbols of one parsed module."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.module_path = module_path_of(source)
        self.is_package_init = source.path.endswith("__init__.py")
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.globals: dict[str, ModuleGlobal] = {}
        self.imports: dict[str, ImportAlias] = {}
        #: Every function/method (including nested ones), in source order.
        self.all_functions: list[FunctionInfo] = []
        self._collect()

    # ----------------------------------------------------------- collection
    def _collect(self) -> None:
        for statement in _toplevel_statements(self.source.tree):
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(statement, class_name=None, nested=False)
            elif isinstance(statement, ast.ClassDef):
                self._add_class(statement)
            elif isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._add_global(statement)
            elif isinstance(statement, (ast.Import, ast.ImportFrom)):
                self._add_import(statement)

    def _add_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
        nested: bool,
        prefix: str = "",
    ) -> FunctionInfo:
        qualname = f"{self.source.path}::{prefix}{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            node=node,
            source=self.source,
            module=self,
            class_name=class_name,
            nested=nested,
        )
        self.all_functions.append(info)
        if not nested and class_name is None:
            self.functions.setdefault(node.name, info)
        # Nested defs and methods-of-methods: recurse for the name index.
        for child in ast.iter_child_nodes(node):
            self._collect_nested(child, prefix=f"{prefix}{node.name}.")
        return info

    def _collect_nested(self, node: ast.AST, prefix: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._add_function(node, class_name=None, nested=True, prefix=prefix)
            return
        if isinstance(node, (ast.ClassDef, ast.Lambda)):
            return  # Nested classes are out of scope for resolution.
        for child in ast.iter_child_nodes(node):
            self._collect_nested(child, prefix)

    def _add_class(self, node: ast.ClassDef) -> None:
        info = ClassInfo(name=node.name, node=node, source=self.source)
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._add_function(
                    statement, class_name=node.name, nested=False, prefix=f"{node.name}."
                )
                info.methods.setdefault(statement.name, method)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        info.class_assigns.setdefault(target.id, statement.value)
            elif isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
                info.class_assigns.setdefault(statement.target.id, statement.value)
        self.classes.setdefault(node.name, info)

    def _add_global(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign):
            targets = [t for t in statement.targets if isinstance(t, ast.Name)]
            value: ast.expr | None = statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target] if isinstance(statement.target, ast.Name) else []
            value = statement.value
        else:  # AugAssign at module level: record as a (re)binding.
            targets = [statement.target] if isinstance(statement.target, ast.Name) else []
            value = statement.value
        for target in targets:
            existing = self.globals.get(target.id)
            if existing is None:
                self.globals[target.id] = ModuleGlobal(
                    name=target.id,
                    source=self.source,
                    node=statement,
                    value=value,
                    mutable_value=is_mutable_container_value(value),
                    constant_value=is_constant_value(value),
                )
            else:
                # Rebinding at module level (try/except fallbacks): keep the
                # first site, but widen mutability and narrow constancy.
                existing.mutable_value = existing.mutable_value or is_mutable_container_value(
                    value
                )
                existing.constant_value = existing.constant_value and is_constant_value(value)

    def _add_import(self, statement: ast.Import | ast.ImportFrom) -> None:
        if isinstance(statement, ast.Import):
            for alias in statement.names:
                local = alias.asname or alias.name.split(".")[0]
                # ``import a.b`` binds ``a``; ``import a.b as c`` binds the leaf.
                module = alias.name if alias.asname else alias.name.split(".")[0]
                self.imports.setdefault(
                    local, ImportAlias(local, module, None, statement)
                )
            return
        module = statement.module or ""
        if statement.level:
            # Resolve relative imports against this module's dotted path.
            parts = self.module_path.split(".")
            if not self.is_package_init:
                parts = parts[:-1]
            anchor = parts[: len(parts) - (statement.level - 1)]
            module = ".".join([*anchor, module] if module else anchor)
        for alias in statement.names:
            if alias.name == "*":
                continue  # Conservatively unresolvable.
            local = alias.asname or alias.name
            self.imports.setdefault(
                local, ImportAlias(local, module, alias.name, statement)
            )


def _toplevel_statements(module: ast.Module):
    """Module statements, descending through If/Try blocks but not defs.

    Mirrors the RL003 helper so conditionally defined symbols (numba guards,
    try/except import fallbacks) are still part of the module's surface.
    """
    stack: list[ast.stmt] = list(reversed(module.body))
    while stack:
        statement = stack.pop()
        yield statement
        if isinstance(statement, ast.If):
            stack.extend(reversed(statement.body))
            stack.extend(reversed(statement.orelse))
        elif isinstance(statement, ast.Try):
            stack.extend(reversed(statement.body))
            stack.extend(reversed(statement.orelse))
            stack.extend(reversed(statement.finalbody))
            for handler in statement.handlers:
                stack.extend(reversed(handler.body))


#: A resolution result: ("function", FunctionInfo) | ("class", ClassInfo)
#: | ("global", ModuleGlobal) | ("module", ModuleSymbols).
Resolved = tuple


class ProjectSymbols:
    """The symbol tables of every linted file, cross-linked for resolution."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        self.modules: list[ModuleSymbols] = [ModuleSymbols(source) for source in sources]
        self.by_path: dict[str, ModuleSymbols] = {m.source.path: m for m in self.modules}
        # Every dotted suffix of a module's path maps to it, so absolute
        # imports resolve both for the installed package (repro.x.y) and for
        # fixture packages linted from an arbitrary directory root.
        self.by_suffix: dict[str, list[ModuleSymbols]] = {}
        for module in self.modules:
            parts = module.module_path.split(".")
            for start in range(len(parts)):
                suffix = ".".join(parts[start:])
                if suffix:
                    self.by_suffix.setdefault(suffix, []).append(module)
        self.functions_by_name: dict[str, list[FunctionInfo]] = {}
        for module in self.modules:
            for function in module.all_functions:
                self.functions_by_name.setdefault(function.name, []).append(function)
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        for module in self.modules:
            for name, info in module.classes.items():
                self.classes_by_name.setdefault(name, []).append(info)
        self._mark_function_mutations()

    # ----------------------------------------------------------- resolution
    def resolve_module(self, dotted: str) -> ModuleSymbols | None:
        """The linted module a dotted import path refers to, if any."""
        candidates = self.by_suffix.get(dotted)
        if not candidates:
            return None
        # Deterministic pick: the shortest (most specific suffix match wins
        # when the same suffix names several files, e.g. two fixture trees).
        return min(candidates, key=lambda module: (len(module.module_path), module.source.path))

    def resolve_name(
        self, module: ModuleSymbols, name: str, _seen: frozenset = frozenset()
    ) -> Resolved | None:
        """Resolve ``name`` in ``module`` to its defining symbol.

        Follows import aliases transitively -- including re-exports through
        package ``__init__.py`` files -- with a cycle guard, so mutually
        importing modules terminate with a conservative ``None``.
        """
        key = (module.source.path, name)
        if key in _seen:
            return None
        _seen = _seen | {key}
        if name in module.functions:
            return ("function", module.functions[name])
        if name in module.classes:
            return ("class", module.classes[name])
        if name in module.globals:
            return ("global", module.globals[name])
        alias = module.imports.get(name)
        if alias is None:
            return None
        target = self.resolve_module(alias.module)
        if alias.original is None:
            if target is not None:
                return ("module", target)
            return None
        if target is None:
            # ``from external import thing``: maybe the dotted path plus the
            # original segment names a linted module (``from a import b``
            # where a/b.py exists).
            submodule = self.resolve_module(f"{alias.module}.{alias.original}")
            if submodule is not None:
                return ("module", submodule)
            return None
        resolved = self.resolve_name(target, alias.original, _seen)
        if resolved is None:
            submodule = self.resolve_module(f"{alias.module}.{alias.original}")
            if submodule is not None:
                return ("module", submodule)
        return resolved

    def resolve_dotted(self, module: ModuleSymbols, dotted: str) -> Resolved | None:
        """Resolve a dotted chain ``a.b.c`` starting from a module's scope."""
        head, *rest = dotted.split(".")
        current = self.resolve_name(module, head)
        for part in rest:
            if current is None:
                return None
            kind, value = current
            if kind == "module":
                current = self.resolve_name(value, part)
            elif kind == "class":
                method = value.methods.get(part)
                current = ("function", method) if method is not None else None
            else:
                return None
        return current

    # ------------------------------------------------------- mutation marks
    def _mark_function_mutations(self) -> None:
        """Record which functions mutate or rebind which module globals."""
        for module in self.modules:
            for function in module.all_functions:
                declared_global = set()
                for node in ast.walk(function.node):
                    if isinstance(node, ast.Global):
                        declared_global.update(node.names)
                if declared_global:
                    for name in sorted(declared_global):
                        target = module.globals.get(name)
                        if target is None:
                            # ``global X`` can introduce X before any
                            # module-level binding exists.
                            target = ModuleGlobal(
                                name=name,
                                source=module.source,
                                node=function.node,
                                value=None,
                            )
                            module.globals[name] = target
                        target.global_rebound = True
                        target.function_mutators.append(function)
                locals_ = _assigned_locals(function.node)
                for node in _function_body_walk(function.node):
                    mutated = _mutated_global_name(node)
                    if mutated is None or mutated in locals_:
                        continue
                    target = module.globals.get(mutated)
                    if target is not None:
                        target.function_mutators.append(function)


def _function_body_walk(function: ast.FunctionDef | ast.AsyncFunctionDef):
    """Walk a function body without descending into nested defs/classes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _assigned_locals(function: ast.FunctionDef | ast.AsyncFunctionDef) -> set:
    """Names bound locally in a function (params, assignments, loops, withs)."""
    names = set()
    args = function.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    declared_global = set()
    for node in _function_body_walk(function):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_target_names(item.optional_vars))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.comprehension):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.NamedExpr,)) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names - declared_global


def _target_names(target: ast.expr) -> set:
    names = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.update(_target_names(element))
    elif isinstance(target, ast.Starred):
        names.update(_target_names(target.value))
    return names


def _mutated_global_name(node: ast.AST) -> str | None:
    """The bare name a statement mutates in place, if any.

    Covers ``NAME.append(...)`` (and the other mutating container methods),
    ``NAME[k] = v``, ``NAME[k] += v`` and ``del NAME[k]``.  Rebinding is
    handled separately through ``global`` statements (a plain ``NAME = ...``
    inside a function without one creates a local, not a mutation).
    """
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and isinstance(func.value, ast.Name)
        ):
            return func.value.id
    elif isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                return target.value.id
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                return target.value.id
    return None


# One memoized build per lint run: run_lint hands every cross-module checker
# the same ``sources`` list object, so identity keying is exact; only the
# latest build is retained to bound memory across many in-process runs.
_MEMO: dict = {}


def project_symbols(sources: Sequence[SourceFile]) -> ProjectSymbols:
    """The (memoized) project symbol table for one lint run's sources."""
    key = tuple((source.path, hash(source.text)) for source in sources)
    cached = _MEMO.get("entry")
    if cached is not None and cached[0] == key:
        return cached[1]
    built = ProjectSymbols(sources)
    _MEMO["entry"] = (key, built)
    return built
