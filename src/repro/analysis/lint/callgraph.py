"""Conservative static call graph over the project symbol table.

RL006 needs "every function transitively reachable from the worker entry
points" -- and *conservative* means erring toward reachability: a missed
edge is a false negative (a real fork-safety race the linter blesses),
while a spurious edge only costs a reviewed waiver.  The resolution ladder
for a call site, from precise to catch-all:

1. **Bare name** ``f(...)``: resolved through local scope, then the symbol
   table (module functions, import aliases, ``__init__`` re-exports).  A
   resolved project function gets a direct edge; a resolved class gets an
   edge to its ``__init__``.  A name bound to a local or module-level
   variable is a *dynamic* call (the callable's identity is data, not
   syntax).
2. **Dotted chain** ``mod.f(...)``: resolved through module aliases; a hit
   is a direct edge, a miss on an external module (``np.empty``) is
   ignored.
3. **Method call** ``obj.m(...)``: without type information the receiver
   is opaque, so the graph adds an edge to *every* project function or
   method named ``m`` (name-match fallback).  This is what routes
   ``sweep.run_shard(...)`` in the engine to every registered shard
   runner.
4. **Dynamic** (calls through parameters/locals, subscripted callables):
   the caller is marked dynamic, and reachability unions in every
   *address-taken* function -- any function referenced outside a call
   position (stored in a registry dict, passed as an argument, returned),
   any nested def (closures escape), and any function carrying a
   non-neutral decorator (``@register_sweep(...)`` hands the function to
   framework code by construction).

:func:`CallGraph.reachable_from` runs a BFS over those edges, recording a
witness path so RL006 diagnostics can say *which* entry point reaches the
offending function.
"""

from __future__ import annotations

import ast
import builtins
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.lint.symbols import (
    FunctionInfo,
    ProjectSymbols,
    _assigned_locals,
    _function_body_walk,
    _toplevel_statements,
    dotted_name,
)

#: Names the interpreter provides without any import; calling one is not a
#: dynamic dispatch (``sorted(...)``, ``print(...)`` resolve statically).
BUILTIN_NAMES = frozenset(dir(builtins))

#: Decorators that do not take the function's address for later dynamic
#: dispatch (the function stays reachable only through its own name).
NEUTRAL_DECORATORS = frozenset(
    {
        "property",
        "staticmethod",
        "classmethod",
        "abstractmethod",
        "cached_property",
        "overload",
        "wraps",
        "setter",
        "getter",
        "deleter",
    }
)


@dataclass
class CallGraph:
    """Edges between function qualnames, plus the dynamic/address-taken sets."""

    project: ProjectSymbols
    edges: dict[str, list[str]] = field(default_factory=dict)
    #: Functions containing at least one unresolvable (dynamic) call.
    dynamic_callers: set[str] = field(default_factory=set)
    #: Functions whose address escapes into data (see module docstring).
    address_taken: set[str] = field(default_factory=set)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def reachable_from(self, entries: list[str]) -> dict[str, tuple[str, str | None]]:
        """BFS closure of ``entries`` (function qualnames).

        Returns ``{qualname: (entry_qualname, parent_qualname)}`` -- which
        entry point first reached each function and through whom, for
        diagnostic messages.  Once any reached function makes a dynamic
        call, every address-taken function joins the frontier (attributed
        to that caller).
        """
        reached: dict[str, tuple[str, str | None]] = {}
        queue: deque[str] = deque()
        for entry in entries:
            if entry in self.functions and entry not in reached:
                reached[entry] = (entry, None)
                queue.append(entry)
        dynamic_expanded = False
        while queue:
            current = queue.popleft()
            entry = reached[current][0]
            for callee in self.edges.get(current, ()):
                if callee not in reached:
                    reached[callee] = (entry, current)
                    queue.append(callee)
            if current in self.dynamic_callers and not dynamic_expanded:
                dynamic_expanded = True
                for taken in sorted(self.address_taken):
                    if taken not in reached:
                        reached[taken] = (entry, current)
                        queue.append(taken)
        return reached

    def witness_path(self, reached: dict, qualname: str, limit: int = 12) -> list[str]:
        """The BFS parent chain from an entry point down to ``qualname``."""
        chain = [qualname]
        while len(chain) < limit:
            parent = reached.get(chain[-1], (None, None))[1]
            if parent is None:
                break
            chain.append(parent)
        return list(reversed(chain))


def build_call_graph(project: ProjectSymbols) -> CallGraph:
    """Build the conservative call graph for one project symbol table."""
    graph = CallGraph(project=project)
    for module in project.modules:
        for function in module.all_functions:
            graph.functions[function.qualname] = function
    for module in project.modules:
        for function in module.all_functions:
            _collect_edges(graph, function)
            _collect_address_taken(graph, function)
        _collect_module_level_escapes(graph, module)
    return graph


def _add_edge(graph: CallGraph, caller: FunctionInfo, callee: FunctionInfo) -> None:
    graph.edges.setdefault(caller.qualname, []).append(callee.qualname)


def _collect_edges(graph: CallGraph, function: FunctionInfo) -> None:
    project = graph.project
    module = function.module
    locals_ = _assigned_locals(function.node)
    for node in _function_body_walk(function.node):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if isinstance(callee, ast.Name):
            if callee.id in locals_:
                graph.dynamic_callers.add(function.qualname)
                continue
            resolved = project.resolve_name(module, callee.id)
            if resolved is None:
                if callee.id not in BUILTIN_NAMES:
                    # Not a local, not resolvable, not a builtin: a closure
                    # variable from an enclosing scope -- a dynamic call
                    # (this is how registry shims dispatch shard runners).
                    graph.dynamic_callers.add(function.qualname)
                continue
            kind, value = resolved
            if kind == "function":
                _add_edge(graph, function, value)
            elif kind == "class":
                init = value.methods.get("__init__")
                if init is not None:
                    _add_edge(graph, function, init)
                post_init = value.methods.get("__post_init__")
                if post_init is not None:
                    _add_edge(graph, function, post_init)
            elif kind == "global":
                # Calling through a module-level binding whose value is data
                # (a callable stored in a variable): dynamic.
                graph.dynamic_callers.add(function.qualname)
        elif isinstance(callee, ast.Attribute):
            _attribute_call_edges(graph, function, callee, locals_)
        else:
            # Subscripted / computed callable: HANDLERS[key](...), f()(...)
            graph.dynamic_callers.add(function.qualname)


def _attribute_call_edges(
    graph: CallGraph, function: FunctionInfo, callee: ast.Attribute, locals_: set
) -> None:
    project = graph.project
    dotted = dotted_name(callee)
    if dotted is not None:
        head = dotted.split(".")[0]
        if head not in locals_ and head != "self":
            resolved = project.resolve_dotted(function.module, dotted)
            if resolved is not None:
                kind, value = resolved
                if kind == "function":
                    _add_edge(graph, function, value)
                    return
                if kind == "class":
                    init = value.methods.get("__init__")
                    if init is not None:
                        _add_edge(graph, function, init)
                    return
                if kind == "global":
                    graph.dynamic_callers.add(function.qualname)
                    return
            head_resolution = project.resolve_name(function.module, head)
            if head_resolution is not None and head_resolution[0] == "module":
                # A dotted path rooted at a *linted* module that still did not
                # resolve (getattr-style indirection): stay conservative.
                graph.dynamic_callers.add(function.qualname)
                return
            if head in function.module.imports:
                return  # External library attribute (np.empty, os.path.join).
    # Method call on an opaque receiver (self.x.m(...), sweep.run_shard(...)):
    # name-match fallback to every project function with that method name.
    matches = project.functions_by_name.get(callee.attr, ())
    for match in matches:
        _add_edge(graph, function, match)


def _collect_address_taken(graph: CallGraph, function: FunctionInfo) -> None:
    """Mark functions whose address escapes from inside ``function``."""
    project = graph.project
    module = function.module
    locals_ = _assigned_locals(function.node)
    if function.nested:
        # A nested def is a closure: its address escapes by construction
        # (returned, stored, or handed to a decorator by the enclosing scope).
        graph.address_taken.add(function.qualname)
    for decorator in function.node.decorator_list:
        name = dotted_name(decorator)
        leaf = (name or "").split(".")[-1]
        if leaf and leaf not in NEUTRAL_DECORATORS:
            graph.address_taken.add(function.qualname)
            resolved = project.resolve_name(module, (name or "").split(".")[0])
            if resolved is not None and resolved[0] == "function":
                _add_edge(graph, function, resolved[1])
    nodes = list(_function_body_walk(function.node))
    _mark_escapes(graph, module, nodes, locals_)


def _collect_module_level_escapes(graph: CallGraph, module) -> None:
    """Mark functions referenced by module-level data (registries, tables)."""
    nodes: list[ast.AST] = []
    for statement in _toplevel_statements(module.source.tree):
        if isinstance(statement, (ast.If, ast.Try)):
            continue  # Their children are yielded separately.
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Decorator expressions still run at module level; class bodies
            # (registry tables, dataclass defaults) can store functions too.
            for decorator in statement.decorator_list:
                nodes.extend(ast.walk(decorator))
            if isinstance(statement, ast.ClassDef):
                for child in statement.body:
                    if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        nodes.extend(ast.walk(child))
            continue
        nodes.extend(ast.walk(statement))
    _mark_escapes(graph, module, nodes, locals_=set())


def _mark_escapes(graph: CallGraph, module, nodes: list, locals_: set) -> None:
    """Mark project functions referenced outside call-callee position.

    The callee expression of each Call node is excluded (calling a function
    does not take its address), but its arguments -- and any other Load
    reference -- do escape.
    """
    callee_positions = {id(node.func) for node in nodes if isinstance(node, ast.Call)}
    for node in nodes:
        if id(node) in callee_positions:
            continue
        if isinstance(node, ast.Name):
            if not isinstance(node.ctx, ast.Load) or node.id in locals_:
                continue
            resolved = graph.project.resolve_name(module, node.id)
        elif isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is None or dotted.split(".")[0] in locals_:
                continue
            resolved = graph.project.resolve_dotted(module, dotted)
        else:
            continue
        if resolved is not None and resolved[0] == "function":
            graph.address_taken.add(resolved[1].qualname)


# Memoized per symbol table (which is itself memoized per lint run).
_MEMO: dict = {}


def call_graph(project: ProjectSymbols) -> CallGraph:
    """The (memoized) call graph for a project symbol table."""
    cached = _MEMO.get("entry")
    if cached is not None and cached[0] is project:
        return cached[1]
    built = build_call_graph(project)
    _MEMO["entry"] = (project, built)
    return built
