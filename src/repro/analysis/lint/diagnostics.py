"""Diagnostic records and report assembly for the invariant linter.

A diagnostic is one finding at one source location, formatted the way every
other compiler-shaped tool prints them -- ``path:line:col CODE message`` -- so
editors and CI annotations can parse the output without custom glue.  The
:class:`LintReport` gathers every diagnostic of a run (including the waived
ones: a waiver hides a finding from the exit code, not from the record) plus
the run's inputs, and renders either the human text format or the JSON
document the nightly workflow uploads as an artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one checker at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    waived: bool = False
    waiver_reason: str | None = None

    def format(self) -> str:
        """The canonical one-line rendering (``path:line:col CODE message``)."""
        suffix = f"  [waived: {self.waiver_reason}]" if self.waived else ""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}{suffix}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def as_dict(self) -> dict:
        """JSON-ready form (schema asserted by tests/test_lint.py)."""
        record: dict = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "waived": self.waived,
        }
        if self.waived:
            record["waiver_reason"] = self.waiver_reason
        return record


@dataclass
class LintReport:
    """Everything one lint run produced, in deterministic order."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    selected: tuple[str, ...] = ()
    files_checked: int = 0

    @property
    def active(self) -> list[Diagnostic]:
        """Findings that fail the run (not suppressed by a waiver)."""
        return [diagnostic for diagnostic in self.diagnostics if not diagnostic.waived]

    @property
    def waived(self) -> list[Diagnostic]:
        """Findings suppressed by an inline waiver (still recorded)."""
        return [diagnostic for diagnostic in self.diagnostics if diagnostic.waived]

    @property
    def ok(self) -> bool:
        """True when the run should exit 0."""
        return not self.active

    def finalize(self) -> "LintReport":
        """Sort diagnostics into the canonical (path, line, col, code) order."""
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    def format_github(self) -> str:
        """GitHub Actions workflow commands: one ``::error`` per active finding.

        The annotation format (``::error file=...,line=...,col=...::message``)
        makes findings show up inline on the PR diff; waived findings are
        deliberately omitted (they do not fail the job).  The trailing summary
        line is plain text, which Actions passes through untouched.
        """
        lines = [
            f"::error file={diagnostic.path},line={diagnostic.line},"
            f"col={diagnostic.col}::{diagnostic.code} {diagnostic.message}"
            for diagnostic in self.active
        ]
        lines.append(
            f"lint: {self.files_checked} file(s), {len(self.active)} finding(s), "
            f"{len(self.waived)} waived"
        )
        return "\n".join(lines)

    def format_text(self, show_waived: bool = False) -> str:
        """Human-readable report: active findings, then a one-line summary."""
        lines = [diagnostic.format() for diagnostic in self.active]
        if show_waived:
            lines.extend(diagnostic.format() for diagnostic in self.waived)
        lines.append(
            f"lint: {self.files_checked} file(s), {len(self.active)} finding(s), "
            f"{len(self.waived)} waived"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """The JSON artifact schema (``version`` guards future changes)."""
        return {
            "version": 1,
            "selected": list(self.selected),
            "files_checked": self.files_checked,
            "summary": {
                "active": len(self.active),
                "waived": len(self.waived),
                "ok": self.ok,
            },
            "diagnostics": [diagnostic.as_dict() for diagnostic in self.diagnostics],
        }
