"""Static invariant linter for the reproduction (``repro.analysis.lint``).

The repository's correctness rests on invariants that ordinary linters do not
know about: execution planes must stay bit-identical (DESIGN.md §9), message
fates and RNG fork labels must be order- and composition-independent, and
``RoundMetrics`` may only move through the accounting layer.  This package
enforces them *statically* -- at review time, on every PR -- with an
AST-based checker framework (:mod:`repro.analysis.lint.framework`), inline
reviewed waivers that fail the build when they go stale
(:mod:`repro.analysis.lint.waivers`), a whole-program resolution layer
(symbol table, import resolver, conservative call graph, data-flow pass:
:mod:`~repro.analysis.lint.symbols` / :mod:`~repro.analysis.lint.callgraph`
/ :mod:`~repro.analysis.lint.dataflow`), and nine project-specific rules:

========  ==================================================================
RL001     nondeterminism sources (``random.*``, wall clocks, ``os.urandom``,
          global ``numpy.random``, ``id()``-keyed ordering)
RL002     unordered-iteration hazards (set iteration without ``sorted``)
RL003     plane parity (compiled kernels mirror the ``PLANE_KERNELS``
          registries of their oracle modules, matching parameter names)
RL004     metrics accounting (no direct ``RoundMetrics`` field writes
          outside the accounting layer)
RL005     RNG fork-label discipline (literal, canonical ``area:purpose``,
          globally unique)
RL006     fork safety (module-level mutable state reachable from the
          ``ExperimentEngine`` worker entry points)
RL007     njit subset (``@njit`` kernels validated against a conservative
          nopython allowlist, with numba never imported)
RL008     cache-invalidation discipline (attribute writes on cache-backed
          classes bump a version or call an invalidation hook)
RL009     docstring discipline (public serving/session surface documented,
          query methods cross-referencing their DESIGN.md section)
RL090/91  malformed / stale waiver comments
RL000     unreadable / unparsable file (syntax error)
========  ==================================================================

Run it as ``python -m repro.cli lint [--format json|github] [--select
CODES] [--waiver-report]``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.lint.checkers import default_checkers
from repro.analysis.lint.diagnostics import Diagnostic, LintReport
from repro.analysis.lint.framework import (
    Checker,
    SourceFile,
    iter_source_files,
    load_source,
    run_lint,
)
from repro.analysis.lint.waivers import Waiver, collect_waivers

#: The default target of a bare ``repro.cli lint`` invocation.
DEFAULT_PATHS = ("src/repro",)


def lint_paths(
    paths: Sequence[str] | None = None,
    select: Sequence[str] | None = None,
) -> LintReport:
    """Run every registered checker (or the ``select`` subset) over ``paths``."""
    return run_lint(list(paths or DEFAULT_PATHS), default_checkers(), select=select)


def waiver_inventory(paths: Sequence[str] | None = None) -> list[Waiver]:
    """Every well-formed waiver comment under ``paths``, in file/line order.

    The audit view behind ``repro.cli lint --waiver-report``: as the rule set
    grows, the reviewed exceptions stay enumerable in one place (malformed
    waivers are RL090 findings of a normal lint run, not listed here).
    """
    waivers: list[Waiver] = []
    for path in iter_source_files(list(paths or DEFAULT_PATHS)):
        source, _parse_error = load_source(path)
        if source is None:
            continue
        file_waivers, _malformed = collect_waivers(source.path, source.text)
        waivers.extend(file_waivers)
    return waivers


__all__ = [
    "DEFAULT_PATHS",
    "Checker",
    "Diagnostic",
    "LintReport",
    "SourceFile",
    "Waiver",
    "collect_waivers",
    "default_checkers",
    "iter_source_files",
    "lint_paths",
    "load_source",
    "run_lint",
    "waiver_inventory",
]
