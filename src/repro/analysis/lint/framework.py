"""Checker framework: source loading, AST visiting, and run orchestration.

The linter is deliberately *static*: every checker reads the AST (plus the
raw text for waiver comments) and nothing ever imports or executes the code
under analysis, so a lint run is safe on broken branches and costs
milliseconds per file.  Checkers come in two granularities:

* **per-file** -- override :meth:`Checker.check`; called once per parsed
  source file (RL001, RL002, RL004), and
* **cross-module** -- override :meth:`Checker.check_project`; called once
  with every parsed file, for invariants no single file can witness (RL003
  plane parity, RL005 global fork-label uniqueness).

:func:`run_lint` wires it together: discover files, parse, run the selected
checkers, then fold in the waiver layer (:mod:`repro.analysis.lint.waivers`)
so suppressed findings stay recorded and stale waivers fail the run.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.analysis.lint.diagnostics import Diagnostic, LintReport
from repro.analysis.lint.waivers import apply_waivers, collect_waivers

#: Reported when a file cannot be read or parsed at all.
PARSE_ERROR = "RL000"


@dataclass
class SourceFile:
    """One parsed source file handed to the checkers."""

    path: str  # Display path (as discovered, normalized to forward slashes).
    text: str
    tree: ast.Module

    def suffix_matches(self, suffix: str) -> bool:
        """Whether the display path ends with ``suffix`` (segment-aligned)."""
        normalized = self.path.replace(os.sep, "/")
        return normalized == suffix or normalized.endswith("/" + suffix)


class Checker:
    """Base class: one rule code, checked per file and/or across the project."""

    code: str = "RLXXX"
    name: str = "unnamed"
    description: str = ""

    def check(self, source: SourceFile) -> Iterable[Diagnostic]:
        """Per-file findings (default: none)."""
        return ()

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Diagnostic]:
        """Cross-module findings over every linted file (default: none)."""
        return ()

    def diagnostic(self, source: SourceFile, node: ast.AST, message: str) -> Diagnostic:
        """A finding anchored at an AST node (1-based line, 1-based column)."""
        return Diagnostic(source.path, node.lineno, node.col_offset + 1, self.code, message)


def iter_source_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` file paths."""
    found: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                found.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        elif path.endswith(".py"):
            found.append(path)
    return sorted(dict.fromkeys(name.replace(os.sep, "/") for name in found))


def load_source(path: str) -> tuple[SourceFile | None, Diagnostic | None]:
    """Read and parse one file; any failure becomes an RL000 diagnostic.

    A broken file must never take the whole run down with a traceback: a
    syntax error, an undecodable byte sequence, a null byte, or an unreadable
    path each produce one ``RL000 path:line:col syntax error`` finding (exit
    1) and the run continues over the remaining files.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        tree = ast.parse(text, filename=path)
    except SyntaxError as error:
        return None, Diagnostic(
            path,
            error.lineno or 1,
            error.offset or 1,
            PARSE_ERROR,
            f"syntax error: {error.msg}",
        )
    except (UnicodeDecodeError, ValueError, OSError) as error:
        # ValueError covers null bytes, which ast.parse rejects pre-parse.
        return None, Diagnostic(path, 1, 1, PARSE_ERROR, f"syntax error: {error}")
    return SourceFile(path=path, text=text, tree=tree), None


def run_lint(
    paths: Sequence[str],
    checkers: Sequence[Checker],
    select: Sequence[str] | None = None,
) -> LintReport:
    """Run ``checkers`` (optionally filtered to ``select`` codes) over ``paths``."""
    if select:
        selected = tuple(code.strip().upper() for code in select if code.strip())
        active_checkers = [checker for checker in checkers if checker.code in selected]
        unknown = sorted(set(selected) - {checker.code for checker in checkers})
        if unknown:
            raise ValueError(f"unknown checker code(s): {', '.join(unknown)}")
    else:
        active_checkers = list(checkers)
        selected = tuple(checker.code for checker in checkers)

    report = LintReport(selected=selected)
    diagnostics: list[Diagnostic] = []
    waivers = []
    sources: list[SourceFile] = []
    for path in iter_source_files(paths):
        source, parse_error = load_source(path)
        report.files_checked += 1
        if parse_error is not None:
            diagnostics.append(parse_error)
            continue
        sources.append(source)
        file_waivers, malformed = collect_waivers(source.path, source.text)
        waivers.extend(file_waivers)
        diagnostics.extend(malformed)
        for checker in active_checkers:
            diagnostics.extend(checker.check(source))
    for checker in active_checkers:
        diagnostics.extend(checker.check_project(sources))

    validated = {checker.code for checker in active_checkers}
    report.diagnostics = apply_waivers(diagnostics, waivers, validated)
    return report.finalize()
