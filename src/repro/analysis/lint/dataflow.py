"""Per-function data-flow facts: global uses and instance-attribute writes.

This is the second half of the whole-program layer: where
:mod:`repro.analysis.lint.callgraph` answers *who runs*, this pass answers
*what each function touches*.  For every function the project symbol table
knows about, :func:`function_facts` extracts:

* **module-global uses** -- every read or mutation of a module-level
  binding, resolved through local-shadowing rules and import aliases, so
  ``from repro.experiments.runner import _REGISTRY`` followed by a read in
  another module still attributes the use to the defining module (RL006);
* **instance-attribute writes** -- ``self.x = ...`` / ``obj.x += ...``
  sites with the receiver name, plus which attributes the function bumps
  and which methods it calls on each receiver (RL008's raw material); and
* **local type bindings** -- ``v = ClassName(...)`` constructions and
  ``v: ClassName`` annotations resolved against the symbol table, so RL008
  can police writes through variables statically known to hold a
  cache-registered class.

Everything is syntactic and flow-insensitive: one pass over the function
body, no fixpoints, which keeps the full-tree lint inside its CI wall-clock
budget.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.symbols import (
    MUTATING_METHODS,
    FunctionInfo,
    ModuleGlobal,
    ProjectSymbols,
    _assigned_locals,
    _function_body_walk,
)


@dataclass
class GlobalUse:
    """One read or mutation of a module-level binding inside a function."""

    target: ModuleGlobal
    node: ast.AST
    kind: str  # "read" | "write"


@dataclass
class AttributeWrite:
    """One ``base.attr = ...`` / ``base.attr op= ...`` site."""

    base: str  # "self" or the local variable name.
    attr: str
    node: ast.stmt
    augmented: bool


@dataclass
class FunctionFacts:
    """Everything one function reads, writes, and calls, resolved statically."""

    function: FunctionInfo
    global_uses: list[GlobalUse] = field(default_factory=list)
    attribute_writes: list[AttributeWrite] = field(default_factory=list)
    #: Method names invoked per receiver: {"self": {"invalidate", ...}, ...}.
    method_calls: dict[str, set] = field(default_factory=dict)
    #: Local variable -> resolved project class name (construction/annotation).
    local_types: dict[str, str] = field(default_factory=dict)


def function_facts(project: ProjectSymbols, function: FunctionInfo) -> FunctionFacts:
    """Extract the data-flow facts of one function (see module docstring)."""
    facts = FunctionFacts(function=function)
    module = function.module
    locals_ = _assigned_locals(function.node)
    declared_global: set = set()
    for node in _function_body_walk(function.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    _infer_local_types(project, function, facts)

    written_nodes: set = set()
    for node in _function_body_walk(function.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            augmented = isinstance(node, ast.AugAssign)
            for target in targets:
                if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
                    facts.attribute_writes.append(
                        AttributeWrite(target.value.id, target.attr, node, augmented)
                    )
                elif isinstance(target, ast.Name):
                    name = target.id
                    if name in declared_global:
                        resolved = module.globals.get(name)
                        if resolved is not None:
                            facts.global_uses.append(GlobalUse(resolved, node, "write"))
                            written_nodes.add(id(node))
                elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                    resolved = _resolve_global(project, module, target.value.id, locals_)
                    if resolved is not None:
                        facts.global_uses.append(GlobalUse(resolved, node, "write"))
                        written_nodes.add(id(target.value))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                    resolved = _resolve_global(project, module, target.value.id, locals_)
                    if resolved is not None:
                        facts.global_uses.append(GlobalUse(resolved, node, "write"))
                        written_nodes.add(id(target.value))
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                receiver = func.value.id
                facts.method_calls.setdefault(receiver, set()).add(func.attr)
                if func.attr in MUTATING_METHODS:
                    resolved = _resolve_global(project, module, receiver, locals_)
                    if resolved is not None:
                        facts.global_uses.append(GlobalUse(resolved, node, "write"))
                        written_nodes.add(id(func.value))

    # Reads: every remaining Load of a name resolving to a module global
    # (directly or through an import alias), not shadowed by a local.
    for node in _function_body_walk(function.node):
        if not isinstance(node, ast.Name) or not isinstance(node.ctx, ast.Load):
            continue
        if id(node) in written_nodes:
            continue
        resolved = _resolve_global(project, module, node.id, locals_)
        if resolved is not None:
            facts.global_uses.append(GlobalUse(resolved, node, "read"))
    return facts


def _resolve_global(
    project: ProjectSymbols, module, name: str, locals_: set
) -> ModuleGlobal | None:
    """Resolve a bare name to the module-level binding it denotes, if any."""
    if name in locals_:
        return None
    resolved = project.resolve_name(module, name)
    if resolved is not None and resolved[0] == "global":
        return resolved[1]
    return None


def _infer_local_types(
    project: ProjectSymbols, function: FunctionInfo, facts: FunctionFacts
) -> None:
    """Bind local names to project class names where statically evident."""
    module = function.module
    args = function.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        class_name = _annotation_class(project, module, arg.annotation)
        if class_name is not None:
            facts.local_types[arg.arg] = class_name
    for node in _function_body_walk(function.node):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            class_name = _annotation_class(project, module, node.annotation)
            if class_name is not None:
                facts.local_types[node.target.id] = class_name
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            if isinstance(callee, ast.Name):
                resolved = project.resolve_name(module, callee.id)
                if resolved is not None and resolved[0] == "class":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            facts.local_types[target.id] = resolved[1].name


def _annotation_class(project: ProjectSymbols, module, annotation) -> str | None:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        name = annotation.value.strip().strip('"')
    elif isinstance(annotation, ast.Name):
        name = annotation.id
    else:
        return None
    resolved = project.resolve_name(module, name)
    if resolved is not None and resolved[0] == "class":
        return resolved[1].name
    return None
