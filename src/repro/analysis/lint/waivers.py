"""Inline waivers: reviewed, reasoned suppressions that cannot go stale.

A waiver is a comment of the form::

    risky_call()  # repro-lint: waive[RL001] -- wall-clock display only

or, standing alone on the line *above* the finding it suppresses::

    # repro-lint: waive[RL001,RL002] -- seeded entropy fallback
    risky_call()

Three properties keep waivers honest, all enforced here:

* **A reason is mandatory.**  ``waive[RL001]`` with no ``-- reason`` is a
  malformed waiver (``RL090``): the comment exists to record a reviewed
  decision, and a decision without a rationale is not reviewable.
* **Waivers are validated as still-needed.**  A waiver whose codes match no
  diagnostic on its target line is *stale* (``RL091``) and fails the run:
  when the underlying finding is fixed, the waiver must be deleted with it,
  so suppressions never outlive their reason.
* **Waivers are per-line and per-code.**  A waiver only suppresses the codes
  it names, only on the line it targets -- there is no file-wide or blanket
  waiver form, by design.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.lint.diagnostics import Diagnostic

#: Matches the waiver comment body.  The codes group is parsed leniently so a
#: malformed list can be reported as RL090 rather than silently ignored.
WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*waive\[(?P<codes>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S)\s*)?$"
)

#: Anything that merely *mentions* the marker, used to catch typo'd waivers
#: (e.g. ``waive(RL001)``) that WAIVER_RE would not match.
MARKER_RE = re.compile(r"#\s*repro-lint:")

CODE_RE = re.compile(r"^RL\d{3}$")

MALFORMED_WAIVER = "RL090"
STALE_WAIVER = "RL091"


@dataclass
class Waiver:
    """One parsed waiver comment."""

    path: str
    comment_line: int
    target_line: int
    col: int
    codes: tuple[str, ...]
    reason: str
    #: Codes that suppressed at least one diagnostic (filled during matching).
    used_codes: set = field(default_factory=set)


def collect_waivers(path: str, source: str) -> tuple[list[Waiver], list[Diagnostic]]:
    """Parse every waiver comment in ``source``.

    Returns the well-formed waivers plus RL090 diagnostics for malformed
    ones.  A comment that has code before it on its line targets that line; a
    comment alone on its line targets the next line.
    """
    waivers: list[Waiver] = []
    malformed: list[Diagnostic] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return [], []  # The framework reports unparsable files separately.
    for token in tokens:
        if token.type != tokenize.COMMENT or not MARKER_RE.search(token.string):
            continue
        line_number, col = token.start
        standalone = not token.line[: col].strip()
        target_line = line_number + 1 if standalone else line_number
        match = WAIVER_RE.search(token.string)
        if match is None:
            malformed.append(
                Diagnostic(
                    path,
                    line_number,
                    col + 1,
                    MALFORMED_WAIVER,
                    "malformed repro-lint comment: expected "
                    "'# repro-lint: waive[CODE] -- reason'",
                )
            )
            continue
        codes = tuple(code.strip() for code in match.group("codes").split(",") if code.strip())
        reason = match.group("reason")
        bad_codes = [code for code in codes if not CODE_RE.match(code)]
        if not codes or bad_codes:
            malformed.append(
                Diagnostic(
                    path,
                    line_number,
                    col + 1,
                    MALFORMED_WAIVER,
                    f"waiver names no valid RLxxx codes: {match.group('codes')!r}",
                )
            )
            continue
        if not reason:
            malformed.append(
                Diagnostic(
                    path,
                    line_number,
                    col + 1,
                    MALFORMED_WAIVER,
                    f"waiver for {', '.join(codes)} is missing its '-- reason'",
                )
            )
            continue
        waivers.append(Waiver(path, line_number, target_line, col + 1, codes, reason))
    return waivers, malformed


def apply_waivers(
    diagnostics: list[Diagnostic],
    waivers: list[Waiver],
    validated_codes: set,
) -> list[Diagnostic]:
    """Suppress waived diagnostics and report stale waivers.

    ``validated_codes`` is the set of checker codes that actually ran (the
    ``--select`` filter): a waiver naming only codes outside it cannot be
    judged stale, because its checker never looked.
    """
    by_location: dict[tuple[str, int], list[Waiver]] = {}
    for waiver in waivers:
        by_location.setdefault((waiver.path, waiver.target_line), []).append(waiver)

    result: list[Diagnostic] = []
    for diagnostic in diagnostics:
        matched = None
        for waiver in by_location.get((diagnostic.path, diagnostic.line), []):
            if diagnostic.code in waiver.codes:
                matched = waiver
                break
        if matched is not None:
            matched.used_codes.add(diagnostic.code)
            result.append(
                Diagnostic(
                    diagnostic.path,
                    diagnostic.line,
                    diagnostic.col,
                    diagnostic.code,
                    diagnostic.message,
                    waived=True,
                    waiver_reason=matched.reason,
                )
            )
        else:
            result.append(diagnostic)

    for waiver in waivers:
        judged = [code for code in waiver.codes if code in validated_codes]
        unused = [code for code in judged if code not in waiver.used_codes]
        if judged and unused:
            result.append(
                Diagnostic(
                    waiver.path,
                    waiver.comment_line,
                    waiver.col,
                    STALE_WAIVER,
                    f"stale waiver: no {', '.join(unused)} finding on line "
                    f"{waiver.target_line}; delete the waiver or the code it excused",
                )
            )
    return result
