"""RL007: ``@njit`` kernels must stay inside a conservative nopython subset.

The compiled plane (``graphs/compiled.py``, ``hybrid/compiled.py``) only
JITs on machines where numba imports; the pure-numpy CI leg never compiles
the kernels at all, so a construct numba would reject in nopython mode --
``**kwargs``, a closure over a mutable global, an f-string, a call into
uncompiled project code -- sails through every test there and fails (or
silently falls back, costing the entire speedup) only on accelerated
installs.  This rule closes that gap *statically*: every function carrying
an ``njit``/``_njit`` decorator is validated against an allowlist of
constructs the nopython frontend is known to support, with no numba import
anywhere:

* no ``*args`` / ``**kwargs``;
* statements limited to assignments, loops, conditionals, returns and
  asserts (no try/with/yield/lambda/nested defs/f-strings/comprehensions);
* name loads limited to parameters and locals, a small builtin allowlist
  (``range``, ``len``, ``min``, ...), other ``@njit`` functions, and
  module-level *immutable constants* -- resolved through the import
  resolver, so closing over ``_PHI`` re-exported from another module is
  recognized as safe while closing over a dict is flagged;
* ``np.*`` / ``math.*`` attributes limited to an allowlist of nopython-
  supported entries, and attributes on locals limited to array attributes
  (``shape``, ``dtype``, ``astype``, ...);
* calls limited to allowlisted builtins/numpy and other njit functions.

False positives are possible (the allowlist is deliberately narrower than
numba); they are the cheap failure mode and take a reasoned waiver.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker, SourceFile
from repro.analysis.lint.symbols import (
    FunctionInfo,
    ProjectSymbols,
    _assigned_locals,
    dotted_name,
    project_symbols,
)

#: Decorator leaf names that mark a function as a numba nopython kernel.
NJIT_DECORATORS = frozenset({"njit", "_njit"})

#: Builtins the nopython frontend supports and the kernels may call/read.
ALLOWED_BUILTINS = frozenset(
    {"range", "len", "min", "max", "abs", "int", "float", "bool", "enumerate", "zip", "round"}
)

#: ``np.X`` entries allowed inside kernels (dtypes, constructors, ufuncs).
ALLOWED_NUMPY = frozenset(
    {
        "empty",
        "zeros",
        "ones",
        "full",
        "arange",
        "inf",
        "nan",
        "int8",
        "int16",
        "int32",
        "int64",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "float32",
        "float64",
        "bool_",
        "argsort",
        "isfinite",
        "isnan",
        "isinf",
        "sqrt",
        "floor",
        "ceil",
        "minimum",
        "maximum",
        "abs",
    }
)

#: ``math.X`` entries allowed inside kernels.
ALLOWED_MATH = frozenset({"sqrt", "floor", "ceil", "log", "log2", "exp", "inf", "nan", "pi"})

#: Attributes allowed on local (array-typed) values.
ALLOWED_ARRAY_ATTRS = frozenset(
    {"shape", "size", "ndim", "dtype", "T", "astype", "copy", "sum", "min", "max", "fill"}
)

#: Statement types the subset accepts.
ALLOWED_STATEMENTS = (
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.For,
    ast.While,
    ast.If,
    ast.Return,
    ast.Expr,
    ast.Pass,
    ast.Break,
    ast.Continue,
    ast.Assert,
)

#: External modules kernels may draw attributes from, with their allowlists.
EXTERNAL_MODULE_ALLOWLISTS = {"numpy": ALLOWED_NUMPY, "math": ALLOWED_MATH}


def is_njit_function(function: FunctionInfo) -> bool:
    """Whether a function carries an ``njit``-style decorator."""
    for name in function.decorator_names:
        if name and name.split(".")[-1] in NJIT_DECORATORS:
            return True
    return False


class NjitSubsetChecker(Checker):
    code = "RL007"
    name = "njit-subset"
    description = (
        "@njit kernels must stay inside the statically-validated nopython "
        "subset so JIT failures cannot hide behind the pure-numpy CI leg"
    )

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Diagnostic]:
        project = project_symbols(sources)
        kernels: list[FunctionInfo] = []
        njit_qualnames = set()
        for module in project.modules:
            for function in module.all_functions:
                if is_njit_function(function):
                    kernels.append(function)
                    njit_qualnames.add(function.qualname)
        for kernel in kernels:
            validator = _KernelValidator(self, project, kernel, njit_qualnames)
            yield from validator.validate()


class _KernelValidator:
    """One kernel's walk through the allowlist (collects diagnostics)."""

    def __init__(
        self,
        checker: NjitSubsetChecker,
        project: ProjectSymbols,
        kernel: FunctionInfo,
        njit_qualnames: set,
    ) -> None:
        self.checker = checker
        self.project = project
        self.kernel = kernel
        self.njit_qualnames = njit_qualnames
        self.locals_ = _assigned_locals(kernel.node)
        self.findings: list[Diagnostic] = []

    def _flag(self, node: ast.AST, reason: str) -> None:
        self.findings.append(
            self.checker.diagnostic(
                self.kernel.source,
                node,
                f"@njit kernel '{self.kernel.name}': {reason}",
            )
        )

    def validate(self) -> list[Diagnostic]:
        node = self.kernel.node
        if isinstance(node, ast.AsyncFunctionDef):
            self._flag(node, "async functions cannot compile in nopython mode")
            return self.findings
        if node.args.vararg is not None:
            self._flag(node, "*args is not supported in nopython mode")
        if node.args.kwarg is not None:
            self._flag(node, "**kwargs is not supported in nopython mode")
        for statement in node.body:
            self._statement(statement)
        return self.findings

    # ---------------------------------------------------------- statements
    def _statement(self, statement: ast.stmt) -> None:
        if not isinstance(statement, ALLOWED_STATEMENTS):
            self._flag(
                statement,
                f"statement '{type(statement).__name__}' is outside the nopython subset",
            )
            return
        if isinstance(statement, ast.For):
            self._target(statement.target)
            self._expression(statement.iter)
            for child in [*statement.body, *statement.orelse]:
                self._statement(child)
        elif isinstance(statement, ast.While):
            self._expression(statement.test)
            for child in [*statement.body, *statement.orelse]:
                self._statement(child)
        elif isinstance(statement, ast.If):
            self._expression(statement.test)
            for child in [*statement.body, *statement.orelse]:
                self._statement(child)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                self._target(target)
            self._expression(statement.value)
        elif isinstance(statement, ast.AugAssign):
            self._target(statement.target)
            self._expression(statement.value)
        elif isinstance(statement, ast.AnnAssign):
            self._target(statement.target)
            if statement.value is not None:
                self._expression(statement.value)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self._expression(statement.value)
        elif isinstance(statement, ast.Expr):
            self._expression(statement.value)
        elif isinstance(statement, ast.Assert):
            self._expression(statement.test)

    def _target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            return
        if isinstance(target, ast.Subscript):
            self._expression(target.value)
            self._expression(target.slice)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target(element)
            return
        if isinstance(target, ast.Attribute):
            self._flag(target, "attribute assignment is outside the nopython subset")
            return
        self._flag(target, f"assignment target '{type(target).__name__}' is outside the subset")

    # --------------------------------------------------------- expressions
    def _expression(self, node: ast.expr) -> None:
        if isinstance(node, ast.Constant):
            return
        if isinstance(node, ast.Name):
            self._name(node)
        elif isinstance(node, ast.Attribute):
            self._attribute(node, as_call=False)
        elif isinstance(node, ast.Call):
            self._call(node)
        elif isinstance(node, ast.BinOp):
            self._expression(node.left)
            self._expression(node.right)
        elif isinstance(node, ast.UnaryOp):
            self._expression(node.operand)
        elif isinstance(node, ast.BoolOp):
            for value in node.values:
                self._expression(value)
        elif isinstance(node, ast.Compare):
            self._expression(node.left)
            for comparator in node.comparators:
                self._expression(comparator)
        elif isinstance(node, ast.Subscript):
            self._expression(node.value)
            self._expression(node.slice)
        elif isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._expression(part)
        elif isinstance(node, ast.Tuple):
            for element in node.elts:
                self._expression(element)
        elif isinstance(node, ast.IfExp):
            self._expression(node.test)
            self._expression(node.body)
            self._expression(node.orelse)
        else:
            self._flag(
                node, f"expression '{type(node).__name__}' is outside the nopython subset"
            )

    def _name(self, node: ast.Name) -> None:
        if node.id in self.locals_ or node.id in ALLOWED_BUILTINS:
            return
        resolved = self.project.resolve_name(self.kernel.module, node.id)
        if resolved is None:
            self._flag(
                node,
                f"unresolvable name '{node.id}' (not a local, allowlisted "
                f"builtin, or project constant)",
            )
            return
        kind, value = resolved
        if kind == "global":
            if not value.constant_value:
                self._flag(
                    node,
                    f"closes over module-level name '{node.id}' which is not an "
                    f"immutable constant (defined in {value.source.path}:"
                    f"{value.node.lineno})",
                )
            return
        if kind == "function":
            if value.qualname not in self.njit_qualnames:
                self._flag(node, f"references non-njit project function '{node.id}'")
            return
        self._flag(node, f"references {kind} '{node.id}', unsupported in nopython mode")

    def _attribute(self, node: ast.Attribute, as_call: bool) -> None:
        dotted = dotted_name(node)
        if dotted is None:
            # Attribute on a computed value (e.g. ``out[row].shape``).
            self._expression(node.value)
            if node.attr not in ALLOWED_ARRAY_ATTRS:
                self._flag(
                    node, f"attribute '.{node.attr}' is outside the array-attribute allowlist"
                )
            return
        head, *rest = dotted.split(".")
        if head in self.locals_:
            for attr in rest:
                if attr not in ALLOWED_ARRAY_ATTRS:
                    self._flag(
                        node,
                        f"attribute '.{attr}' on local '{head}' is outside the "
                        f"array-attribute allowlist",
                    )
            return
        alias = self.kernel.module.imports.get(head)
        if alias is not None and alias.module in EXTERNAL_MODULE_ALLOWLISTS:
            allowlist = EXTERNAL_MODULE_ALLOWLISTS[alias.module]
            if len(rest) != 1 or rest[0] not in allowlist:
                self._flag(node, f"'{dotted}' is outside the {alias.module} nopython allowlist")
            return
        resolved = self.project.resolve_dotted(self.kernel.module, dotted)
        if resolved is None:
            self._flag(node, f"unresolvable attribute chain '{dotted}'")
            return
        kind, value = resolved
        if kind == "global":
            if not value.constant_value:
                self._flag(node, f"'{dotted}' resolves to non-constant module state")
            return
        if kind == "function":
            if value.qualname not in self.njit_qualnames:
                verb = "calls into" if as_call else "references"
                self._flag(node, f"'{dotted}' {verb} non-njit project code")
            return
        self._flag(node, f"'{dotted}' resolves to a {kind}, unsupported in nopython mode")

    def _call(self, node: ast.Call) -> None:
        for argument in node.args:
            if isinstance(argument, ast.Starred):
                self._flag(argument, "starred call arguments are outside the nopython subset")
            else:
                self._expression(argument)
        for keyword in node.keywords:
            if keyword.arg is None:
                self._flag(node, "**kwargs call expansion is outside the nopython subset")
            else:
                self._expression(keyword.value)
        callee = node.func
        if isinstance(callee, ast.Name):
            if callee.id in self.locals_:
                self._flag(node, f"call through local '{callee.id}' cannot be resolved statically")
                return
            if callee.id in ALLOWED_BUILTINS:
                return
            resolved = self.project.resolve_name(self.kernel.module, callee.id)
            if resolved is not None and resolved[0] == "function":
                if resolved[1].qualname not in self.njit_qualnames:
                    self._flag(node, f"calls non-njit project function '{callee.id}'")
                return
            self._flag(node, f"call to '{callee.id}' is outside the nopython subset")
            return
        if isinstance(callee, ast.Attribute):
            self._attribute(callee, as_call=True)
            return
        self._flag(node, "computed callee is outside the nopython subset")
