"""RL002: unordered-iteration hazards.

The PR 2 bug class: a protocol built its outboxes (or derived RNG labels) by
iterating a ``set``, so round counts depended on hash-table internals --
deterministic on one interpreter, silently different on another, and
composition-dependent either way.  Sets (and the other genuinely unordered
mappings: ``os.environ``, ``vars()``, ``globals()``) must be materialized
through ``sorted(...)`` before their order can mean anything.

The checker infers set-typed expressions statically -- set literals and
comprehensions, ``set(...)`` / ``frozenset(...)`` calls, set-operator
expressions, set-returning methods, and local variables all of whose
bindings are set-typed -- and flags them in *order-sensitive* iteration
contexts: ``for`` loops, list/generator comprehensions, ``list()`` /
``tuple()`` / ``enumerate()`` conversions, and starred expansion into
sequence literals.  Order-insensitive consumption stays allowed: membership
tests, ``len``/``min``/``max``/``sum``/``any``/``all``, conversion to
another set, and -- the sanctioned fix -- ``sorted(...)``.

Python ``dict`` iteration is insertion-ordered and therefore deterministic;
dicts are exempt here (insertion-order *composition* bugs are what the
canonical-key disciplines and the differential fuzzer cover).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker, SourceFile

SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
SET_OPERATORS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Unordered mapping reads that behave like sets for iteration purposes.
UNORDERED_CALLS = frozenset({"vars", "globals", "locals"})

#: Consumers for which iteration order cannot influence the result.
ORDER_INSENSITIVE = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset"}
)

ORDER_SENSITIVE_CONVERTERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every function body (each gets its own inference)."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


class _SetInference:
    """Single-scope, all-bindings-agree inference of set-typed local names."""

    def __init__(self, scope: ast.AST) -> None:
        self.bindings: dict[str, list[bool]] = {}
        for node in walk_scope(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.bindings.setdefault(target.id, []).append(
                            self.is_set_expr(node.value)
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self.bindings.setdefault(node.target.id, []).append(
                        self.is_set_expr(node.value)
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                # ``s |= ...`` neither proves nor disproves set-ness; skip.
                continue
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                if isinstance(target, ast.Name):
                    self.bindings.setdefault(target.id, []).append(False)

    def is_set_name(self, name: str) -> bool:
        votes = self.bindings.get(name, [])
        return bool(votes) and all(votes)

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self.is_set_name(node.id)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in SET_CONSTRUCTORS:
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in SET_METHODS:
                return self.is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, SET_OPERATORS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    def describe(self, node: ast.AST) -> str:
        if isinstance(node, ast.Name):
            return f"set-typed variable {node.id!r}"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set literal"
        return "set-typed expression"


def _is_environ(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )


class OrderingChecker(Checker):
    code = "RL002"
    name = "unordered-iteration"
    description = "set iteration in order-sensitive contexts without sorted()"

    def check(self, source: SourceFile) -> Iterable[Diagnostic]:
        seen: set[int] = set()
        for scope in _scopes(source.tree):
            inference = _SetInference(scope)
            for node in walk_scope(scope):
                for iterable, context in self._iteration_sites(node):
                    if id(iterable) in seen:
                        continue
                    if self._is_unordered(iterable, inference):
                        seen.add(id(iterable))
                        yield self.diagnostic(
                            source,
                            iterable,
                            f"iterating {self._describe(iterable, inference)} in {context}; "
                            "wrap it in sorted(...) to pin a deterministic order",
                        )

    def _is_unordered(self, node: ast.AST, inference: _SetInference) -> bool:
        if _is_environ(node):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in UNORDERED_CALLS
        ):
            return True
        return inference.is_set_expr(node)

    @staticmethod
    def _describe(node: ast.AST, inference: _SetInference) -> str:
        if _is_environ(node):
            return "os.environ"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in UNORDERED_CALLS:
                return f"{node.func.id}()"
        return inference.describe(node)

    @staticmethod
    def _iteration_sites(node: ast.AST) -> Iterator[tuple[ast.AST, str]]:
        """Yield (iterable expression, context description) pairs under ``node``."""
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, "a for loop"
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter, "a comprehension"
        elif isinstance(node, (ast.SetComp, ast.DictComp)):
            # Building a set/dict from a set is order-insensitive unless the
            # *value* depends on position, which static analysis cannot see;
            # the unordered→unordered case is allowed by design.
            return
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ORDER_SENSITIVE_CONVERTERS and node.args:
                yield node.args[0], f"{node.func.id}()"
        elif isinstance(node, (ast.List, ast.Tuple)):
            for element in node.elts:
                if isinstance(element, ast.Starred):
                    yield element.value, "starred expansion"
