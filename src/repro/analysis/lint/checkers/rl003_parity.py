"""RL003: execution-plane parity.

The oracle discipline (DESIGN.md §9) only works while every kernel exists on
every plane: the pure numpy kernels in ``graphs/csr.py`` anchor the compiled
graph plane in ``graphs/compiled.py``, and the message-plane kernels declared
in ``hybrid/batch.py`` anchor ``hybrid/compiled.py``.  A compiled kernel that
is renamed, dropped, or grows a different signature silently unhooks the
differential tests -- the dispatcher falls back to the oracle and the "three
planes bit-identical" property is vacuously green.

Each oracle module therefore carries an explicit, literal ``PLANE_KERNELS``
registry mapping kernel name to its exact parameter-name tuple.  RL003
statically cross-checks, per (oracle, counterpart) module pair:

* the oracle module defines ``PLANE_KERNELS`` as a literal dict of
  ``str -> tuple[str, ...]``;
* every kernel the oracle module itself defines under a registered name has
  exactly the registered parameter names (the registry cannot go stale);
* the counterpart module provides, for every registered kernel, either a
  function definition with exactly the registered parameter names (extra
  *trailing* parameters are allowed for compiled-plane plumbing) or an
  explicit ``name = None`` degradation entry.

The pairs are identified by path suffix, so fixture trees exercise the same
code path as the real modules.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker, SourceFile

REGISTRY_NAME = "PLANE_KERNELS"

#: (oracle module suffix, counterpart module suffix) pairs under analysis.
PLANE_PAIRS = (
    ("graphs/csr.py", "graphs/compiled.py"),
    ("hybrid/batch.py", "hybrid/compiled.py"),
)


def _module_level_statements(module: ast.Module) -> Iterator[ast.stmt]:
    """Module statements, descending through If/Try blocks but not defs."""
    stack: list[ast.stmt] = list(module.body)
    while stack:
        statement = stack.pop()
        yield statement
        if isinstance(statement, ast.If):
            stack.extend(statement.body)
            stack.extend(statement.orelse)
        elif isinstance(statement, ast.Try):
            stack.extend(statement.body)
            stack.extend(statement.orelse)
            stack.extend(statement.finalbody)
            for handler in statement.handlers:
                stack.extend(handler.body)


def _find_registry(source: SourceFile) -> ast.Assign | None:
    for statement in _module_level_statements(source.tree):
        if isinstance(statement, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == REGISTRY_NAME
            for target in statement.targets
        ):
            return statement
    return None


def _parse_registry(node: ast.Assign) -> dict[str, tuple[tuple[str, ...], ast.AST]] | None:
    """Parse a literal ``{name: (param, ...)}`` dict; None when malformed."""
    if not isinstance(node.value, ast.Dict):
        return None
    registry: dict[str, tuple[tuple[str, ...], ast.AST]] = {}
    for key, value in zip(node.value.keys, node.value.values, strict=True):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        params: list[str] = []
        for element in value.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            params.append(element.value)
        registry[key.value] = (tuple(params), key)
    return registry


def _function_params(function: ast.FunctionDef) -> tuple[str, ...]:
    args = function.args
    return tuple(arg.arg for arg in [*args.posonlyargs, *args.args])


def _collect_definitions(
    module: ast.Module,
) -> tuple[dict[str, ast.FunctionDef], dict[str, ast.Assign]]:
    """Top-level function defs and ``name = None`` degradation assignments."""
    functions: dict[str, ast.FunctionDef] = {}
    degradations: dict[str, ast.Assign] = {}
    for statement in _module_level_statements(module):
        if isinstance(statement, ast.FunctionDef):
            functions.setdefault(statement.name, statement)
        elif isinstance(statement, ast.Assign):
            is_none = isinstance(statement.value, ast.Constant) and statement.value.value is None
            if is_none:
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        degradations.setdefault(target.id, statement)
    return functions, degradations


class PlaneParityChecker(Checker):
    code = "RL003"
    name = "plane-parity"
    description = "compiled planes must mirror the registered oracle kernels"

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Diagnostic]:
        for oracle_suffix, counterpart_suffix in PLANE_PAIRS:
            oracles = [source for source in sources if source.suffix_matches(oracle_suffix)]
            counterparts = [
                source for source in sources if source.suffix_matches(counterpart_suffix)
            ]
            for oracle in oracles:
                counterpart = self._match_counterpart(oracle, counterparts)
                yield from self._check_pair(oracle, counterpart, counterpart_suffix)

    @staticmethod
    def _match_counterpart(
        oracle: SourceFile, counterparts: list[SourceFile]
    ) -> SourceFile | None:
        """The counterpart sharing the longest path prefix with the oracle."""
        oracle_dir = oracle.path.rsplit("/", 2)[0]
        for counterpart in counterparts:
            if counterpart.path.startswith(oracle_dir):
                return counterpart
        return counterparts[0] if counterparts else None

    def _check_pair(
        self,
        oracle: SourceFile,
        counterpart: SourceFile | None,
        counterpart_suffix: str,
    ) -> Iterator[Diagnostic]:
        registry_node = _find_registry(oracle)
        if registry_node is None:
            yield self.diagnostic(
                oracle,
                oracle.tree.body[0] if oracle.tree.body else oracle.tree,
                f"oracle module defines no literal {REGISTRY_NAME} registry; "
                "every plane-dispatched kernel must be registered for parity checking",
            )
            return
        registry = _parse_registry(registry_node)
        if registry is None:
            yield self.diagnostic(
                oracle,
                registry_node,
                f"{REGISTRY_NAME} must be a literal dict of "
                "{'kernel_name': ('param', ...)} entries",
            )
            return

        oracle_functions, _ = _collect_definitions(oracle.tree)
        for kernel, (params, key_node) in registry.items():
            local = oracle_functions.get(kernel)
            if local is not None and _function_params(local) != params:
                yield self.diagnostic(
                    oracle,
                    key_node,
                    f"registry entry {kernel!r} declares params {params} but the "
                    f"local definition has {_function_params(local)}; "
                    "update the registry with the rename",
                )

        if counterpart is None:
            yield self.diagnostic(
                oracle,
                registry_node,
                f"counterpart module {counterpart_suffix!r} not found in the linted "
                "tree; plane parity cannot be verified",
            )
            return

        functions, degradations = _collect_definitions(counterpart.tree)
        for kernel, (params, key_node) in registry.items():
            function = functions.get(kernel)
            if function is not None:
                actual = _function_params(function)
                if actual[: len(params)] != params:
                    yield Diagnostic(
                        counterpart.path,
                        function.lineno,
                        function.col_offset + 1,
                        self.code,
                        f"compiled kernel {kernel!r} has params {actual}, expected "
                        f"{params} (extra trailing params allowed) per "
                        f"{REGISTRY_NAME} in {oracle.path}",
                    )
            elif kernel not in degradations:
                yield self.diagnostic(
                    oracle,
                    key_node,
                    f"registered kernel {kernel!r} has no counterpart def and no "
                    f"'{kernel} = None' degradation entry in {counterpart.path}",
                )
